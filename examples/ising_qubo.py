"""QAOA beyond Max-Cut: Ising and QUBO problems.

Related work notes the warm-start approach "can also be applied to
other ... optimization problems". The library's QAOA simulator only
needs a diagonal cost, so this example runs the identical machinery on:

1. a random QUBO (converted exactly to Ising form),
2. a transverse-field-free Ising instance with local fields,
3. Max-Cut expressed as Ising (cross-checking the conversion).

Run:  python examples/ising_qubo.py
"""

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.hamiltonians import (
    DiagonalProblem,
    IsingModel,
    QUBO,
    maxcut_to_ising,
)
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator


def solve(problem, label, p=2, iters=120, seed=0):
    simulator = QAOASimulator(problem)
    rng = np.random.default_rng(seed)
    best = None
    for _ in range(3):
        result = AdamOptimizer().run(
            simulator,
            rng.uniform(0.1, 1.0, p),
            rng.uniform(0.1, 0.6, p),
            max_iters=iters,
        )
        if best is None or result.expectation > best.expectation:
            best = result
    optimum = problem.optimum()
    ratio = problem.approximation_ratio(best.expectation)
    print(
        f"{label:<28} optimum {optimum.value:>8.3f}  "
        f"QAOA <C> {best.expectation:>8.3f}  normalized ratio {ratio:.3f}"
    )


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. random QUBO
    qubo = QUBO.from_matrix(rng.normal(size=(8, 8)))
    solve(DiagonalProblem.from_qubo(qubo), "random QUBO (8 vars)")
    ising_from_qubo = qubo.to_ising()
    assert np.allclose(qubo.diagonal(), ising_from_qubo.diagonal())
    print("  (QUBO -> Ising conversion verified exactly)")

    # 2. Ising with local fields
    fields = rng.normal(scale=0.5, size=8)
    couplings = tuple(
        (i, j, float(rng.normal()))
        for i in range(8)
        for j in range(i + 1, 8)
        if rng.random() < 0.4
    )
    ising = IsingModel(8, tuple(float(h) for h in fields), couplings)
    solve(DiagonalProblem.from_ising(ising), "random-field Ising (8 spins)")

    # 3. Max-Cut as Ising, cross-checked against the native path
    graph = random_regular_graph(8, 3, rng=1)
    native = MaxCutProblem(graph)
    as_ising = DiagonalProblem.from_ising(maxcut_to_ising(graph))
    simulator_native = QAOASimulator(native)
    simulator_ising = QAOASimulator(as_ising)
    angles = (np.array([0.5, 0.8]), np.array([0.3, 0.2]))
    native_value = simulator_native.expectation(*angles)
    ising_value = simulator_ising.expectation(*angles)
    print(
        f"Max-Cut vs Ising encoding: <C> = {native_value:.6f} "
        f"== {ising_value:.6f} (identical)"
    )
    solve(native, "Max-Cut (native, cubic n=8)")


if __name__ == "__main__":
    main()
