"""Data-quality study: Figures 2-4 and Selective Data Pruning (Sec 3.3).

Generates a labeled dataset, renders its degree/size distributions
(Figure 2) and approximation-ratio intervals by size and degree
(Figures 3 and 4), then demonstrates what selective data pruning does
to label quality at several selective rates.

Run:  python examples/data_quality_study.py
"""

from repro.analysis.figures import render_histogram, render_intervals
from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.pruning import selective_data_pruning
from repro.data.stats import (
    ar_by_degree,
    ar_by_size,
    degree_frequency,
    low_quality_fraction,
    size_frequency,
)


def main() -> None:
    # A deliberately weak labeling budget (15 iterations) reproduces the
    # paper's observation: single random-init optimization often stalls
    # far from the optimum, leaving a low-AR tail in the dataset. (The
    # paper's 500 gradient-free iterations behave like few exact-gradient
    # Adam steps.)
    print("labeling 120 graphs (weak single random-init optimization) ...")
    dataset = generate_dataset(
        GenerationConfig(
            num_graphs=120, min_nodes=4, max_nodes=12, optimizer_iters=15,
            seed=17,
        )
    )
    graphs = dataset.graphs()

    print()
    print(render_histogram(degree_frequency(graphs), "Figure 2(a): degrees"))
    print()
    print(render_histogram(size_frequency(graphs), "Figure 2(b): sizes"))
    print()
    print(render_intervals(ar_by_size(dataset), "Figure 3: AR by size"))
    print()
    print(render_intervals(ar_by_degree(dataset), "Figure 4: AR by degree"))

    fraction = low_quality_fraction(dataset, threshold=0.7)
    print(f"\nfraction of labels below AR 0.7: {fraction:.1%}")

    print("\nSelective Data Pruning (threshold 0.7):")
    header = f"{'rate':>6} {'kept':>6} {'rescued':>8} {'mean AR':>8}"
    print(header)
    print("-" * len(header))
    for rate in (0.0, 0.3, 0.5, 0.7, 1.0):
        _, report = selective_data_pruning(
            dataset, threshold=0.7, selective_rate=rate, rng=5
        )
        print(
            f"{rate:>6.1f} {report.kept:>6d} {report.rescued:>8d} "
            f"{report.mean_ar_after:>8.3f}"
        )


if __name__ == "__main__":
    main()
