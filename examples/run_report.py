"""Produce a self-contained markdown report for an experiment run.

Runs the end-to-end experiment at small scale and writes the artifact a
practitioner would attach to a results thread: dataset summary, repair
reports, Table 1 with the paper's reference numbers, training curves,
and the full per-instance Figure 5 data.

Run:  python examples/run_report.py  (writes run_report.md)
"""

from pathlib import Path

from repro.data.generation import GenerationConfig
from repro.pipeline.experiment import ExperimentConfig, run_experiment
from repro.pipeline.reporting import write_markdown_report
from repro.pipeline.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        generation=GenerationConfig(
            num_graphs=60, min_nodes=4, max_nodes=10, optimizer_iters=60
        ),
        training=TrainingConfig(epochs=40),
        architectures=("gcn", "gin"),
        test_size=12,
        eval_optimizer_iters=15,
        seed=13,
    )
    report = run_experiment(config)
    path = write_markdown_report(
        report,
        Path("run_report.md"),
        title="QAOA warm-start run (60 graphs, GCN + GIN)",
    )
    print(f"wrote {path}")
    print("\npreview:")
    lines = path.read_text().splitlines()
    for line in lines[:25]:
        print(line)


if __name__ == "__main__":
    main()
