"""Cross-validated architecture comparison with split error bars.

The paper's Table 1 comes from one train/test split. At small dataset
scales a lucky split can flip the GAT/GCN/GIN/GraphSAGE ranking, so
this example reruns the comparison with k-fold cross-validation and
reports per-fold spread — the honest version of Table 1.

Run:  python examples/crossval_study.py
"""

from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.pruning import selective_data_pruning
from repro.pipeline.crossval import cross_validate_architectures
from repro.pipeline.training import TrainingConfig


def main() -> None:
    print("labeling 80 graphs ...")
    dataset = generate_dataset(
        GenerationConfig(
            num_graphs=80, min_nodes=4, max_nodes=10, optimizer_iters=60,
            seed=21,
        )
    )
    dataset, _ = selective_data_pruning(
        dataset, threshold=0.7, selective_rate=0.7, rng=1
    )

    print("running 3-fold cross-validation over four architectures ...")
    results = cross_validate_architectures(
        dataset,
        architectures=("gat", "gcn", "gin", "sage"),
        folds=3,
        training=TrainingConfig(epochs=40),
        eval_optimizer_iters=15,
        rng=5,
    )

    header = (
        f"{'arch':<6} {'mean impr (pp)':>15} {'fold std':>9} "
        f"{'per-fold':>28}"
    )
    print()
    print(header)
    print("-" * len(header))
    for arch, result in results.items():
        folds = ", ".join(f"{v:+.2f}" for v in result.fold_improvements)
        print(
            f"{arch:<6} {result.mean_improvement:>+15.2f} "
            f"{result.std_improvement:>9.2f} {folds:>28}"
        )
    print(
        "\nfold-to-fold spread on the order of the architecture gaps "
        "explains why the paper's\nGAT/GCN/GIN ranking should be read "
        "as 'all comparable' (its own Section 7 says so)."
    )


if __name__ == "__main__":
    main()
