"""Landscape multimodality and NISQ noise — why warm starts matter.

Two diagnostics behind the paper's story:

1. **Landscape**: grid the p=1 (gamma, beta) expectation surface of a
   dense instance, count its local maxima, and show that a random start
   frequently converges to an inferior mode — the root cause of the
   paper's data-quality problem (Section 3.3).
2. **Noise**: evaluate the same warm start under increasing
   depolarizing noise, showing the advantage is in the *starting
   point* and survives realistic error rates (the paper's Section 7
   robustness question).

Run:  python examples/landscape_and_noise.py
"""

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.landscape import find_local_maxima, global_optimum_p1, grid_landscape
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.quantum.noise import NoiseSpec, NoisyQAOASimulator


def ascii_heatmap(grid, width_chars=" .:-=+*#%@"):
    lo, hi = grid.values.min(), grid.values.max()
    rows = []
    for i in range(grid.values.shape[0]):
        row = ""
        for j in range(grid.values.shape[1]):
            level = (grid.values[i, j] - lo) / (hi - lo + 1e-12)
            row += width_chars[int(level * (len(width_chars) - 1))]
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    graph = random_regular_graph(10, 5, rng=3, name="dense10")
    problem = MaxCutProblem(graph)
    simulator = QAOASimulator(problem)

    # --- 1. landscape ---
    grid = grid_landscape(
        simulator,
        gamma_points=36,
        beta_points=48,
        gamma_range=(0.0, 2 * np.pi),
        beta_range=(0.0, np.pi / 2),
    )
    maxima = find_local_maxima(grid)
    print(f"p=1 landscape of {graph.name} (gamma down, beta across):")
    print(ascii_heatmap(grid))
    print(f"\ninterior local maxima found: {len(maxima)}")
    top = maxima[0]
    print(
        f"best mode: gamma={top['gamma']:.3f} beta={top['beta']:.3f} "
        f"AR={problem.approximation_ratio(top['value']):.3f}"
    )

    # random starts: where do they land?
    rng = np.random.default_rng(0)
    finals = []
    for _ in range(20):
        result = AdamOptimizer().run(
            simulator,
            rng.uniform(0, 2 * np.pi, 1),
            rng.uniform(0, np.pi / 2, 1),
            max_iters=60,
        )
        finals.append(problem.approximation_ratio(result.expectation))
    finals = np.asarray(finals)
    gammas, betas, best_value = global_optimum_p1(simulator)
    best_ratio = problem.approximation_ratio(best_value)
    print(
        f"20 random starts: AR {finals.min():.3f}-{finals.max():.3f} "
        f"(mean {finals.mean():.3f}); global optimum {best_ratio:.3f}"
    )
    stuck = (finals < best_ratio - 0.02).mean()
    print(f"fraction of random starts stuck below the best mode: {stuck:.0%}")

    # --- 2. noise ---
    print("\nwarm start (global-optimum angles) under depolarizing noise:")
    print(f"{'fidelity':>9} {'AR':>7}")
    for fidelity in (1.0, 0.95, 0.9, 0.8, 0.6):
        noisy = NoisyQAOASimulator(
            problem, NoiseSpec(layer_fidelity=fidelity), rng=0
        )
        ratio = noisy.approximation_ratio(gammas, betas)
        print(f"{fidelity:>9.2f} {ratio:>7.3f}")
    print(
        "\nnoise contracts the expectation toward the random-cut value "
        "but never moves the\noptimal angles — which is why a good "
        "initialization retains its value on NISQ hardware."
    )


if __name__ == "__main__":
    main()
