"""Quickstart: solve one Max-Cut instance with QAOA, then warm-start it.

Walks the full loop of the paper's Figure 1 on a single graph:

1. build a Max-Cut instance (a random 3-regular graph),
2. solve it exactly by brute force (the grading reference),
3. run QAOA from a random initialization,
4. train a tiny GNN on a small labeled dataset,
5. run QAOA again from the GNN-predicted parameters,
6. compare approximation ratios under the same optimizer budget.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data.generation import GenerationConfig, generate_dataset
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_regular_graph
from repro.maxcut.bruteforce import brute_force_maxcut
from repro.pipeline.training import Trainer, TrainingConfig
from repro.qaoa.initialization import RandomInitialization
from repro.qaoa.runner import QAOARunner


def main() -> None:
    # 1. a few fresh test instances
    test_graphs = [
        random_regular_graph(10, 3, rng=100 + i, name=f"demo{i}")
        for i in range(5)
    ]
    print(f"test instances: 5 x {test_graphs[0]}")

    # 2. exact optima (the grading reference)
    for graph in test_graphs[:1]:
        exact = brute_force_maxcut(graph)
        print(f"brute-force optimum of {graph.name}: cut value {exact.value:.0f}")

    # 3. train a GNN warm-starter on a small labeled dataset
    print("labeling 60 training graphs ...")
    dataset = generate_dataset(
        GenerationConfig(
            num_graphs=60, min_nodes=4, max_nodes=10, optimizer_iters=60,
            seed=7,
        )
    )
    model = QAOAParameterPredictor(arch="gin", p=1, rng=3)
    Trainer(model, TrainingConfig(epochs=40, seed=3)).fit(dataset)
    model.eval()

    # 4./5. run QAOA from both initializations under the same tight budget
    runner = QAOARunner(p=1, max_iters=15)
    random_ars, warm_ars = [], []
    for index, graph in enumerate(test_graphs):
        cold = runner.run(graph, RandomInitialization(), rng=index)
        warm = runner.run(graph, model.as_initialization(), rng=index)
        random_ars.append(cold.approximation_ratio)
        warm_ars.append(warm.approximation_ratio)
        print(
            f"{graph.name}: random AR {cold.approximation_ratio:.3f} "
            f"(init {cold.initial_approximation_ratio:.3f})  |  "
            f"GNN AR {warm.approximation_ratio:.3f} "
            f"(init {warm.initial_approximation_ratio:.3f})"
        )

    # 6. the headline number (paper Table 1 at miniature scale)
    delta = 100 * (np.mean(warm_ars) - np.mean(random_ars))
    print(f"\nmean improvement over 5 instances: {delta:+.2f} percentage points")


if __name__ == "__main__":
    main()
