"""Compare GCN / GAT / GIN / GraphSAGE warm starts (paper Table 1, Fig 5).

Reruns the paper's central experiment at a small scale: generate and
label a dataset, repair it with selective pruning, train all four GNN
architectures, and evaluate each against random initialization on a
held-out test set. Prints Table 1 and an ASCII Figure 5 panel per
architecture.

Run:  python examples/architecture_comparison.py
"""

from repro.analysis.figures import render_comparison
from repro.analysis.tables import format_table1
from repro.data.generation import GenerationConfig
from repro.pipeline.experiment import ExperimentConfig, run_experiment
from repro.pipeline.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        generation=GenerationConfig(
            num_graphs=100, min_nodes=4, max_nodes=11, optimizer_iters=80
        ),
        training=TrainingConfig(epochs=50),
        architectures=("gat", "gcn", "gin", "sage"),
        test_size=20,
        eval_optimizer_iters=15,
        prune_threshold=0.7,
        selective_rate=0.7,
        apply_fixed_angle_relabel=True,
        seed=1,
    )
    report = run_experiment(config)

    print("\n--- Table 1 (benchmark scale) ---")
    print(format_table1(report.results))

    for arch, result in report.results.items():
        print()
        print(render_comparison(result))

    best = max(
        report.results.items(), key=lambda item: item[1].mean_improvement
    )
    print(
        f"\nbest architecture at this scale: {best[0]} "
        f"({best[1].mean_improvement:+.2f} pp)"
    )


if __name__ == "__main__":
    main()
