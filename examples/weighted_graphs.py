"""Weighted Max-Cut (the paper's future-work case) + GW warm start.

The paper's models target unweighted regular graphs and note that
weighted graphs "are more common in real-world scenarios" as future
work. This example exercises the library's weighted support end to end:

1. weighted QAOA simulation and optimization,
2. the Goemans-Williamson SDP baseline (Egger et al.'s warm-start
   substrate) on the same instances,
3. a GW-informed initialization compared with random initialization.

Run:  python examples/weighted_graphs.py
"""

import numpy as np

from repro.graphs.generators import fully_connected_weighted_graph
from repro.maxcut.goemans_williamson import goemans_williamson
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.initialization import RandomInitialization, WarmStartInitialization
from repro.qaoa.runner import QAOARunner


def gw_informed_initialization(num_rounds: int = 30, rng_seed: int = 0):
    """Initialize beta from the GW solution quality.

    Heuristic: the better the classical relaxation already is, the
    smaller the mixing angle we start with (we trust the cost landscape
    more); gamma starts at a standard small value. This mirrors the
    spirit of classical warm starts without biasing the state itself.
    """

    def predict(graph, p):
        result = goemans_williamson(graph, num_rounds=num_rounds, rng=rng_seed)
        problem = MaxCutProblem(graph)
        quality = problem.approximation_ratio(result.solution.value)
        gamma = np.full(p, 0.4)
        beta = np.full(p, float(np.clip(0.6 * (1.0 - quality) + 0.1, 0.05, 0.6)))
        return gamma, beta

    return WarmStartInitialization(predict, name="gw_informed")


def main() -> None:
    rng = np.random.default_rng(4)
    runner = QAOARunner(p=2, max_iters=40)
    strategy = gw_informed_initialization()

    header = (
        f"{'n':>3} {'GW AR':>7} {'SDP bound':>10} "
        f"{'random AR':>10} {'GW-init AR':>11}"
    )
    print(header)
    print("-" * len(header))
    random_scores = []
    warm_scores = []
    for index in range(5):
        graph = fully_connected_weighted_graph(
            8, rng=int(rng.integers(1e6)), name=f"w{index}"
        )
        problem = MaxCutProblem(graph)
        gw = goemans_williamson(graph, rng=index)
        gw_ratio = problem.approximation_ratio(gw.solution.value)

        cold = runner.run(graph, RandomInitialization(), rng=index)
        warm = runner.run(graph, strategy, rng=index)
        random_scores.append(cold.approximation_ratio)
        warm_scores.append(warm.approximation_ratio)
        print(
            f"{graph.num_nodes:>3d} {gw_ratio:>7.3f} "
            f"{gw.sdp_value:>10.3f} {cold.approximation_ratio:>10.3f} "
            f"{warm.approximation_ratio:>11.3f}"
        )

    print(
        f"\nmean AR: random {np.mean(random_scores):.3f}, "
        f"GW-informed {np.mean(warm_scores):.3f}"
    )
    print(
        "note: GW rounding itself is a strong classical baseline "
        "(0.878-approximation);\nQAOA at p=2 competes with it only on "
        "small instances."
    )


if __name__ == "__main__":
    main()
