"""Fixed-angle conjecture demo (Wurtz & Lykov; paper Section 3.3).

Shows that one universal (gamma, beta) pair per degree gives
near-optimal p=1 QAOA performance on *any* regular graph of that degree
— no per-instance optimization — and compares three initializations on
fresh instances: random, fixed-angle, and fully optimized.

Run:  python examples/fixed_angles_demo.py
"""

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.fixed_angles import lookup_fixed_angles
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator


def main() -> None:
    rng = np.random.default_rng(0)
    header = (
        f"{'degree':>6} {'gamma*':>8} {'beta*':>8} "
        f"{'random AR':>10} {'fixed AR':>9} {'optimized':>10}"
    )
    print(header)
    print("-" * len(header))
    for degree in (3, 4, 5, 6, 7, 8):
        entry = lookup_fixed_angles(degree, p=1)
        num_nodes = 12 if (12 * degree) % 2 == 0 else 13
        graph = random_regular_graph(num_nodes, degree, rng=int(rng.integers(1e6)))
        problem = MaxCutProblem(graph)
        simulator = QAOASimulator(problem)

        random_ars = [
            problem.approximation_ratio(
                simulator.expectation(
                    rng.uniform(0, 2 * np.pi, 1), rng.uniform(0, np.pi, 1)
                )
            )
            for _ in range(10)
        ]
        fixed_ar = problem.approximation_ratio(
            simulator.expectation(
                np.asarray(entry.gammas), np.asarray(entry.betas)
            )
        )
        optimized = AdamOptimizer().run(
            simulator,
            np.asarray(entry.gammas),
            np.asarray(entry.betas),
            max_iters=150,
        )
        optimized_ar = problem.approximation_ratio(optimized.expectation)
        print(
            f"{degree:>6d} {entry.gammas[0]:>8.4f} {entry.betas[0]:>8.4f} "
            f"{np.mean(random_ars):>10.3f} {fixed_ar:>9.3f} "
            f"{optimized_ar:>10.3f}"
        )

    print(
        "\nfixed angles recover most of the fully-optimized ratio with "
        "zero quantum-side optimization;\nper the paper, tables cover "
        "degrees 3-11 only (~6% of the full dataset)."
    )


if __name__ == "__main__":
    main()
