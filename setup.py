"""Setuptools entry point (kept for legacy editable installs offline)."""

from setuptools import setup

setup()
