"""Lazy-engine fusion benchmark: fused kernels vs op-at-a-time eager.

``perf``-marked like the other runtime benchmarks — excluded from the
fast suite and run via ``repro bench`` / ``pytest -m perf``. Appends
the engine-comparison arms to the ``BENCH_4.json`` trajectory so
future PRs can regress the lazy engine's throughput.

The *gated* claim is structural: on a GIN forward pass the lazy engine
must launch strictly fewer kernels than the eager path launches numpy
ops — that is what fusion means. The wall-time ratio is recorded in
the trajectory but deliberately not gated here: shared CI runners are
too noisy for a throughput assertion, and the trajectory keeps the
honest number (the acceptance bar is 1.5x vs the BENCH_2 cached arm
on a quiet machine).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.benchmarking import (
    append_bench_entry,
    bench_fusion,
    training_benchmark_dataset,
)
from repro.data.compiled import CompiledDataset
from repro.gnn.predictor import QAOAParameterPredictor
from repro.nn.realize import counters as engine_counters

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_4.json"


def test_gin_forward_fuses_below_eager_op_count():
    """Fused kernel count is strictly below the eager numpy-op count.

    The ``ops`` counter is the number of recorded op nodes — exactly
    the numpy calls the eager engine would have made — and ``kernels``
    is what the scheduler actually launched after fusion grouping.
    """
    dataset = training_benchmark_dataset(num_graphs=16, seed=3)
    model = QAOAParameterPredictor(arch="gin", p=dataset.depth(), rng=0)
    model.eval()
    compiled = CompiledDataset(
        list(dataset),
        feature_kind="degree_onehot",
        max_nodes=model.in_dim,
        build_plans=False,
    )
    batch = compiled.batch(np.arange(len(dataset)))

    before = engine_counters.snapshot()
    prediction = model(batch)
    prediction.numpy()  # sync point: realizes the recorded graph
    after = engine_counters.snapshot()

    kernels = after["kernels"] - before["kernels"]
    ops = after["ops"] - before["ops"]
    assert ops > 0, "forward pass recorded no ops — lazy engine inactive?"
    assert kernels < ops, (
        f"no fusion happened: {kernels} kernels for {ops} eager ops"
    )


def test_perf_fusion_lazy_vs_eager():
    """Lazy engine arms at the BENCH_2 workload; losses bit-identical."""
    results = bench_fusion(
        num_graphs=128, batch_size=32, epochs=8, arch="gin", reps=3
    )
    append_bench_entry(BENCH_PATH, {"fusion": results})

    arms = results["arms"]
    assert arms["lazy"]["bit_identical_to_eager"], arms["lazy"]

    # Structural fusion claim (gated): fewer kernels than recorded ops.
    assert results["fused_kernels"] < results["recorded_ops"], results
    assert results["peak_temp_bytes"] > 0, results

    # The timed lazy reps must run entirely out of the plan cache —
    # the full-length warmup fit exists precisely for this.
    stats = arms["lazy"]["engine_counters"]
    assert stats["plan_misses"] == 0, stats
    assert stats["plan_hits"] > 0, stats

    # Wall-time ratio: recorded, not gated (see module docstring).
    assert arms["lazy"]["speedup_vs_eager"] > 0, arms["lazy"]

    for name, arm in arms.items():
        phases = arm["profile"]["phases"]
        for phase in ("forward", "backward", "optimizer"):
            assert phase in phases, (name, sorted(phases))
        assert arm["best_epoch_s"] > 0
        assert arm["epochs_per_second"] > 0
