"""Runtime benchmarks: labeling throughput and kernel before/after.

All tests here are ``perf``-marked — they are excluded from the fast
suite (``-m "not perf"``) and exist to (a) verify the parallel runtime's
bit-identity guarantee at benchmark scale and (b) append honest
before/after numbers to the ``BENCH_1.json`` trajectory at the repo
root, which future PRs regress against.

The speedup assertions are gated on the machine's core count: a
single-core container cannot show wall-clock wins from process
parallelism, but the bit-identity and bookkeeping checks still run.
"""

import os
from pathlib import Path

import pytest

from repro.benchmarking import (
    append_bench_entry,
    bench_gradient_kernel,
    bench_labeling,
    bench_mixer_kernel,
    labeling_benchmark_config,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_1.json"


def test_perf_kernel_before_after():
    """Optimized kernels beat the reference kernels; record the numbers."""
    gradient = bench_gradient_kernel(num_qubits=15, p=2, repeats=10)
    mixer = bench_mixer_kernel(num_qubits=15, repeats=10)
    append_bench_entry(
        BENCH_PATH,
        {
            "gradient_kernel_n15_p2": gradient,
            "mixer_kernel_n15": mixer,
        },
    )
    assert gradient["speedup"] > 1.05, (
        f"expectation_and_gradient regressed: {gradient['speedup']:.2f}x"
    )
    assert mixer["speedup"] > 1.05, (
        f"mixer kernel regressed: {mixer['speedup']:.2f}x"
    )


def test_perf_labeling_parallel_200_graphs():
    """Process-backend labeling: bit-identical to serial, speedup recorded."""
    config = labeling_benchmark_config(num_graphs=200)
    results = bench_labeling(config, backends=("serial", "process"))
    append_bench_entry(BENCH_PATH, {"labeling": results})
    process = results["backends"]["process"]
    assert process["bit_identical_to_serial"] is True
    assert process["speedup_vs_serial"] > 0.0
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert process["speedup_vs_serial"] >= 2.0, (
            f"process backend only {process['speedup_vs_serial']:.2f}x "
            f"on {cores} cores"
        )
