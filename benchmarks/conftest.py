"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure) at a
*benchmark scale* recorded in EXPERIMENTS.md: the same pipeline as the
paper, with dataset size and optimizer budgets reduced so the whole
suite runs in minutes on a laptop instead of hours. The paper-scale
configuration is ``ExperimentConfig.paper_scale()``.

Artifacts are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import logging
from pathlib import Path

import pytest

from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.pruning import fixed_angle_relabel, selective_data_pruning
from repro.data.splits import stratified_split
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig

logging.getLogger("repro").setLevel(logging.WARNING)

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale knobs (paper scale in parentheses).
BENCH_NUM_GRAPHS = 150        # paper: 9598
BENCH_MIN_NODES = 4           # paper: 2
BENCH_MAX_NODES = 12          # paper: 15
BENCH_LABEL_ITERS = 100       # paper: 500
BENCH_TEST_SIZE = 30          # paper: 100
BENCH_EPOCHS = 60             # paper: 100
BENCH_EVAL_ITERS = 15         # tight budget exposing warm-start value
BENCH_SEED = 20240305


def write_artifact(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def bench_dataset():
    """The benchmark-scale labeled dataset (raw, before repairs)."""
    config = GenerationConfig(
        num_graphs=BENCH_NUM_GRAPHS,
        min_nodes=BENCH_MIN_NODES,
        max_nodes=BENCH_MAX_NODES,
        optimizer_iters=BENCH_LABEL_ITERS,
        seed=BENCH_SEED,
    )
    return generate_dataset(config)


@pytest.fixture(scope="session")
def repaired_dataset(bench_dataset):
    """Dataset after fixed-angle relabeling + selective data pruning."""
    relabeled, _ = fixed_angle_relabel(bench_dataset)
    pruned, _ = selective_data_pruning(
        relabeled, threshold=0.7, selective_rate=0.7, rng=BENCH_SEED
    )
    return pruned


@pytest.fixture(scope="session")
def train_test_split(repaired_dataset):
    """Stratified (train, test) split with the benchmark test size."""
    return stratified_split(repaired_dataset, BENCH_TEST_SIZE, rng=BENCH_SEED)


@pytest.fixture(scope="session")
def trained_models(train_test_split):
    """One trained predictor per paper architecture."""
    train_set, _ = train_test_split
    models = {}
    for index, arch in enumerate(("gat", "gcn", "gin", "sage")):
        model = QAOAParameterPredictor(arch=arch, p=1, rng=BENCH_SEED + index)
        trainer = Trainer(
            model,
            TrainingConfig(epochs=BENCH_EPOCHS, seed=BENCH_SEED + index),
        )
        trainer.fit(train_set)
        model.eval()
        models[arch] = model
    return models


@pytest.fixture(scope="session")
def evaluation_results(train_test_split, trained_models):
    """Warm-start evaluation of every architecture on the test set."""
    _, test_set = train_test_split
    evaluator = WarmStartEvaluator(
        p=1, optimizer_iters=BENCH_EVAL_ITERS, rng=BENCH_SEED
    )
    return evaluator.evaluate_models(test_set.graphs(), trained_models)
