"""Experiment fig4 — possible approximation ratio by degree.

Regenerates Figure 4: the AR spread per regular degree. Expected shape
(both in the paper and in p=1 QAOA theory): higher degrees achieve lower
approximation ratios within a fixed ansatz depth.
"""

import numpy as np

from repro.analysis.figures import export_csv, interval_series, render_intervals
from repro.data.stats import ar_by_degree

from benchmarks.conftest import RESULTS_DIR, write_artifact


def test_fig4_ar_by_degree(bench_dataset, benchmark):
    summaries = benchmark.pedantic(
        ar_by_degree, args=(bench_dataset,), rounds=3, iterations=1
    )
    text = render_intervals(
        summaries, "Figure 4: possible approximation ratio by degree"
    )
    write_artifact("fig4_ar_by_degree", text)
    export_csv(interval_series(summaries), RESULTS_DIR / "fig4.csv")

    assert all(s.count > 0 for s in summaries)
    assert all(0.0 < s.minimum <= s.maximum <= 1.0 + 1e-9 for s in summaries)
    # the paper's data-quality story: per-degree intervals show real
    # spread (single random-init labels are uneven in quality)
    populated = [s for s in summaries if s.count >= 5]
    assert any(s.maximum - s.minimum > 0.05 for s in populated)
