"""Serving benchmarks: cache and micro-batching under concurrent load.

``perf``-marked like the other runtime benchmarks — excluded from the
fast suite and run via ``repro bench`` / ``pytest -m perf``. Appends the
serving throughput numbers to the ``BENCH_1.json`` trajectory so future
PRs can regress cache hit rate, batch occupancy, and latency.
"""

from pathlib import Path

import pytest

from repro.benchmarking import append_bench_entry, bench_serving

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_1.json"


def test_perf_serving_cache_and_batching():
    """Warm phase beats cold, cache hits are exact, batches coalesce."""
    results = bench_serving(num_graphs=64, threads=8)
    append_bench_entry(BENCH_PATH, {"serving": results})

    # Every warm request is an isomorphic copy of a cold one: the WL
    # cache must answer all of them (hit rate >= warm / total = 1/2;
    # chance WL-collisions between cold graphs can only raise it).
    assert results["cache_hit_rate"] >= 0.5, results

    # Cache hits skip the model forward entirely, so the warm phase must
    # be strictly faster than the cold phase.
    assert (
        results["warm"]["requests_per_second"]
        > results["cold"]["requests_per_second"]
    ), results

    # Concurrent clients must actually coalesce into shared forwards.
    assert results["batch_occupancy_mean"] > 1.0, results

    # Every answer (cold forwards and cached repeats alike) traces back
    # to the model, never the fallback chain: 64 cold + 64 warm.
    assert results["sources"] == {"model": 128}, results

    # Latency sanity: percentile ordering holds.
    latency = results["latency"]
    assert latency["p50_ms"] <= latency["p90_ms"] <= latency["p99_ms"]
