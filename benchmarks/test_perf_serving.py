"""Serving benchmarks: cache and micro-batching under concurrent load.

``perf``-marked like the other runtime benchmarks — excluded from the
fast suite and run via ``repro bench`` / ``pytest -m perf``. Appends the
serving throughput numbers to the ``BENCH_1.json`` trajectory so future
PRs can regress cache hit rate, batch occupancy, and latency.
"""

from pathlib import Path

import pytest

from repro.benchmarking import (
    append_bench_entry,
    bench_serving,
    bench_serving_scale,
)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_1.json"
SCALE_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"


def test_perf_serving_cache_and_batching():
    """Warm phase beats cold, cache hits are exact, batches coalesce."""
    results = bench_serving(num_graphs=64, threads=8)
    append_bench_entry(BENCH_PATH, {"serving": results})

    # Every warm request is an isomorphic copy of a cold one: the WL
    # cache must answer all of them (hit rate >= warm / total = 1/2;
    # chance WL-collisions between cold graphs can only raise it).
    assert results["cache_hit_rate"] >= 0.5, results

    # Cache hits skip the model forward entirely, so the warm phase must
    # be strictly faster than the cold phase.
    assert (
        results["warm"]["requests_per_second"]
        > results["cold"]["requests_per_second"]
    ), results

    # Concurrent clients must actually coalesce into shared forwards.
    assert results["batch_occupancy_mean"] > 1.0, results

    # Every answer (cold forwards and cached repeats alike) traces back
    # to the model, never the fallback chain: 64 cold + 64 warm.
    assert results["sources"] == {"model": 128}, results

    # Latency sanity: percentile ordering holds.
    latency = results["latency"]
    assert latency["p50_ms"] <= latency["p90_ms"] <= latency["p99_ms"]


def test_perf_serving_scale_multi_worker():
    """The scale stack out-serves the thread-per-connection baseline.

    Both stacks serve the same model over real HTTP under the same
    closed-loop load. The scale stack must (a) answer bit-identically,
    (b) sustain strictly more QPS with 2 workers than the
    single-process server, and (c) stay clean under 10x overload —
    bounded p99, no status other than 200/503, every 503 carrying
    Retry-After.
    """
    results = bench_serving_scale(workers=2)
    append_bench_entry(SCALE_BENCH_PATH, {"serving_scale": results})

    assert results["bit_identical"], "scale stack answered differently"

    qps = results["max_sustainable_qps"]
    assert qps["scale"] > qps["baseline"], results["max_sustainable_qps"]

    overload = results["overload"]
    assert overload["clean"], overload
    assert overload["p99_ms"] is not None
    # Sheds bound latency: p99 under overload stays within the shed
    # deadline (default 1s) plus scheduling slop, never unbounded.
    assert overload["p99_ms"] < 5000.0, overload
