"""Performance benchmarks of the core kernels.

Not a paper artifact — these quantify the substrate costs that make the
full pipeline feasible: QAOA expectation/gradient evaluation at the
paper's largest size (15 qubits) and GNN forward/backward at batch
scale. Useful for regression-testing the kernels.
"""

import numpy as np
import pytest

from repro.gnn.batching import GraphBatch
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_regular_graph
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor
from repro.qaoa.simulator import QAOASimulator

from benchmarks.conftest import BENCH_SEED

pytestmark = pytest.mark.perf


def test_perf_expectation_15_qubits(benchmark):
    graph = random_regular_graph(15, 4, rng=BENCH_SEED)
    simulator = QAOASimulator(graph)
    gammas = np.array([0.5, 0.8])
    betas = np.array([0.3, 0.2])
    value = benchmark(simulator.expectation, gammas, betas)
    assert 0.0 < value < graph.num_edges


def test_perf_gradient_15_qubits(benchmark):
    graph = random_regular_graph(15, 4, rng=BENCH_SEED)
    simulator = QAOASimulator(graph)
    gammas = np.array([0.5, 0.8])
    betas = np.array([0.3, 0.2])
    energy, grad_gamma, grad_beta = benchmark(
        simulator.expectation_and_gradient, gammas, betas
    )
    assert grad_gamma.shape == (2,)


def test_perf_brute_force_15_nodes(benchmark):
    from repro.maxcut.bruteforce import brute_force_maxcut

    graph = random_regular_graph(15, 4, rng=BENCH_SEED)
    solution = benchmark(brute_force_maxcut, graph)
    assert solution.optimal


def test_perf_gnn_forward_batch(benchmark):
    graphs = [
        random_regular_graph(10, 3, rng=BENCH_SEED + i) for i in range(32)
    ]
    model = QAOAParameterPredictor(arch="gin", p=1, rng=BENCH_SEED)
    model.eval()
    batch = GraphBatch.from_graphs(graphs)

    from repro.nn.tensor import no_grad

    def forward():
        with no_grad():
            return model(batch)

    output = benchmark(forward)
    assert output.shape == (32, 2)


def test_perf_gnn_train_step(benchmark):
    graphs = [
        random_regular_graph(10, 3, rng=BENCH_SEED + i) for i in range(32)
    ]
    model = QAOAParameterPredictor(arch="gin", p=1, rng=BENCH_SEED)
    batch = GraphBatch.from_graphs(graphs)
    targets = Tensor(np.tile([0.6, 0.3], (32, 1)))

    from repro.nn.optim import Adam

    optimizer = Adam(model.parameters(), 1e-3)

    def step():
        optimizer.zero_grad()
        loss = mse_loss(model(batch), targets)
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)
