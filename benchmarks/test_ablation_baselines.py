"""Experiment abl-baseline — does graph structure earn its keep?

Compares the GNN warm start against two structure-free baselines on the
same test set and budget:

- the training-set *mean* parameters (the strongest constant), and
- an MLP on aggregate degree statistics (no message passing).

Expected shape: the mean baseline is surprisingly strong at p=1 (good
angles concentrate), the stats MLP adds a little, and the GNN matches
or beats both — quantifying how much of the paper's effect is graph
structure vs. plain label concentration.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.gnn.baselines import (
    BucketMedianPredictor,
    DegreeStatsPredictor,
    MeanPredictor,
)
from repro.pipeline.evaluation import WarmStartEvaluator

from benchmarks.conftest import (
    BENCH_EVAL_ITERS,
    BENCH_SEED,
    RESULTS_DIR,
    write_artifact,
)
from repro.analysis.figures import export_csv


def test_ablation_baselines(
    train_test_split, trained_models, benchmark
):
    train_set, test_set = train_test_split
    test_graphs = test_set.graphs()

    def compare():
        evaluator = WarmStartEvaluator(
            p=1, optimizer_iters=BENCH_EVAL_ITERS, rng=BENCH_SEED
        )
        strategies = {
            "mean_constant": MeanPredictor().fit(train_set),
            "bucket_median": BucketMedianPredictor().fit(train_set),
            "stats_mlp": DegreeStatsPredictor(
                epochs=300, rng=BENCH_SEED
            ).fit(train_set),
            "gnn_gin": trained_models["gin"],
        }
        rows = []
        for name, predictor in strategies.items():
            result = evaluator.evaluate_strategy(
                test_graphs, predictor.as_initialization(), name
            )
            rows.append(
                {
                    "strategy": name,
                    "improvement_pp": result.mean_improvement,
                    "std_pp": result.std_improvement,
                    "win_rate": result.win_rate(),
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["strategy", "improvement_pp", "std_pp", "win_rate"],
        title="Ablation: GNN vs structure-free warm-start baselines",
    )
    write_artifact("ablation_baselines", text)
    export_csv(rows, RESULTS_DIR / "ablation_baselines.csv")

    by_name = {row["strategy"]: row for row in rows}
    # all learned warm starts should beat random init on average here
    assert by_name["gnn_gin"]["improvement_pp"] > 0
    # the GNN keeps pace with the structure-free baselines
    best_baseline = max(
        by_name["mean_constant"]["improvement_pp"],
        by_name["bucket_median"]["improvement_pp"],
        by_name["stats_mlp"]["improvement_pp"],
    )
    assert by_name["gnn_gin"]["improvement_pp"] >= best_baseline - 5.0
