"""Experiment table1 — average AR improvement per GNN architecture.

Regenerates Table 1: the mean +/- std improvement (percentage points of
approximation ratio) of each GNN warm start over random initialization
across the held-out test set. Paper values (100 test graphs, full
scale): GAT 3.28+/-9.99, GCN 3.65+/-10.17, GIN 3.66+/-9.97, GraphSAGE
2.86+/-10.01. We check the *shape* — every architecture improves on
average, magnitudes are single-digit percentage points with large
per-instance spread — not the exact numbers (different dataset scale
and budgets).
"""

import numpy as np

from repro.analysis.breakdown import improvement_by_degree, improvement_by_size
from repro.analysis.significance import significance_table
from repro.analysis.tables import format_rows, format_table1

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv


def test_table1(evaluation_results, benchmark):
    text = benchmark.pedantic(
        format_table1, args=(evaluation_results,), rounds=3, iterations=1
    )
    write_artifact("table1_improvements", text)
    export_csv(
        [result.summary() for result in evaluation_results.values()],
        RESULTS_DIR / "table1.csv",
    )

    improvements = {
        arch: result.mean_improvement
        for arch, result in evaluation_results.items()
    }
    # paper shape: every architecture helps on average
    for arch, value in improvements.items():
        assert value > -1.0, f"{arch} regressed: {value:.2f}"
    assert np.mean(list(improvements.values())) > 0.0
    # per-instance spread dominates the mean (paper: ~3 +/- ~10)
    for arch, result in evaluation_results.items():
        assert result.std_improvement >= 0.0


def test_table1_significance(evaluation_results, benchmark):
    """Paired statistical tests: is the improvement real?

    The paper's 3.66 +/- 9.97 regime is borderline at n=100; at our
    benchmark scale the effect is stronger, so the paired t-test should
    reject zero for every architecture.
    """
    rows = benchmark.pedantic(
        significance_table, args=(evaluation_results,), rounds=3,
        iterations=1,
    )
    text = format_rows(
        rows,
        ["strategy", "mean_pp", "t_pvalue", "wilcoxon_pvalue",
         "sign_pvalue", "significant_5pct", "n"],
        title="Table 1 significance (paired tests vs zero improvement)",
    )
    write_artifact("table1_significance", text)
    export_csv(rows, RESULTS_DIR / "table1_significance.csv")

    for row in rows:
        assert row["n"] == 30
        assert 0.0 <= row["t_pvalue"] <= 1.0
    # at least one architecture shows a significant improvement
    assert any(row["significant_5pct"] for row in rows)


def test_table1_breakdown(evaluation_results, benchmark):
    """Where the improvement comes from: slices by size and degree."""
    result = evaluation_results["gin"]

    def build():
        by_size = improvement_by_size(result)
        by_degree = improvement_by_degree(result)
        return by_size, by_degree

    by_size, by_degree = benchmark.pedantic(build, rounds=3, iterations=1)
    text = format_rows(
        by_size,
        ["num_nodes", "count", "mean_improvement_pp", "mean_random_ar",
         "mean_warm_ar"],
        title="Table 1 breakdown (GIN) by graph size",
    )
    text += "\n\n" + format_rows(
        by_degree,
        ["degree", "count", "mean_improvement_pp", "mean_random_ar",
         "mean_warm_ar"],
        title="Table 1 breakdown (GIN) by degree",
    )
    write_artifact("table1_breakdown", text)
    export_csv(by_size, RESULTS_DIR / "table1_by_size.csv")
    export_csv(by_degree, RESULTS_DIR / "table1_by_degree.csv")

    assert sum(row["count"] for row in by_size) == len(result.comparisons)
    assert sum(row["count"] for row in by_degree) == len(result.comparisons)
