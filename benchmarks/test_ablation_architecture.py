"""Experiment abl-arch — encoder capacity sweep (Section 4.1 settings).

The paper fixes 2 layers and embedding dim 32; this ablation sweeps
both around the paper's point for the best-performing encoder and
reports training loss and warm-start improvement per configuration.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig

from benchmarks.conftest import (
    BENCH_EVAL_ITERS,
    BENCH_SEED,
    RESULTS_DIR,
    write_artifact,
)
from repro.analysis.figures import export_csv

CONFIGS = (
    {"num_layers": 1, "hidden_dim": 32},
    {"num_layers": 2, "hidden_dim": 16},
    {"num_layers": 2, "hidden_dim": 32},   # the paper's setting
    {"num_layers": 2, "hidden_dim": 64},
    {"num_layers": 3, "hidden_dim": 32},
)


def test_ablation_architecture(train_test_split, benchmark):
    train_set, test_set = train_test_split
    test_graphs = test_set.graphs()

    def sweep():
        rows = []
        for config in CONFIGS:
            model = QAOAParameterPredictor(
                arch="gin", p=1, rng=BENCH_SEED, **config
            )
            trainer = Trainer(
                model, TrainingConfig(epochs=40, seed=BENCH_SEED)
            )
            history = trainer.fit(train_set)
            model.eval()
            evaluator = WarmStartEvaluator(
                p=1, optimizer_iters=BENCH_EVAL_ITERS, rng=BENCH_SEED
            )
            result = evaluator.evaluate_model(test_graphs, model)
            rows.append(
                {
                    "layers": config["num_layers"],
                    "hidden": config["hidden_dim"],
                    "params": model.num_parameters(),
                    "final_loss": history.final_loss,
                    "improvement_pp": result.mean_improvement,
                    "win_rate": result.win_rate(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["layers", "hidden", "params", "final_loss", "improvement_pp",
         "win_rate"],
        title="Ablation: GIN encoder capacity (paper point: 2 layers, 32)",
    )
    write_artifact("ablation_architecture", text)
    export_csv(rows, RESULTS_DIR / "ablation_arch.csv")

    assert len(rows) == len(CONFIGS)
    # the paper's configuration is competitive: within 3pp of the best
    best = max(row["improvement_pp"] for row in rows)
    paper_row = next(
        row for row in rows if row["layers"] == 2 and row["hidden"] == 32
    )
    assert paper_row["improvement_pp"] >= best - 5.0
