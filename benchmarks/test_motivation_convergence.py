"""Experiment fig1/motivation — iterations saved by the GNN warm start.

The paper's framework figure and motivation section promise that the
warm start lets QAOA "achieve convergence with fewer iterations on
quantum computers". This bench measures it: for each test graph, race
the optimizer from a random start and from the GNN start to a target of
95% of the instance's achievable expectation, and report the iterations
each needed. Saved iterations = saved quantum-hardware shots.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.pipeline.convergence import ConvergenceAnalyzer

from benchmarks.conftest import BENCH_SEED, RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv


def test_motivation_convergence(train_test_split, trained_models, benchmark):
    _, test_set = train_test_split
    test_graphs = test_set.graphs()[:15]
    model = trained_models["gin"]

    def race():
        analyzer = ConvergenceAnalyzer(
            p=1, budget=100, target_ratio=0.95, rng=BENCH_SEED
        )
        return analyzer.compare(test_graphs, model.as_initialization())

    report = benchmark.pedantic(race, rounds=1, iterations=1)
    rows = [report.summary()]
    text = format_rows(
        rows,
        [
            "target_ratio",
            "budget",
            "mean_saved_iterations",
            "random_reach_rate",
            "warm_reach_rate",
            "count",
        ],
        title=(
            "Motivation: optimizer iterations saved by the GNN warm start "
            "(GIN, target = 95% of achievable)"
        ),
    )
    write_artifact("motivation_convergence", text)
    export_csv(rows, RESULTS_DIR / "motivation_convergence.csv")

    # the paper's claim: warm starts converge at least as fast on average
    assert report.mean_saved_iterations > -5.0
    assert report.reach_rate("warm") >= report.reach_rate("random") - 0.15
