"""Experiment abl-interp — composing the warm start with depth extension.

The GNN predicts p=1 angles; INTERP/FOURIER (Zhou et al.) extend them
to deeper circuits. This ablation compares three p=3 starting points
under a tight optimization budget:

- random p=3 angles,
- GNN p=1 prediction extended by INTERP,
- GNN p=1 prediction extended by FOURIER,

showing the warm start's value compounds with depth-extension
heuristics (an extension beyond the paper, using its own model).
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.interp import fourier_extend, interp_to_depth
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import ensure_rng

from benchmarks.conftest import BENCH_SEED, RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv

TARGET_P = 3
BUDGET = 15


def _final_ratio(graph, gammas0, betas0):
    problem = MaxCutProblem(graph)
    simulator = QAOASimulator(problem)
    result = AdamOptimizer().run(
        simulator,
        np.asarray(gammas0, dtype=np.float64),
        np.asarray(betas0, dtype=np.float64),
        max_iters=BUDGET,
    )
    return problem.approximation_ratio(result.expectation)


def test_ablation_interp(train_test_split, trained_models, benchmark):
    _, test_set = train_test_split
    test_graphs = test_set.graphs()[:12]
    model = trained_models["gin"]

    def sweep():
        rng = ensure_rng(BENCH_SEED)
        random_ratios, interp_ratios, fourier_ratios = [], [], []
        for graph in test_graphs:
            random_ratios.append(
                _final_ratio(
                    graph,
                    rng.uniform(0, 2 * np.pi, TARGET_P),
                    rng.uniform(0, np.pi / 2, TARGET_P),
                )
            )
            g1, b1 = model.predict_angles(graph)
            ig, ib = interp_to_depth(g1, b1, TARGET_P)
            interp_ratios.append(_final_ratio(graph, ig, ib))
            fg, fb = fourier_extend(g1, b1, TARGET_P)
            fourier_ratios.append(_final_ratio(graph, fg, fb))
        return [
            {
                "strategy": "random_p3",
                "mean_ar": float(np.mean(random_ratios)),
                "min_ar": float(np.min(random_ratios)),
            },
            {
                "strategy": "gnn_p1_interp",
                "mean_ar": float(np.mean(interp_ratios)),
                "min_ar": float(np.min(interp_ratios)),
            },
            {
                "strategy": "gnn_p1_fourier",
                "mean_ar": float(np.mean(fourier_ratios)),
                "min_ar": float(np.min(fourier_ratios)),
            },
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["strategy", "mean_ar", "min_ar"],
        title=(
            f"Ablation: p={TARGET_P} initialization via GNN p=1 + depth "
            f"extension ({BUDGET}-iteration budget)"
        ),
    )
    write_artifact("ablation_interp", text)
    export_csv(rows, RESULTS_DIR / "ablation_interp.csv")

    by_name = {row["strategy"]: row for row in rows}
    # extended warm starts beat random p=3 starts under a tight budget
    assert (
        by_name["gnn_p1_interp"]["mean_ar"]
        >= by_name["random_p3"]["mean_ar"] - 0.01
    )
