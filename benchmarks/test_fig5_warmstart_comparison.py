"""Experiment fig5 — per-test-graph AR: random init vs each GNN.

Regenerates Figure 5: for each of the four architectures, the
per-test-graph approximation ratio achieved from random initialization
(orange line in the paper) versus from the GNN warm start (blue line),
under the same optimizer budget. The paper's claims checked here:

- GNN warm starts track or beat random initialization on most
  instances, and
- the GNN traces are *more stable* (lower variance) than random ones.
"""

import numpy as np
import pytest

from repro.analysis.figures import comparison_series, export_csv, render_comparison

from benchmarks.conftest import RESULTS_DIR, write_artifact

ARCHS = ("gat", "gcn", "gin", "sage")


@pytest.mark.parametrize("arch", ARCHS)
def test_fig5_panel(arch, evaluation_results, benchmark):
    result = evaluation_results[arch]
    text = benchmark.pedantic(
        render_comparison, args=(result,), rounds=3, iterations=1
    )
    write_artifact(f"fig5_{arch}", text)
    export_csv(comparison_series(result), RESULTS_DIR / f"fig5_{arch}.csv")

    assert len(result.comparisons) == len(result.strategy_ratios)
    # paper shape: the GNN wins or ties on at least half the instances
    assert result.win_rate() >= 0.5, (
        f"{arch}: win rate {result.win_rate():.2f}"
    )
    # paper shape: GNN traces are more stable than random-init traces
    assert result.strategy_ratios.std() <= result.random_ratios.std() + 0.02, (
        f"{arch}: std {result.strategy_ratios.std():.3f} vs "
        f"{result.random_ratios.std():.3f}"
    )
