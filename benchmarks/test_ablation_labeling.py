"""Experiment abl-label — labeling strategy quality (§3.1/§3.3 upgrade).

The paper's labels come from a single random-init optimization; §3.3 is
devoted to repairing the resulting low-quality tail. This bench compares
three labeling strategies on the same graphs:

- single random start (the paper's method),
- multi-restart best-of-3,
- grid-seeded polish (the landscape-analysis global optimizer),

reporting mean/min label AR and the fraction below the paper's 0.7
pruning threshold. Expected shape: restarts and grid-seeding
progressively eliminate the low-AR tail — quantifying exactly how much
of the paper's data-quality problem is a labeling artifact.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.data.generation import label_graph, sample_graphs, GenerationConfig
from repro.qaoa.landscape import global_optimum_p1
from repro.qaoa.simulator import QAOASimulator
from repro.maxcut.problem import MaxCutProblem

from benchmarks.conftest import BENCH_SEED, RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv


def test_ablation_labeling_strategies(benchmark):
    graphs = sample_graphs(
        GenerationConfig(
            num_graphs=40, min_nodes=5, max_nodes=12, seed=BENCH_SEED + 1
        )
    )

    def sweep():
        rows = []
        single = [
            label_graph(g, optimizer_iters=25, rng=BENCH_SEED + i)
            .approximation_ratio
            for i, g in enumerate(graphs)
        ]
        multi = [
            label_graph(
                g, optimizer_iters=25, restarts=3, rng=BENCH_SEED + i
            ).approximation_ratio
            for i, g in enumerate(graphs)
        ]
        seeded = []
        for g in graphs:
            problem = MaxCutProblem(g)
            _, _, value = global_optimum_p1(
                QAOASimulator(problem), polish_iters=25
            )
            seeded.append(problem.approximation_ratio(value))
        for name, ratios in (
            ("single_random (paper)", single),
            ("best_of_3_restarts", multi),
            ("grid_seeded_polish", seeded),
        ):
            arr = np.asarray(ratios)
            rows.append(
                {
                    "strategy": name,
                    "mean_ar": float(arr.mean()),
                    "min_ar": float(arr.min()),
                    "below_0.7": float((arr < 0.7).mean()),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["strategy", "mean_ar", "min_ar", "below_0.7"],
        title="Ablation: labeling strategy vs label quality (25-iter budget)",
    )
    write_artifact("ablation_labeling", text)
    export_csv(rows, RESULTS_DIR / "ablation_labeling.csv")

    by_name = {row["strategy"]: row for row in rows}
    # restarts never hurt; grid seeding is the strongest
    assert (
        by_name["best_of_3_restarts"]["mean_ar"]
        >= by_name["single_random (paper)"]["mean_ar"] - 1e-9
    )
    assert (
        by_name["grid_seeded_polish"]["mean_ar"]
        >= by_name["best_of_3_restarts"]["mean_ar"] - 0.02
    )
    assert (
        by_name["grid_seeded_polish"]["below_0.7"]
        <= by_name["single_random (paper)"]["below_0.7"] + 1e-9
    )
