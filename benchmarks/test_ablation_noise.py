"""Experiment abl-noise — warm starts under NISQ noise (future work §7).

The paper motivates warm starts with NISQ error rates and lists noise
robustness as future work. This bench runs the paired random-vs-GNN
comparison on a *noisy* simulator (per-layer global depolarizing channel
+ readout error) across noise strengths, checking that:

- absolute approximation ratios degrade as fidelity drops, and
- the warm start's advantage survives moderate noise (its value is in
  the starting point, which noise does not touch).
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.qaoa.optimizers import AdamOptimizer
from repro.quantum.noise import NoiseSpec, NoisyQAOASimulator
from repro.qaoa.initialization import RandomInitialization
from repro.utils.rng import ensure_rng, spawn_rng

from benchmarks.conftest import BENCH_SEED, RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv

FIDELITIES = (1.0, 0.95, 0.85, 0.7)


def _noisy_final_ratio(graph, gammas0, betas0, fidelity, iters=15):
    noisy = NoisyQAOASimulator(
        graph, NoiseSpec(layer_fidelity=fidelity), rng=BENCH_SEED
    )
    result = AdamOptimizer().run(
        noisy,
        np.asarray(gammas0, dtype=np.float64),
        np.asarray(betas0, dtype=np.float64),
        max_iters=iters,
    )
    return noisy.approximation_ratio(result.gammas, result.betas)


def test_ablation_noise(train_test_split, trained_models, benchmark):
    _, test_set = train_test_split
    test_graphs = test_set.graphs()[:15]
    model = trained_models["gin"]
    random_strategy = RandomInitialization()

    def sweep():
        rows = []
        master = ensure_rng(BENCH_SEED)
        for fidelity in FIDELITIES:
            random_ratios = []
            warm_ratios = []
            for graph in test_graphs:
                g0, b0 = random_strategy.initial_parameters(
                    graph, 1, spawn_rng(master)
                )
                random_ratios.append(
                    _noisy_final_ratio(graph, g0, b0, fidelity)
                )
                wg, wb = model.predict_angles(graph)
                warm_ratios.append(
                    _noisy_final_ratio(graph, wg, wb, fidelity)
                )
            rows.append(
                {
                    "layer_fidelity": fidelity,
                    "random_ar": float(np.mean(random_ratios)),
                    "gnn_ar": float(np.mean(warm_ratios)),
                    "improvement_pp": 100.0
                    * (np.mean(warm_ratios) - np.mean(random_ratios)),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["layer_fidelity", "random_ar", "gnn_ar", "improvement_pp"],
        title="Ablation: warm start vs noise strength (GIN, 15 test graphs)",
    )
    write_artifact("ablation_noise", text)
    export_csv(rows, RESULTS_DIR / "ablation_noise.csv")

    by_fidelity = {row["layer_fidelity"]: row for row in rows}
    # absolute quality decays with noise
    assert by_fidelity[0.7]["gnn_ar"] < by_fidelity[1.0]["gnn_ar"]
    assert by_fidelity[0.7]["random_ar"] < by_fidelity[1.0]["random_ar"]
    # the warm-start advantage survives moderate noise
    assert by_fidelity[0.95]["improvement_pp"] > -1.0
