"""Evaluation-sweep throughput benchmark: batched vs serial engine.

``perf``-marked like the other runtime benchmarks — excluded from the
fast suite and run via ``repro bench`` / ``pytest -m perf``. Appends
the engine arms to the ``BENCH_3.json`` trajectory so future PRs can
regress warm-start evaluation speed.
"""

from pathlib import Path

import pytest

from repro.benchmarking import append_bench_entry, bench_evaluation

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_3.json"


def test_perf_evaluation_batched_vs_serial():
    """Batched sweep beats serial; per-graph ratios agree to 1e-10."""
    results = bench_evaluation(
        num_graphs=100, p=2, optimizer_iters=60, repeats=2
    )
    append_bench_entry(BENCH_PATH, {"evaluation": results})

    arms = results["arms"]

    # bench_evaluation verifies per-graph agreement itself (and raises
    # above 1e-10); re-assert the recorded number here.
    assert arms["batched"]["max_abs_diff_vs_serial"] <= 1e-10, arms

    # The acceptance bar is 2x on a quiet machine; assert a lower
    # floor here so background load on shared CI runners cannot flake
    # the suite (the recorded trajectory keeps the honest number).
    assert results["speedup"] >= 1.5, results["speedup"]

    for name in ("serial", "batched"):
        arm = arms[name]
        # Best-of-repeats is the noise-robust statistic.
        assert arm["repeats"] == 2
        assert 0 < arm["best_wall_s"] <= arm["wall_time_s"] * 1.001
        assert arm["graphs_per_second"] > 0
        phases = arm["profile"]["phases"]
        for phase in ("prepare", "optimize", "aggregate"):
            assert phase in phases, (name, sorted(phases))
