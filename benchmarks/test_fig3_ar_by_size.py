"""Experiment fig3 — possible approximation ratio by graph size.

Regenerates Figure 3: the spread of labeled approximation ratios per
graph size. The paper's claim: label quality from single random-init
optimization is uneven, with a sizable low-AR tail; larger graphs trend
toward wider/lower intervals at p=1.
"""

import numpy as np

from repro.analysis.figures import export_csv, interval_series, render_intervals
from repro.data.stats import ar_by_size, low_quality_fraction

from benchmarks.conftest import RESULTS_DIR, write_artifact


def test_fig3_ar_by_size(bench_dataset, benchmark):
    summaries = benchmark.pedantic(
        ar_by_size, args=(bench_dataset,), rounds=3, iterations=1
    )
    text = render_intervals(
        summaries, "Figure 3: possible approximation ratio by graph size"
    )
    low = low_quality_fraction(bench_dataset, threshold=0.7)
    text += f"\nfraction below AR 0.7: {low:.3f}"
    write_artifact("fig3_ar_by_size", text)
    export_csv(interval_series(summaries), RESULTS_DIR / "fig3.csv")

    # every size bucket is populated and ratios live in (0, 1]
    assert all(s.count > 0 for s in summaries)
    assert all(0.0 < s.minimum <= s.maximum <= 1.0 + 1e-9 for s in summaries)
    # the paper's data-quality story: intervals have real spread
    assert any(s.maximum - s.minimum > 0.05 for s in summaries)
