"""Record a benchmark trajectory entry: ``python -m benchmarks.record``.

Thin wrapper over :mod:`repro.benchmarking` (also exposed as
``repro bench`` in the CLI). Runs the simulator-kernel before/after
benchmarks and the labeling-throughput comparison, then appends one
entry to the ``BENCH_1.json`` trajectory at the repository root.

Examples::

    PYTHONPATH=src python -m benchmarks.record
    PYTHONPATH=src python -m benchmarks.record --graphs 50 --skip-labeling
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.benchmarking import DEFAULT_BENCH_PATH, format_entry, run_benchmarks

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append a kernel/labeling benchmark entry to BENCH_1.json"
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / DEFAULT_BENCH_PATH
    )
    parser.add_argument("--graphs", type=int, default=200)
    parser.add_argument("--backends", type=str, default="serial,process")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--kernel-repeats", type=int, default=10)
    parser.add_argument("--skip-labeling", action="store_true")
    args = parser.parse_args(argv)
    entry = run_benchmarks(
        path=args.out,
        labeling_graphs=args.graphs,
        backends=tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        ),
        workers=args.workers,
        kernel_repeats=args.kernel_repeats,
        skip_labeling=args.skip_labeling,
    )
    print(format_entry(entry))
    print(f"appended run {entry['run']} to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
