"""Record a benchmark trajectory entry: ``python -m benchmarks.record``.

Thin wrapper over :mod:`repro.benchmarking` (also exposed as
``repro bench`` in the CLI). Runs the simulator-kernel before/after
benchmarks, the labeling-throughput comparison, the training-throughput
arms, the evaluation-sweep arms, and the lazy-engine fusion arms, then
appends entries to the ``BENCH_1.json`` (kernels/labeling/serving),
``BENCH_2.json`` (training), ``BENCH_3.json`` (evaluation), and
``BENCH_4.json`` (tensor engine) trajectories at the repository root.

Examples::

    PYTHONPATH=src python -m benchmarks.record
    PYTHONPATH=src python -m benchmarks.record --graphs 50 --skip-labeling
    PYTHONPATH=src python -m benchmarks.record --validate-evaluation BENCH_3.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.benchmarking import (
    DEFAULT_BENCH_PATH,
    DEFAULT_EVALUATION_BENCH_PATH,
    DEFAULT_FUSION_BENCH_PATH,
    DEFAULT_TRAINING_BENCH_PATH,
    format_entry,
    run_benchmarks,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def validate_evaluation_trajectory(path: Path) -> dict:
    """Assert the ``BENCH_3.json`` trajectory at ``path`` is well formed.

    Checks the newest entry: schema version, both engine arms with
    positive best wall times, the equivalence guarantee recorded on the
    batched arm, and a finite speedup. Returns the validated entry.
    """
    entries = json.loads(Path(path).read_text())
    assert entries, f"{path} holds an empty trajectory"
    entry = entries[-1]
    assert entry["schema"] == 1, entry
    results = entry["results"]["evaluation"]
    arms = results["arms"]
    for name in ("serial", "batched"):
        arm = arms[name]
        assert arm["best_wall_s"] > 0, (name, arm)
        assert arm["graphs_per_second"] > 0, (name, arm)
    assert arms["batched"]["max_abs_diff_vs_serial"] <= 1e-10, arms
    assert results["speedup"] > 0, results
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "append benchmark entries to BENCH_1.json / BENCH_2.json / "
            "BENCH_3.json / BENCH_4.json"
        )
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / DEFAULT_BENCH_PATH
    )
    parser.add_argument("--graphs", type=int, default=200)
    parser.add_argument("--backends", type=str, default="serial,process")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--kernel-repeats", type=int, default=10)
    parser.add_argument("--skip-labeling", action="store_true")
    parser.add_argument("--skip-serving", action="store_true")
    parser.add_argument("--skip-training", action="store_true")
    parser.add_argument(
        "--training-out",
        type=Path,
        default=REPO_ROOT / DEFAULT_TRAINING_BENCH_PATH,
    )
    parser.add_argument("--training-graphs", type=int, default=128)
    parser.add_argument("--training-epochs", type=int, default=8)
    parser.add_argument("--skip-evaluation", action="store_true")
    parser.add_argument(
        "--evaluation-out",
        type=Path,
        default=REPO_ROOT / DEFAULT_EVALUATION_BENCH_PATH,
    )
    parser.add_argument("--evaluation-graphs", type=int, default=100)
    parser.add_argument("--evaluation-iters", type=int, default=60)
    parser.add_argument("--skip-fusion", action="store_true")
    parser.add_argument(
        "--fusion-out",
        type=Path,
        default=REPO_ROOT / DEFAULT_FUSION_BENCH_PATH,
    )
    parser.add_argument("--fusion-graphs", type=int, default=128)
    parser.add_argument("--fusion-epochs", type=int, default=8)
    parser.add_argument("--fusion-reps", type=int, default=3)
    parser.add_argument(
        "--validate-evaluation",
        type=Path,
        default=None,
        metavar="BENCH_3_PATH",
        help="validate an existing evaluation trajectory and exit",
    )
    args = parser.parse_args(argv)
    if args.validate_evaluation is not None:
        entry = validate_evaluation_trajectory(args.validate_evaluation)
        speedup = entry["results"]["evaluation"]["speedup"]
        print(
            f"{args.validate_evaluation} ok: run {entry['run']}, "
            f"batched speedup {speedup:.2f}x"
        )
        return 0
    entry = run_benchmarks(
        path=args.out,
        labeling_graphs=args.graphs,
        backends=tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        ),
        workers=args.workers,
        kernel_repeats=args.kernel_repeats,
        skip_labeling=args.skip_labeling,
        skip_serving=args.skip_serving,
        skip_training=args.skip_training,
        training_path=args.training_out,
        training_graphs=args.training_graphs,
        training_epochs=args.training_epochs,
        skip_evaluation=args.skip_evaluation,
        evaluation_path=args.evaluation_out,
        evaluation_graphs=args.evaluation_graphs,
        evaluation_iters=args.evaluation_iters,
        skip_fusion=args.skip_fusion,
        fusion_path=args.fusion_out,
        fusion_graphs=args.fusion_graphs,
        fusion_epochs=args.fusion_epochs,
        fusion_reps=args.fusion_reps,
    )
    print(format_entry(entry))
    print(f"appended run {entry['run']} to {args.out}")
    if not args.skip_training:
        print(f"appended training benchmark to {args.training_out}")
    if not args.skip_evaluation:
        print(f"appended evaluation benchmark to {args.evaluation_out}")
    if not args.skip_fusion:
        print(f"appended engine benchmark to {args.fusion_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
