"""Record a benchmark trajectory entry: ``python -m benchmarks.record``.

Thin wrapper over :mod:`repro.benchmarking` (also exposed as
``repro bench`` in the CLI). Runs the simulator-kernel before/after
benchmarks, the labeling-throughput comparison, and the
training-throughput arms, then appends entries to the ``BENCH_1.json``
(kernels/labeling/serving) and ``BENCH_2.json`` (training)
trajectories at the repository root.

Examples::

    PYTHONPATH=src python -m benchmarks.record
    PYTHONPATH=src python -m benchmarks.record --graphs 50 --skip-labeling
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.benchmarking import (
    DEFAULT_BENCH_PATH,
    DEFAULT_TRAINING_BENCH_PATH,
    format_entry,
    run_benchmarks,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append benchmark entries to BENCH_1.json / BENCH_2.json"
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / DEFAULT_BENCH_PATH
    )
    parser.add_argument("--graphs", type=int, default=200)
    parser.add_argument("--backends", type=str, default="serial,process")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--kernel-repeats", type=int, default=10)
    parser.add_argument("--skip-labeling", action="store_true")
    parser.add_argument("--skip-training", action="store_true")
    parser.add_argument(
        "--training-out",
        type=Path,
        default=REPO_ROOT / DEFAULT_TRAINING_BENCH_PATH,
    )
    parser.add_argument("--training-graphs", type=int, default=128)
    parser.add_argument("--training-epochs", type=int, default=8)
    args = parser.parse_args(argv)
    entry = run_benchmarks(
        path=args.out,
        labeling_graphs=args.graphs,
        backends=tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        ),
        workers=args.workers,
        kernel_repeats=args.kernel_repeats,
        skip_labeling=args.skip_labeling,
        skip_training=args.skip_training,
        training_path=args.training_out,
        training_graphs=args.training_graphs,
        training_epochs=args.training_epochs,
    )
    print(format_entry(entry))
    print(f"appended run {entry['run']} to {args.out}")
    if not args.skip_training:
        print(f"appended training benchmark to {args.training_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
