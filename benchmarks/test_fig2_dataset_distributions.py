"""Experiment fig2a/fig2b — dataset degree and size distributions.

Regenerates Figure 2 of the paper: (a) the degree frequency and (b) the
graph-size frequency of the generated regular-graph dataset. The paper's
claims: degrees span 2-14 and sizes concentrate on 3-15; at benchmark
scale the ranges are 2-11 and 4-12 (see conftest knobs).
"""

from repro.analysis.figures import (
    export_csv,
    histogram_series,
    render_histogram,
)
from repro.data.stats import degree_frequency, size_frequency

from benchmarks.conftest import RESULTS_DIR, write_artifact


def test_fig2a_degree_frequency(bench_dataset, benchmark):
    graphs = bench_dataset.graphs()
    frequency = benchmark.pedantic(
        degree_frequency, args=(graphs,), rounds=3, iterations=1
    )
    text = render_histogram(frequency, "Figure 2(a): degree frequency")
    write_artifact("fig2a_degree_frequency", text)
    export_csv(histogram_series(frequency), RESULTS_DIR / "fig2a.csv")
    # shape checks mirroring the paper's description
    assert min(frequency) >= 2
    assert sum(frequency.values()) == sum(
        g.num_nodes for g in graphs
    )


def test_fig2b_size_frequency(bench_dataset, benchmark):
    graphs = bench_dataset.graphs()
    frequency = benchmark.pedantic(
        size_frequency, args=(graphs,), rounds=3, iterations=1
    )
    text = render_histogram(frequency, "Figure 2(b): graph size frequency")
    write_artifact("fig2b_size_frequency", text)
    export_csv(histogram_series(frequency), RESULTS_DIR / "fig2b.csv")
    assert sum(frequency.values()) == len(graphs)
    assert all(4 <= size <= 12 for size in frequency)
