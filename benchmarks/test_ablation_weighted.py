"""Experiment abl-weighted — weighted graphs (§7 limitation).

The paper: "existing models are primarily designed for unweighted
graphs, leading to inconsistent performance on weighted graphs". This
bench reproduces that *negative* result faithfully: run the identical
pipeline on weighted regular graphs (uniform weights on the same
topologies) and compare the warm-start improvement against the
unweighted pipeline at the same scale.

Expected shape: the weighted improvement is smaller and/or noisier —
weighted labels have no canonical angle domain (no periodicity), so the
regression target is far less concentrated.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.splits import stratified_split
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig

from benchmarks.conftest import (
    BENCH_EVAL_ITERS,
    BENCH_SEED,
    RESULTS_DIR,
    write_artifact,
)
from repro.analysis.figures import export_csv


def _pipeline(weighted: bool):
    config = GenerationConfig(
        num_graphs=70,
        min_nodes=4,
        max_nodes=10,
        optimizer_iters=80,
        weighted=weighted,
        seed=BENCH_SEED + 7,
    )
    dataset = generate_dataset(config)
    train_set, test_set = stratified_split(dataset, 15, rng=BENCH_SEED)
    model = QAOAParameterPredictor(arch="gin", p=1, rng=BENCH_SEED)
    Trainer(model, TrainingConfig(epochs=40, seed=BENCH_SEED)).fit(train_set)
    model.eval()
    evaluator = WarmStartEvaluator(
        p=1, optimizer_iters=BENCH_EVAL_ITERS, rng=BENCH_SEED
    )
    result = evaluator.evaluate_model(test_set.graphs(), model)
    return {
        "setting": "weighted" if weighted else "unweighted",
        "mean_label_ar": float(dataset.approximation_ratios().mean()),
        "improvement_pp": result.mean_improvement,
        "std_pp": result.std_improvement,
        "win_rate": result.win_rate(),
    }


def test_ablation_weighted(benchmark):
    rows = benchmark.pedantic(
        lambda: [_pipeline(False), _pipeline(True)], rounds=1, iterations=1
    )
    text = format_rows(
        rows,
        ["setting", "mean_label_ar", "improvement_pp", "std_pp", "win_rate"],
        title=(
            "Ablation: unweighted vs weighted graphs "
            "(paper §7: weighted is the hard case)"
        ),
    )
    write_artifact("ablation_weighted", text)
    export_csv(rows, RESULTS_DIR / "ablation_weighted.csv")

    by_setting = {row["setting"]: row for row in rows}
    # the pipeline runs end to end on weighted graphs ...
    assert by_setting["weighted"]["win_rate"] >= 0.0
    # ... and the unweighted case is at least as easy (paper's claim),
    # with slack for evaluation noise
    assert (
        by_setting["unweighted"]["improvement_pp"]
        >= by_setting["weighted"]["improvement_pp"] - 3.0
    )
