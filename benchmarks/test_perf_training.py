"""Training-throughput benchmark: cached batches vs the seed loop.

``perf``-marked like the other runtime benchmarks — excluded from the
fast suite and run via ``repro bench`` / ``pytest -m perf``. Appends
the epoch-throughput arms to the ``BENCH_2.json`` trajectory so future
PRs can regress training speed.
"""

from pathlib import Path

import pytest

from repro.benchmarking import append_bench_entry, bench_training

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_2.json"


def test_perf_training_cached_vs_seed_loop():
    """Cached assembly beats the seed loop; losses stay bit-identical."""
    results = bench_training(
        num_graphs=128, batch_size=32, epochs=8, arch="gin"
    )
    append_bench_entry(BENCH_PATH, {"training": results})

    arms = results["arms"]

    # The default cached path must reproduce the seed loop bit for bit;
    # the CSR arm is allowed last-ulp summation-reorder drift.
    assert arms["cached"]["bit_identical_to_before"], arms["cached"]
    assert arms["cached_csr"]["equivalent_to_before"], arms["cached_csr"]

    # The acceptance bar is 1.5x on a quiet machine; assert a lower
    # floor here so background load on shared CI runners cannot flake
    # the suite (the recorded trajectory keeps the honest number).
    assert arms["cached"]["speedup_vs_before"] >= 1.2, arms
    assert results["speedup"] == arms["cached"]["speedup_vs_before"]

    # Every arm ran with the profiler: the phase breakdown must account
    # for the dominant loop phases.
    for name, arm in arms.items():
        phases = arm["profile"]["phases"]
        for phase in ("forward", "backward", "optimizer"):
            assert phase in phases, (name, sorted(phases))
        assert arm["best_epoch_s"] > 0
        assert arm["epochs_per_second"] > 0
