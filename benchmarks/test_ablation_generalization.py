"""Experiment abl-general — size extrapolation of the warm start.

The practical promise of a learned initializer is amortization: train
once on cheap *small* instances, warm-start *larger* ones. This bench
trains a GIN only on graphs with <= 9 nodes and evaluates the
warm start on strictly larger test graphs (10-12 nodes), comparing
against in-distribution evaluation and permutation-augmented training.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.data.augmentation import augment_by_permutation
from repro.data.dataset import QAOADataset
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig

from benchmarks.conftest import (
    BENCH_EVAL_ITERS,
    BENCH_SEED,
    RESULTS_DIR,
    write_artifact,
)
from repro.analysis.figures import export_csv

SIZE_CUTOFF = 9


def test_ablation_size_generalization(repaired_dataset, benchmark):
    small = repaired_dataset.filter(
        lambda r: r.graph.num_nodes <= SIZE_CUTOFF
    )
    large = repaired_dataset.filter(
        lambda r: r.graph.num_nodes > SIZE_CUTOFF
    )
    large_graphs = large.graphs()[:20]
    small_holdout = small.graphs()[:10]
    small_train = QAOADataset(small.records[10:])

    def sweep():
        rows = []
        evaluator_kwargs = dict(
            p=1, optimizer_iters=BENCH_EVAL_ITERS, rng=BENCH_SEED
        )

        def train_and_eval(train_set, test_graphs, label):
            model = QAOAParameterPredictor(arch="gin", p=1, rng=BENCH_SEED)
            Trainer(
                model, TrainingConfig(epochs=40, seed=BENCH_SEED)
            ).fit(train_set)
            model.eval()
            evaluator = WarmStartEvaluator(**evaluator_kwargs)
            result = evaluator.evaluate_model(test_graphs, model)
            rows.append(
                {
                    "setting": label,
                    "train_size": len(train_set),
                    "test_graphs": len(test_graphs),
                    "improvement_pp": result.mean_improvement,
                    "win_rate": result.win_rate(),
                }
            )

        train_and_eval(small_train, small_holdout, "small->small (in-dist)")
        train_and_eval(small_train, large_graphs, "small->large (extrapolate)")
        augmented = augment_by_permutation(
            small_train, copies=1, rng=BENCH_SEED
        )
        train_and_eval(augmented, large_graphs, "small+perm-aug->large")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["setting", "train_size", "test_graphs", "improvement_pp",
         "win_rate"],
        title=(
            f"Ablation: size generalization (train <= {SIZE_CUTOFF} nodes, "
            f"test > {SIZE_CUTOFF})"
        ),
    )
    write_artifact("ablation_generalization", text)
    export_csv(rows, RESULTS_DIR / "ablation_generalization.csv")

    by_setting = {row["setting"]: row for row in rows}
    # extrapolation keeps a usable warm start (doesn't fall apart)
    assert by_setting["small->large (extrapolate)"]["improvement_pp"] > -3.0