"""Experiment abl-depth — QAOA depth sweep.

The paper fixes p for its dataset; this ablation quantifies what depth
buys: labeling quality (achievable AR) rises with p while the quantum
resource cost (2-qubit gates) rises linearly — the tradeoff motivating
warm starts in the first place.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.graphs.generators import random_regular_graph
from repro.qaoa.ansatz import qaoa_resource_counts
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.maxcut.problem import MaxCutProblem

from benchmarks.conftest import BENCH_SEED, RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv


def test_ablation_depth(benchmark):
    graphs = [
        random_regular_graph(10, 3, rng=BENCH_SEED + i) for i in range(6)
    ]

    def sweep():
        rows = []
        rng = np.random.default_rng(BENCH_SEED)
        for p in (1, 2, 3):
            ratios = []
            for graph in graphs:
                simulator = QAOASimulator(graph)
                best = -np.inf
                for _ in range(2):  # restarts
                    result = AdamOptimizer().run(
                        simulator,
                        rng.uniform(0.2, 1.0, p),
                        rng.uniform(0.1, 0.6, p),
                        max_iters=120,
                    )
                    best = max(best, result.expectation)
                ratios.append(
                    best / MaxCutProblem(graph).max_cut_value()
                )
            resources = qaoa_resource_counts(graphs[0], p)
            rows.append(
                {
                    "p": p,
                    "mean_ar": float(np.mean(ratios)),
                    "min_ar": float(np.min(ratios)),
                    "cnot_equivalent": resources["cnot_equivalent"],
                    "depth": resources["depth"],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["p", "mean_ar", "min_ar", "cnot_equivalent", "depth"],
        title="Ablation: QAOA depth vs achievable AR and circuit cost",
    )
    write_artifact("ablation_depth", text)
    export_csv(rows, RESULTS_DIR / "ablation_depth.csv")

    # shape: AR grows (weakly) with p; cost grows linearly with p
    ars = [row["mean_ar"] for row in rows]
    assert ars[1] >= ars[0] - 0.01
    assert ars[2] >= ars[1] - 0.01
    cnots = [row["cnot_equivalent"] for row in rows]
    assert cnots == sorted(cnots)
    assert cnots[2] == 3 * cnots[0]
