"""Experiment abl-sdp — Selective Data Pruning rate sweep (Section 3.3).

The paper: a hard 70% threshold improves label quality but discards too
much data; the *selective rate* retains a fraction of the would-be
discarded records to balance quality against dataset size. This bench
sweeps the rate and reports kept-count and mean label AR, plus the
downstream warm-start improvement of a GIN trained on each variant.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.data.pruning import selective_data_pruning
from repro.data.splits import stratified_split
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig

from benchmarks.conftest import (
    BENCH_EVAL_ITERS,
    BENCH_SEED,
    RESULTS_DIR,
    write_artifact,
)
from repro.analysis.figures import export_csv

RATES = (0.0, 0.3, 0.7, 1.0)


def test_ablation_selective_rate(bench_dataset, train_test_split, benchmark):
    _, shared_test = train_test_split
    test_graphs = shared_test.graphs()

    def sweep():
        rows = []
        for rate in RATES:
            pruned, report = selective_data_pruning(
                bench_dataset, threshold=0.7, selective_rate=rate,
                rng=BENCH_SEED,
            )
            if len(pruned) < 12:
                continue
            train_set, _ = stratified_split(
                pruned, min(10, len(pruned) - 2), rng=BENCH_SEED
            )
            model = QAOAParameterPredictor(arch="gin", p=1, rng=BENCH_SEED)
            Trainer(
                model, TrainingConfig(epochs=30, seed=BENCH_SEED)
            ).fit(train_set)
            model.eval()
            evaluator = WarmStartEvaluator(
                p=1, optimizer_iters=BENCH_EVAL_ITERS, rng=BENCH_SEED
            )
            result = evaluator.evaluate_model(test_graphs, model)
            rows.append(
                {
                    "selective_rate": rate,
                    "kept": report.kept,
                    "rescued": report.rescued,
                    "mean_label_ar": report.mean_ar_after,
                    "improvement_pp": result.mean_improvement,
                    "win_rate": result.win_rate(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_rows(
        rows,
        [
            "selective_rate",
            "kept",
            "rescued",
            "mean_label_ar",
            "improvement_pp",
            "win_rate",
        ],
        title="Ablation: selective data pruning rate (threshold 0.7)",
    )
    write_artifact("ablation_selective_pruning", text)
    export_csv(rows, RESULTS_DIR / "ablation_sdp.csv")

    assert len(rows) >= 2
    by_rate = {row["selective_rate"]: row for row in rows}
    # rate=1.0 keeps everything; rate=0.0 keeps the least
    if 1.0 in by_rate and 0.0 in by_rate:
        assert by_rate[1.0]["kept"] >= by_rate[0.0]["kept"]
        # hard threshold yields the cleanest labels
        assert (
            by_rate[0.0]["mean_label_ar"]
            >= by_rate[1.0]["mean_label_ar"] - 1e-9
        )
