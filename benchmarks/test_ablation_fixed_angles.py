"""Experiment abl-fixed — fixed-angle relabeling coverage and effect.

The paper: fixed-angle tables exist only for regular degrees 3-11,
covering ~6% of the full dataset (587 of 9598 graphs), and the
improvement on that slice alone was too small to move the GNN. This
bench measures coverage and the per-record label-quality change on the
benchmark dataset, plus the quality of fixed angles as direct (no
optimization) initializations.
"""

import numpy as np

from repro.analysis.tables import format_rows
from repro.data.pruning import fixed_angle_relabel
from repro.qaoa.fixed_angles import lookup_fixed_angles
from repro.qaoa.simulator import QAOASimulator

from benchmarks.conftest import RESULTS_DIR, write_artifact
from repro.analysis.figures import export_csv


def test_ablation_fixed_angle_relabel(bench_dataset, benchmark):
    relabeled, report = benchmark.pedantic(
        fixed_angle_relabel, args=(bench_dataset,), rounds=1, iterations=1
    )
    before = bench_dataset.approximation_ratios()
    after = relabeled.approximation_ratios()
    rows = [
        {
            "total": report.total,
            "eligible": report.eligible,
            "relabeled": report.relabeled,
            "coverage": report.coverage_fraction,
            "mean_ar_before": float(before.mean()),
            "mean_ar_after": float(after.mean()),
        }
    ]
    text = format_rows(
        rows,
        [
            "total",
            "eligible",
            "relabeled",
            "coverage",
            "mean_ar_before",
            "mean_ar_after",
        ],
        title="Ablation: fixed-angle relabeling (coverage = degrees 3-11)",
    )
    write_artifact("ablation_fixed_angles", text)
    export_csv(rows, RESULTS_DIR / "ablation_fixed.csv")

    # relabeling never hurts (only_if_better) and covers a strict subset
    assert after.mean() >= before.mean() - 1e-12
    assert 0 < report.eligible < report.total


def test_fixed_angles_quality_per_degree(benchmark):
    def measure():
        rows = []
        for degree in (3, 4, 5, 6):
            entry = lookup_fixed_angles(degree, p=1)
            rows.append(
                {
                    "degree": degree,
                    "gamma": entry.gammas[0],
                    "beta": entry.betas[0],
                    "ensemble_mean_ar": entry.mean_ratio,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_rows(
        rows,
        ["degree", "gamma", "beta", "ensemble_mean_ar"],
        title="Fixed angles (p=1) per degree, ensemble mean AR",
    )
    write_artifact("fixed_angles_per_degree", text)
    # fixed angles give nontrivial ratios without any optimization
    assert all(row["ensemble_mean_ar"] > 0.6 for row in rows)
