"""Tests for shot-based expectation estimation."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.qaoa.optimizers import SPSAOptimizer
from repro.qaoa.shots import ShotBasedSimulator


class TestShotBasedSimulator:
    def test_estimate_near_exact(self, petersen_like):
        simulator = ShotBasedSimulator(petersen_like, shots=8192, rng=0)
        gammas, betas = [0.5], [0.3]
        estimate = simulator.expectation(gammas, betas)
        exact = simulator.exact_expectation(gammas, betas)
        assert abs(estimate - exact) < 0.3

    def test_error_bar_calibrated(self, petersen_like):
        simulator = ShotBasedSimulator(petersen_like, shots=4096, rng=1)
        gammas, betas = [0.5], [0.3]
        estimate, stderr = simulator.expectation_with_error(gammas, betas)
        exact = simulator.exact_expectation(gammas, betas)
        assert abs(estimate - exact) < 5 * stderr
        assert stderr > 0

    def test_more_shots_lower_error(self, petersen_like):
        few = ShotBasedSimulator(petersen_like, shots=64, rng=2)
        many = ShotBasedSimulator(petersen_like, shots=4096, rng=2)
        _, err_few = few.expectation_with_error([0.5], [0.3])
        _, err_many = many.expectation_with_error([0.5], [0.3])
        assert err_many < err_few

    def test_estimates_vary_between_calls(self, petersen_like):
        simulator = ShotBasedSimulator(petersen_like, shots=32, rng=3)
        a = simulator.expectation([0.5], [0.3])
        b = simulator.expectation([0.5], [0.3])
        assert a != b  # sampling noise, not a cached value

    def test_invalid_shots(self, petersen_like):
        with pytest.raises(CircuitError):
            ShotBasedSimulator(petersen_like, shots=0)

    def test_spsa_optimizes_through_shot_noise(self, petersen_like):
        simulator = ShotBasedSimulator(petersen_like, shots=512, rng=4)
        exact_start = simulator.exact_expectation([0.1], [0.1])
        result = SPSAOptimizer(rng=5).run(
            simulator, np.array([0.1]), np.array([0.1]), max_iters=150
        )
        exact_end = simulator.exact_expectation(result.gammas, result.betas)
        assert exact_end > exact_start

    def test_ratio_uses_exact_optimum(self, petersen_like):
        simulator = ShotBasedSimulator(petersen_like, shots=2048, rng=6)
        ratio = simulator.approximation_ratio([0.5], [0.3])
        assert 0.0 < ratio <= 1.05  # sampling noise can nudge above 1
