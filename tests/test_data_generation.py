"""Tests for dataset generation and labeling."""

import numpy as np
import pytest

from repro.data.generation import (
    GenerationConfig,
    canonicalize_angles,
    generate_dataset,
    label_graph,
    paper_scale_config,
    sample_graphs,
)
from repro.exceptions import DatasetError
from repro.qaoa.simulator import QAOASimulator
from repro.runtime import ParallelExecutor


class TestCanonicalize:
    def test_gamma_wraps_2pi(self):
        gammas, betas = canonicalize_angles([2 * np.pi + 0.3], [0.2])
        assert gammas[0] == pytest.approx(0.3)

    def test_beta_wraps_half_pi(self):
        _, betas = canonicalize_angles([0.1], [np.pi / 2 + 0.4])
        assert betas[0] == pytest.approx(0.4)

    def test_negative_angles_fold_to_small_positive(self):
        # -0.1 wraps to 2pi-0.1 > pi, so the time-reversal fold fires
        # and both angles land back at +0.1
        gammas, betas = canonicalize_angles([-0.1], [-0.1])
        assert gammas[0] == pytest.approx(0.1)
        assert betas[0] == pytest.approx(0.1)

    def test_first_gamma_folded_into_half_domain(self):
        gammas, _ = canonicalize_angles([np.pi + 0.5], [0.2])
        assert 0.0 <= gammas[0] <= np.pi

    def test_fold_preserves_expectation(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        raw_g, raw_b = np.array([np.pi + 0.9]), np.array([1.3])
        canon_g, canon_b = canonicalize_angles(raw_g, raw_b)
        assert simulator.expectation(raw_g, raw_b) == pytest.approx(
            simulator.expectation(canon_g, canon_b)
        )

    def test_multilayer_fold_preserves_expectation(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        raw_g = np.array([5.1, 2.2])
        raw_b = np.array([1.0, 2.8])
        canon_g, canon_b = canonicalize_angles(raw_g, raw_b)
        assert simulator.expectation(raw_g, raw_b) == pytest.approx(
            simulator.expectation(canon_g, canon_b)
        )
        assert (canon_b < np.pi / 2).all()

    def test_weighted_passthrough(self):
        gammas, betas = canonicalize_angles([7.0], [4.0], weighted=True)
        assert gammas[0] == 7.0
        assert betas[0] == 4.0

    def test_canonicalization_preserves_expectation(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        raw_g, raw_b = np.array([9.5]), np.array([4.2])
        canon_g, canon_b = canonicalize_angles(raw_g, raw_b)
        assert simulator.expectation(raw_g, raw_b) == pytest.approx(
            simulator.expectation(canon_g, canon_b)
        )


class TestSampleGraphs:
    def test_count_and_ranges(self):
        config = GenerationConfig(num_graphs=30, min_nodes=4, max_nodes=9, seed=1)
        graphs = sample_graphs(config)
        assert len(graphs) == 30
        assert all(4 <= g.num_nodes <= 9 for g in graphs)
        assert all(g.is_regular() for g in graphs)
        assert all(g.regular_degree() >= 2 for g in graphs)

    def test_names_unique(self):
        config = GenerationConfig(num_graphs=20, seed=2)
        graphs = sample_graphs(config)
        assert len({g.name for g in graphs}) == 20

    def test_deterministic(self):
        config = GenerationConfig(num_graphs=10, seed=3)
        a = sample_graphs(config)
        b = sample_graphs(config)
        assert [g.edges for g in a] == [g.edges for g in b]

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            sample_graphs(GenerationConfig(num_graphs=0))
        with pytest.raises(DatasetError):
            sample_graphs(GenerationConfig(min_nodes=1))

    def test_min_nodes_above_max_nodes_raises(self):
        # without validation this config loops forever
        with pytest.raises(DatasetError, match="min_nodes"):
            sample_graphs(GenerationConfig(min_nodes=9, max_nodes=5))

    def test_weighted_config(self):
        config = GenerationConfig(
            num_graphs=8, min_nodes=4, max_nodes=7, weighted=True,
            weight_range=(0.5, 1.5), seed=4,
        )
        graphs = sample_graphs(config)
        assert all(g.is_weighted for g in graphs)
        assert all(
            0.5 <= w <= 1.5 for g in graphs for w in g.weights
        )
        # topology still regular even when weights vary
        assert all(g.is_regular() for g in graphs)

    def test_weighted_labels_not_canonicalized(self):
        config = GenerationConfig(
            num_graphs=3, min_nodes=4, max_nodes=5, optimizer_iters=10,
            weighted=True, seed=5,
        )
        dataset = generate_dataset(config)
        # weighted labels pass through without folding — just sanity
        # check they reproduce their stored expectation
        record = dataset[0]
        simulator = QAOASimulator(record.graph)
        assert simulator.expectation(
            np.asarray(record.gammas), np.asarray(record.betas)
        ) == pytest.approx(record.expectation)


class TestLabelGraph:
    def test_record_consistency(self, petersen_like):
        record = label_graph(petersen_like, optimizer_iters=50, rng=0)
        assert record.p == 1
        assert record.optimal_value > 0
        assert record.approximation_ratio == pytest.approx(
            record.expectation / record.optimal_value
        )
        # label angles reproduce the stored expectation
        simulator = QAOASimulator(petersen_like)
        assert simulator.expectation(
            np.asarray(record.gammas), np.asarray(record.betas)
        ) == pytest.approx(record.expectation)

    def test_angles_canonicalized(self, petersen_like):
        record = label_graph(petersen_like, optimizer_iters=50, rng=1)
        assert all(0 <= g < 2 * np.pi for g in record.gammas)
        assert record.gammas[0] <= np.pi
        assert all(0 <= b < np.pi / 2 for b in record.betas)

    def test_depth_two(self, petersen_like):
        record = label_graph(petersen_like, p=2, optimizer_iters=30, rng=0)
        assert len(record.gammas) == 2
        assert len(record.betas) == 2

    def test_more_iterations_do_not_hurt(self, petersen_like):
        short = label_graph(petersen_like, optimizer_iters=5, rng=3)
        long = label_graph(petersen_like, optimizer_iters=120, rng=3)
        assert long.approximation_ratio >= short.approximation_ratio - 1e-9


class TestGenerateDataset:
    def test_end_to_end(self, tiny_dataset):
        assert len(tiny_dataset) == 24
        ratios = tiny_dataset.approximation_ratios()
        assert (ratios > 0.0).all()
        assert (ratios <= 1.0 + 1e-9).all()

    def test_deterministic_given_seed(self):
        config = GenerationConfig(
            num_graphs=4, min_nodes=4, max_nodes=6, optimizer_iters=10, seed=5
        )
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.targets() == pytest.approx(b.targets())

    def test_paper_scale_config_values(self):
        config = paper_scale_config()
        assert config.num_graphs == 9598
        assert config.optimizer_iters == 500
        assert config.min_nodes == 2
        assert config.max_nodes == 15


class TestParallelGeneration:
    CONFIG = dict(
        num_graphs=6, min_nodes=4, max_nodes=6, optimizer_iters=8, seed=11
    )

    def _targets(self, dataset):
        return np.asarray(dataset.targets())

    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_backend_bit_identical(self, workers):
        config = GenerationConfig(**self.CONFIG)
        serial = generate_dataset(config)
        parallel = generate_dataset(
            config,
            executor=ParallelExecutor(backend="thread", max_workers=workers),
        )
        assert np.array_equal(self._targets(serial), self._targets(parallel))
        assert [r.graph.name for r in serial] == [
            r.graph.name for r in parallel
        ]
        assert [r.expectation for r in serial] == [
            r.expectation for r in parallel
        ]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_backend_bit_identical(self, workers):
        config = GenerationConfig(**self.CONFIG)
        serial = generate_dataset(config)
        parallel = generate_dataset(
            config,
            executor=ParallelExecutor(backend="process", max_workers=workers),
        )
        assert np.array_equal(self._targets(serial), self._targets(parallel))

    def test_config_backend_field_used(self):
        config = GenerationConfig(**self.CONFIG)
        via_field = GenerationConfig(
            **self.CONFIG, backend="thread", workers=2
        )
        assert np.array_equal(
            self._targets(generate_dataset(config)),
            self._targets(generate_dataset(via_field)),
        )

    def test_worker_exception_surfaces_graph_name(self, monkeypatch):
        import repro.data.generation as generation_module

        original = generation_module.label_graph

        def exploding(graph, **kwargs):
            if graph.name.startswith("g00002"):
                raise RuntimeError("boom")
            return original(graph, **kwargs)

        monkeypatch.setattr(generation_module, "label_graph", exploding)
        config = GenerationConfig(**self.CONFIG)
        with pytest.raises(DatasetError, match="g00002") as excinfo:
            generate_dataset(
                config,
                executor=ParallelExecutor(backend="thread", max_workers=2),
            )
        assert "labeling failed" in str(excinfo.value)
