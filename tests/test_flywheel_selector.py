"""Tests for flywheel candidate selection (`repro.flywheel.selector`)."""

import pytest

from repro.exceptions import FlywheelError
from repro.flywheel.replay import ReplayRecord
from repro.flywheel.selector import (
    Candidate,
    SelectionConfig,
    select_candidates,
)
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.graph import Graph


def record_for(graph: Graph, source: str = "random") -> ReplayRecord:
    return ReplayRecord(
        graph=graph,
        wl_hash=wl_canonical_hash(graph),
        p=1,
        gammas=(0.4,),
        betas=(0.3,),
        source=source,
    )


@pytest.fixture
def graphs():
    return {
        "c4": Graph.cycle(4, name="c4"),
        "c5": Graph.cycle(5, name="c5"),
        "c6": Graph.cycle(6, name="c6"),
    }


class TestRanking:
    def test_fallback_pressure_ranks_first(self, graphs):
        records = (
            [record_for(graphs["c4"], source="model")] * 3
            + [record_for(graphs["c5"], source="random")]
        )
        selected = select_candidates(records)
        assert [c.graph.name for c in selected] == ["c5", "c4"]
        assert selected[0].fallback_fraction == 1.0
        assert selected[1].fallback_fraction == 0.0

    def test_frequency_breaks_ties_within_pressure_tier(self, graphs):
        records = (
            [record_for(graphs["c4"], source="random")] * 1
            + [record_for(graphs["c5"], source="random")] * 4
        )
        # Both 100% fallback; c5 has one WL class hit 4 times. Disable
        # AR scoring so frequency decides.
        selected = select_candidates(
            records, config=SelectionConfig(max_evaluations=0)
        )
        assert [c.graph.name for c in selected] == ["c5", "c4"]
        assert selected[0].requests == 4
        assert selected[0].served_ar is None

    def test_served_ar_is_real_and_orders_worst_first(self, graphs):
        records = [
            record_for(graphs["c4"]),
            record_for(graphs["c6"]),
        ]
        selected = select_candidates(records)
        for candidate in selected:
            assert candidate.served_ar is not None
            assert 0.0 < candidate.served_ar <= 1.0
        ars = [c.served_ar for c in selected]
        assert ars == sorted(ars)

    def test_deterministic_across_runs(self, graphs):
        records = [
            record_for(g, source=s)
            for g in graphs.values()
            for s in ("random", "model", "fixed_angle")
        ]
        first = select_candidates(records)
        second = select_candidates(records)
        assert [c.wl_hash for c in first] == [c.wl_hash for c in second]


class TestFiltering:
    def test_dedup_against_existing_dataset(self, graphs):
        records = [record_for(graphs["c4"]), record_for(graphs["c5"])]
        existing = {wl_canonical_hash(graphs["c4"])}
        selected = select_candidates(records, existing_hashes=existing)
        assert [c.graph.name for c in selected] == ["c5"]

    def test_isomorphic_copies_collapse_to_one_class(self):
        # Relabeled C5s share a WL class: one candidate, three requests.
        a = Graph(5, ((0, 1), (1, 2), (2, 3), (3, 4), (4, 0)))
        b = Graph(5, ((1, 0), (0, 4), (4, 3), (3, 2), (2, 1)))
        c = Graph.cycle(5)
        selected = select_candidates([record_for(g) for g in (a, b, c)])
        assert len(selected) == 1
        assert selected[0].requests == 3

    def test_min_requests_filters_cold_classes(self, graphs):
        records = (
            [record_for(graphs["c4"])] * 2 + [record_for(graphs["c5"])]
        )
        selected = select_candidates(
            records, config=SelectionConfig(min_requests=2)
        )
        assert [c.graph.name for c in selected] == ["c4"]

    def test_unlabelable_graphs_skipped(self, graphs):
        too_big = Graph.cycle(18, name="c18")
        edgeless = Graph(3, (), name="empty3")
        records = [
            record_for(too_big),
            record_for(edgeless),
            record_for(graphs["c4"]),
        ]
        selected = select_candidates(records)
        assert [c.graph.name for c in selected] == ["c4"]

    def test_max_candidates_caps_output(self, graphs):
        records = [record_for(g) for g in graphs.values()]
        selected = select_candidates(
            records, config=SelectionConfig(max_candidates=2)
        )
        assert len(selected) == 2

    def test_empty_log_selects_nothing(self):
        assert select_candidates([]) == []


class TestCandidate:
    def test_latest_served_params_win(self, graphs):
        early = record_for(graphs["c4"])
        late = ReplayRecord(
            graph=graphs["c4"],
            wl_hash=early.wl_hash,
            p=1,
            gammas=(0.9,),
            betas=(0.8,),
            source="model",
        )
        selected = select_candidates([early, late])
        assert selected[0].served_gammas == (0.9,)
        assert selected[0].sources == {"random": 1, "model": 1}

    def test_describe_is_json_safe(self, graphs):
        import json

        candidate = select_candidates([record_for(graphs["c4"])])[0]
        assert isinstance(candidate, Candidate)
        json.dumps(candidate.describe())

    def test_config_validation(self):
        with pytest.raises(FlywheelError):
            SelectionConfig(max_candidates=0)
        with pytest.raises(FlywheelError):
            SelectionConfig(min_requests=0)
