"""CompiledDataset: cached batch assembly must match ``from_graphs``.

The batch cache is the default training path, so its output has to be
**bit-identical** to rebuilding the ``GraphBatch`` from raw graphs —
same features, same edge arrays, same targets. The CSR variant
(``build_plans=True``) is allowed to permute edges (sorted by
destination) but must describe the same multigraph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.compiled import CompiledDataset
from repro.data.dataset import QAOADataset, QAOARecord
from repro.exceptions import DatasetError, ModelError
from repro.gnn.batching import GraphBatch
from repro.graphs.generators import random_connected_graph


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(77)
    out = []
    for _ in range(10):
        graph = random_connected_graph(
            int(rng.integers(4, 10)), rng=int(rng.integers(0, 2**31))
        )
        out.append(
            QAOARecord(
                graph=graph,
                p=1,
                gammas=(float(rng.uniform(0, 3)),),
                betas=(float(rng.uniform(0, 1.5)),),
                expectation=1.0,
                optimal_value=2.0,
                approximation_ratio=0.8,
            )
        )
    return out


@pytest.fixture(scope="module")
def compiled(records):
    return CompiledDataset(records, max_nodes=15)


def _reference_batch(records, indices):
    return GraphBatch.from_graphs(
        [records[i].graph for i in indices],
        feature_kind="degree_onehot",
        max_nodes=15,
    )


def _assert_batches_bitwise_equal(batch, reference):
    assert np.array_equal(batch.x.data, reference.x.data)
    assert np.array_equal(batch.edge_src, reference.edge_src)
    assert np.array_equal(batch.edge_dst, reference.edge_dst)
    assert np.array_equal(batch.edge_weight, reference.edge_weight)
    assert np.array_equal(batch.node_graph, reference.node_graph)
    assert batch.num_graphs == reference.num_graphs


class TestBitIdenticalAssembly:
    def test_full_dataset(self, records, compiled):
        indices = list(range(len(records)))
        _assert_batches_bitwise_equal(
            compiled.batch(indices), _reference_batch(records, indices)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_shuffled_subsets(self, records, compiled, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, len(records) + 1))
        indices = rng.permutation(len(records))[:size]
        _assert_batches_bitwise_equal(
            compiled.batch(indices), _reference_batch(records, indices)
        )

    def test_repeated_indices(self, records, compiled):
        indices = [3, 3, 1]
        _assert_batches_bitwise_equal(
            compiled.batch(indices), _reference_batch(records, indices)
        )

    def test_targets_match_records(self, records, compiled):
        expected = np.stack([r.target_vector() for r in records])
        assert np.array_equal(compiled.targets(), expected)
        subset = [4, 0, 7]
        assert np.array_equal(compiled.targets(subset), expected[subset])

    def test_batch_and_targets_aligned(self, records, compiled):
        indices = [5, 2]
        batch, targets = compiled.batch_and_targets(indices)
        _assert_batches_bitwise_equal(
            batch, _reference_batch(records, indices)
        )
        assert np.array_equal(
            targets.data,
            np.stack([records[i].target_vector() for i in indices]),
        )


class TestApi:
    def test_accepts_dataset_and_sequence(self, records):
        from_seq = CompiledDataset(records, max_nodes=15)
        from_ds = CompiledDataset(QAOADataset(records), max_nodes=15)
        assert len(from_seq) == len(from_ds) == len(records)
        assert from_seq.target_dim == from_ds.target_dim == 2

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            CompiledDataset([])

    def test_empty_batch_rejected(self, compiled):
        with pytest.raises(ModelError):
            compiled.batch([])

    def test_full_batch_memoized(self, records, compiled):
        first = compiled.full_batch()
        assert compiled.full_batch() is first
        _assert_batches_bitwise_equal(
            first, _reference_batch(records, range(len(records)))
        )


class TestCsrMode:
    def test_edges_sorted_and_plans_attached(self, records):
        compiled = CompiledDataset(records, max_nodes=15, build_plans=True)
        batch = compiled.batch([0, 3, 1])
        assert batch.plans is not None
        assert np.all(np.diff(batch.edge_dst) >= 0)
        assert batch.plans.dst.is_sorted

    def test_sorted_edges_are_a_permutation_of_reference(self, records):
        compiled = CompiledDataset(records, max_nodes=15, build_plans=True)
        indices = [2, 5, 0]
        batch = compiled.batch(indices)
        reference = _reference_batch(records, indices)
        got = sorted(
            zip(batch.edge_src, batch.edge_dst, batch.edge_weight)
        )
        want = sorted(
            zip(
                reference.edge_src,
                reference.edge_dst,
                reference.edge_weight,
            )
        )
        assert got == want
        # Node-side arrays are untouched by the edge sort.
        assert np.array_equal(batch.x.data, reference.x.data)
        assert np.array_equal(batch.node_graph, reference.node_graph)
