"""In-place Adam and GradClipper vs their allocating references.

The optimizer overhaul replaces the textbook allocating formulas with
preallocated-buffer updates. The contract is **bitwise identity**:
every elementwise operation runs in the same order on the same values.
These tests pin that against naive reimplementations, plus the
alias-safety rules the no-copy autograd introduced (shared gradient
arrays are scaled once; non-writeable views are replaced, not mutated).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import Adam, GradClipper, clip_grad_norm


def _params(rng, shapes):
    params = []
    for shape in shapes:
        p = Parameter(rng.normal(size=shape))
        p.grad = rng.normal(size=shape)
        params.append(p)
    return params


def _naive_adam_step(params, state, lr, betas, eps, weight_decay):
    """Textbook Adam with fresh allocations everywhere."""
    beta1, beta2 = betas
    state["t"] += 1
    t = state["t"]
    for i, p in enumerate(params):
        if p.grad is None:
            continue
        grad = p.grad
        if weight_decay > 0:
            grad = grad + weight_decay * p.data
        state["m"][i] = beta1 * state["m"][i] + (1 - beta1) * grad
        state["v"][i] = beta2 * state["v"][i] + (1 - beta2) * (grad * grad)
        m_hat = state["m"][i] / (1 - beta1**t)
        v_hat = state["v"][i] / (1 - beta2**t)
        p.data = p.data - lr * m_hat / (np.sqrt(v_hat) + eps)


class TestAdamBitwise:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_matches_naive_reference_over_steps(self, weight_decay):
        rng = np.random.default_rng(4)
        shapes = [(5, 3), (3,), (2, 2)]
        fast = _params(np.random.default_rng(4), shapes)
        slow = _params(np.random.default_rng(4), shapes)
        optimizer = Adam(
            fast, learning_rate=1e-2, weight_decay=weight_decay
        )
        state = {
            "t": 0,
            "m": [np.zeros_like(p.data) for p in slow],
            "v": [np.zeros_like(p.data) for p in slow],
        }
        for step in range(5):
            grads = [rng.normal(size=s) for s in shapes]
            for p_fast, p_slow, g in zip(fast, slow, grads):
                p_fast.grad = g.copy()
                p_slow.grad = g.copy()
            optimizer.step()
            _naive_adam_step(
                slow, state, 1e-2, (0.9, 0.999), 1e-8, weight_decay
            )
            for p_fast, p_slow in zip(fast, slow):
                assert np.array_equal(p_fast.data, p_slow.data), step

    def test_skips_gradless_parameters(self):
        rng = np.random.default_rng(1)
        params = _params(rng, [(3,), (3,)])
        params[1].grad = None
        frozen = params[1].data.copy()
        Adam(params, learning_rate=0.1).step()
        assert np.array_equal(params[1].data, frozen)
        assert not np.array_equal(
            params[0].data, params[0].data * 0
        )


class TestGradClipperBitwise:
    def test_matches_clip_grad_norm(self):
        shapes = [(4, 4), (7,), (2, 3)]
        fast = _params(np.random.default_rng(8), shapes)
        slow = _params(np.random.default_rng(8), shapes)
        for p in fast + slow:
            p.grad *= 10.0  # ensure clipping triggers
        clipper = GradClipper(fast, max_norm=1.0)
        norm_fast = clipper()
        norm_slow = clip_grad_norm(slow, max_norm=1.0)
        assert norm_fast == norm_slow
        for p_fast, p_slow in zip(fast, slow):
            assert np.array_equal(p_fast.grad, p_slow.grad)

    def test_no_clip_below_threshold(self):
        params = _params(np.random.default_rng(2), [(3,)])
        params[0].grad = np.array([0.1, 0.0, 0.0])
        before = params[0].grad.copy()
        GradClipper(params, max_norm=5.0)()
        assert np.array_equal(params[0].grad, before)

    def test_reusable_across_steps(self):
        params = _params(np.random.default_rng(3), [(4,)])
        clipper = GradClipper(params, max_norm=1.0)
        params[0].grad = np.full(4, 10.0)
        first = clipper()
        params[0].grad = np.full(4, 10.0)
        second = clipper()
        assert first == second


class TestAliasSafety:
    """No-copy autograd means gradients can be shared or be views."""

    def test_shared_gradient_scaled_once(self):
        shared = np.full(3, 10.0)
        a, b = Parameter(np.zeros(3)), Parameter(np.zeros(3))
        a.grad = shared
        b.grad = shared
        total = clip_grad_norm([a, b], max_norm=1.0)
        # Norm counts both parameters' gradients...
        assert total == pytest.approx(np.sqrt(2 * 3 * 100.0))
        # ...but the shared array is scaled exactly once.
        expected = 10.0 * (1.0 / (total + 1e-12))
        np.testing.assert_allclose(a.grad, np.full(3, expected))
        assert a.grad is b.grad

    def test_shared_gradient_with_clipper(self):
        shared = np.full(3, 10.0)
        a, b = Parameter(np.zeros(3)), Parameter(np.zeros(3))
        clipper = GradClipper([a, b], max_norm=1.0)
        a.grad = shared
        b.grad = shared
        total = clipper()
        expected = 10.0 * (1.0 / (total + 1e-12))
        np.testing.assert_allclose(a.grad, np.full(3, expected))

    def test_non_writeable_gradient_replaced(self):
        p = Parameter(np.zeros((2, 3)))
        view = np.broadcast_to(np.full(3, 10.0), (2, 3))
        assert not view.flags.writeable
        p.grad = view
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad is not view
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-9)
