"""Tests for the n<=15 cap lift: size-agnostic features, feature-kind
model identity, analytic-p1 labels, and large-graph serving.

Covers the end-to-end claim of the cap-lift PR — a model trained only
on small graphs with a size-agnostic feature kind answers 60-node
requests from the model path over live HTTP — plus the satellite
regressions: checkpoint round-trips are bit-identical per feature kind,
v1 checkpoints still load, fingerprints change when the featurization
does, the serving gate keys on real capability, and analytic-p1 labels
agree with the dense statevector where both apply.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data.generation import (
    GenerationConfig,
    generate_dataset,
    label_graph_analytic,
)
from repro.exceptions import DatasetError, ModelError
from repro.flywheel.labeler import RelabelConfig, relabel_candidates
from repro.flywheel.replay import ReplayRecord
from repro.flywheel.selector import SelectionConfig, select_candidates
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.features import (
    FEATURE_KINDS,
    SIZE_AGNOSTIC_KINDS,
    build_features,
    feature_dim,
    feature_max_nodes,
)
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph


def ring_graph(n: int) -> Graph:
    return Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
from repro.pipeline.transfer import evaluate_size_transfer
from repro.qaoa.analytic import p1_expectation
from repro.qaoa.simulator import QAOASimulator
from repro.serving import (
    PredictionService,
    ServingConfig,
    ServingHTTPServer,
)
from repro.serving.registry import (
    load_checkpoint,
    model_fingerprint,
    save_checkpoint,
)


def permuted_copy(graph: Graph, seed: int = 7):
    """An isomorphic relabeling and the node permutation used."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_nodes)
    edges = [(int(perm[u]), int(perm[v])) for u, v in graph.edges]
    return Graph.from_edges(graph.num_nodes, edges), perm


def post_predict(port, graph, timeout=15):
    body = json.dumps(
        {"num_nodes": graph.num_nodes, "edges": [list(e) for e in graph.edges]}
    ).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/predict",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestSizeAgnosticFeatures:
    def test_dims_do_not_depend_on_graph_size(self):
        for kind in SIZE_AGNOSTIC_KINDS:
            for nodes in (4, 18, 40):
                graph = random_regular_graph(nodes, 3, rng=nodes)
                features = build_features(graph, kind)
                assert features.shape == (nodes, feature_dim(kind))

    def test_features_are_permutation_equivariant(self):
        graph = random_regular_graph(14, 3, rng=5)
        relabeled, perm = permuted_copy(graph)
        for kind in SIZE_AGNOSTIC_KINDS:
            original = build_features(graph, kind)
            moved = build_features(relabeled, kind)
            np.testing.assert_allclose(
                moved[perm], original, rtol=0, atol=1e-12
            )

    def test_feature_max_nodes_capability(self):
        for kind in SIZE_AGNOSTIC_KINDS:
            assert feature_max_nodes(kind) is None
        assert feature_max_nodes("degree_onehot", 15) == 15
        assert feature_max_nodes("degree_plus_onehot", 15) == 15

    def test_every_kind_is_buildable(self):
        graph = ring_graph(6)
        for kind in FEATURE_KINDS:
            features = build_features(graph, kind, max_nodes=10)
            assert features.shape[0] == 6


class TestFeatureKindModelIdentity:
    def test_in_dim_derived_from_feature_kind(self):
        model = QAOAParameterPredictor("gcn", p=1, feature_kind="wl_histogram")
        assert model.in_dim == feature_dim("wl_histogram")
        assert model.max_nodes is None

    def test_degree_onehot_capability_is_in_dim(self):
        model = QAOAParameterPredictor("gcn", p=1)
        assert model.feature_kind == "degree_onehot"
        assert model.max_nodes == model.in_dim == 15

    def test_size_agnostic_kind_rejects_wrong_in_dim(self):
        with pytest.raises(ModelError):
            QAOAParameterPredictor(
                "gcn", p=1, in_dim=7, feature_kind="structural"
            )

    def test_checkpoint_round_trip_is_bit_identical(self, tmp_path):
        big = random_regular_graph(60, 3, rng=11)
        for kind in ("structural", "wl_histogram", "degree_positional"):
            model = QAOAParameterPredictor(
                "gin", p=1, hidden_dim=16, feature_kind=kind, rng=3
            )
            model.eval()
            path = tmp_path / f"{kind}.json"
            save_checkpoint(model, path)
            loaded = load_checkpoint(path)
            assert loaded.feature_kind == kind
            assert loaded.max_nodes is None
            np.testing.assert_array_equal(
                model.predict([big]), loaded.predict([big])
            )

    def test_v1_checkpoint_loads_with_paper_defaults(self, tmp_path):
        model = QAOAParameterPredictor("gcn", p=1, hidden_dim=16, rng=9)
        model.eval()
        path = tmp_path / "v2.json"
        save_checkpoint(model, path)
        state = json.loads(path.read_text())
        for key in (
            "feature_kind", "in_dim", "head_hidden",
            "output_scaling", "readout_kind", "gat_heads",
        ):
            state.pop(key, None)
        state["format_version"] = 1
        v1_path = tmp_path / "v1.json"
        v1_path.write_text(json.dumps(state))
        loaded = load_checkpoint(v1_path)
        assert loaded.feature_kind == "degree_onehot"
        assert loaded.in_dim == 15
        graph = ring_graph(8)
        np.testing.assert_array_equal(
            model.predict([graph]), loaded.predict([graph])
        )

    def test_fingerprint_changes_when_featurization_changes(self):
        # Same architecture, same depth, same seed (so the same weight
        # tensors where shapes allow): the fingerprint must still split
        # on every forward-affecting field.
        base = QAOAParameterPredictor("gcn", p=1, rng=0)
        onehot = QAOAParameterPredictor(
            "gcn", p=1, feature_kind="onehot", rng=0
        )
        assert base.in_dim == onehot.in_dim
        assert model_fingerprint(base) != model_fingerprint(onehot)
        unbounded = QAOAParameterPredictor(
            "gcn", p=1, feature_kind="structural", rng=0
        )
        assert model_fingerprint(base) != model_fingerprint(unbounded)

    def test_fingerprint_stable_for_identical_models(self):
        a = QAOAParameterPredictor("gcn", p=1, rng=0)
        b = QAOAParameterPredictor("gcn", p=1, rng=0)
        assert model_fingerprint(a) == model_fingerprint(b)


class TestServingCapabilityGate:
    def test_size_agnostic_model_serves_large_graph(self):
        model = QAOAParameterPredictor(
            "gin", p=1, hidden_dim=16, feature_kind="structural", rng=2
        )
        model.eval()
        with PredictionService(
            model=model, config=ServingConfig(batching=False)
        ) as service:
            result = service.predict(random_regular_graph(100, 3, rng=1))
        assert result.source == "model"

    def test_onehot_model_falls_back_past_its_budget(self):
        model = QAOAParameterPredictor("gin", p=1, hidden_dim=16, rng=2)
        model.eval()
        with PredictionService(
            model=model, config=ServingConfig(batching=False)
        ) as service:
            small = service.predict(ring_graph(12))
            large = service.predict(random_regular_graph(16, 3, rng=1))
        assert small.source == "model"
        assert large.source != "model"

    def test_describe_reports_true_capability(self):
        model = QAOAParameterPredictor(
            "gin", p=1, hidden_dim=16, feature_kind="structural", rng=2
        )
        model.eval()
        with PredictionService(
            model=model, config=ServingConfig(batching=False)
        ) as service:
            info = service.describe()["models"][0]
        assert info["max_nodes"] is None
        assert info["feature_kind"] == "structural"


class TestAnalyticLabels:
    def test_analytic_labels_match_statevector_small(self):
        config = GenerationConfig(
            num_graphs=6,
            min_nodes=4,
            max_nodes=10,
            p=1,
            label_method="analytic-p1",
            seed=123,
            progress_every=0,
        )
        dataset = generate_dataset(config)
        for record in dataset:
            simulator = QAOASimulator(record.graph)
            dense = simulator.expectation(
                np.asarray(record.gammas), np.asarray(record.betas)
            )
            assert abs(dense - record.expectation) <= 1e-10
            assert record.source == "analytic_p1"

    def test_large_graph_labels_without_statevector(self):
        graph = random_regular_graph(60, 3, rng=4)
        record = label_graph_analytic(graph)
        assert record.expectation == pytest.approx(
            p1_expectation(graph, record.gammas[0], record.betas[0])
        )
        # Optimum above the brute-force bound is the total-edge-weight
        # upper bound, so the ratio is a lower bound but still sane.
        assert 0.3 < record.approximation_ratio <= 1.0

    def test_analytic_rejects_weighted_and_deep(self):
        graph = ring_graph(6)
        with pytest.raises(DatasetError):
            label_graph_analytic(graph, p=2)
        weighted = graph.with_weights((1.5,) * graph.num_edges)
        with pytest.raises(DatasetError):
            label_graph_analytic(weighted)

    def test_generate_dataset_rejects_oversized_statevector(self):
        config = GenerationConfig(
            num_graphs=2, min_nodes=30, max_nodes=40, seed=0,
            progress_every=0,
        )
        with pytest.raises(DatasetError):
            generate_dataset(config)


def _replay(graph, source="random"):
    return ReplayRecord(
        graph=graph,
        wl_hash=wl_canonical_hash(graph),
        p=1,
        gammas=(0.4,),
        betas=(0.3,),
        source=source,
    )


class TestFlywheelLargeGraphs:
    def test_selector_excludes_large_under_statevector(self):
        big = random_regular_graph(60, 3, rng=8)
        selected = select_candidates([_replay(big)])
        assert selected == []

    def test_selector_admits_large_under_analytic(self):
        big = random_regular_graph(60, 3, rng=8)
        config = SelectionConfig(label_method="analytic-p1")
        selected = select_candidates([_replay(big)], config=config)
        assert len(selected) == 1
        # Within the evaluation budget, so the served AR must have been
        # scored — on the closed form, not a 2^60 statevector.
        assert selected[0].served_ar is not None
        assert 0.0 <= selected[0].served_ar <= 1.0

    def test_labeler_relabels_large_bucket_analytically(self):
        big = random_regular_graph(60, 3, rng=8)
        config = SelectionConfig(label_method="analytic-p1")
        candidates = select_candidates([_replay(big)], config=config)
        records = relabel_candidates(
            candidates, RelabelConfig(label_method="analytic-p1")
        )
        assert len(records) == 1
        record = records[0]
        assert record.source == "flywheel"
        assert record.expectation == pytest.approx(
            p1_expectation(big, record.gammas[0], record.betas[0])
        )
        # The optimizer can only improve on the served warm start.
        assert record.approximation_ratio >= candidates[0].served_ar - 1e-12


class TestTransferEvaluation:
    def test_report_shape_and_ranges(self):
        model = QAOAParameterPredictor(
            "gin", p=1, hidden_dim=16, feature_kind="structural", rng=0
        )
        model.eval()
        report = evaluate_size_transfer(
            model, node_sizes=(20, 30), graphs_per_size=2, rng=0
        )
        assert [entry["num_nodes"] for entry in report["sizes"]] == [20, 30]
        for entry in report["sizes"]:
            assert 0.0 <= entry["model_ratio"] <= 1.0 + 1e-9
            assert 0.0 <= entry["fixed_ratio"] <= 1.0 + 1e-9
        json.dumps(report)  # JSON-safe

    def test_capped_model_is_rejected(self):
        model = QAOAParameterPredictor("gcn", p=1, rng=0)
        with pytest.raises(ModelError):
            evaluate_size_transfer(model, node_sizes=(50,), rng=0)


class TestLargeGraphHTTP:
    def test_sixty_node_predict_answers_from_model(self):
        model = QAOAParameterPredictor(
            "gin", p=1, hidden_dim=16, feature_kind="structural", rng=2
        )
        model.eval()
        service = PredictionService(
            model=model, config=ServingConfig(batching=False)
        )
        server = ServingHTTPServer(service, port=0).start_background()
        try:
            status, payload = post_predict(
                server.port, random_regular_graph(60, 3, rng=3)
            )
        finally:
            server.close()
        assert status == 200
        assert payload["source"] == "model"
        assert len(payload["gammas"]) == 1

    def test_request_node_cap_is_400(self):
        service = PredictionService(config=ServingConfig(batching=False))
        server = ServingHTTPServer(
            service, port=0, max_request_nodes=10
        ).start_background()
        try:
            status, payload = post_predict(server.port, ring_graph(12))
        finally:
            server.close()
        assert status == 400
        assert "caps requests at 10 nodes" in payload["error"]

    def test_request_edge_cap_is_400(self):
        service = PredictionService(config=ServingConfig(batching=False))
        server = ServingHTTPServer(
            service, port=0, max_request_edges=5
        ).start_background()
        try:
            status, payload = post_predict(server.port, ring_graph(12))
        finally:
            server.close()
        assert status == 400
        assert "caps requests at 5 edges" in payload["error"]


class TestLargeGraphScaleStack:
    @pytest.fixture(scope="class")
    def scale_server(self):
        from repro.serving import ScaleConfig, ScaleServingServer, WorkerPool

        model = QAOAParameterPredictor(
            "gin", p=1, hidden_dim=16, feature_kind="structural", rng=2
        )
        model.eval()
        config = ScaleConfig(workers=2, max_inflight=32)
        pool = WorkerPool(
            model=model,
            serving_config=ServingConfig(max_wait_ms=1.0),
            scale_config=config,
        )
        server = ScaleServingServer(
            pool,
            model=model,
            port=0,
            scale_config=config,
            max_request_nodes=80,
        )
        server.start_background()
        yield server
        server.close()

    def test_sixty_node_predict_answers_from_model(self, scale_server):
        status, payload = post_predict(
            scale_server.port, random_regular_graph(60, 3, rng=3)
        )
        assert status == 200
        assert payload["source"] == "model"

    def test_request_cap_is_400_before_any_work(self, scale_server):
        status, payload = post_predict(
            scale_server.port, random_regular_graph(100, 3, rng=3)
        )
        assert status == 400
        assert "caps requests at 80 nodes" in payload["error"]
