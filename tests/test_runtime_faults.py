"""Tests for the fault-tolerant execution layer (`repro.runtime.faults`).

Covers the deterministic retry/backoff schedule, the fault injector, and
their integration with :class:`ParallelExecutor` across all three
backends — including the acceptance property that an injector forcing
one failure into every task, with one retry, still produces output
bit-identical to a fault-free run.
"""

import time

import numpy as np
import pytest

from repro.exceptions import ExecutionError, InjectedFault, TaskTimeout
from repro.runtime import (
    FAILURE_DEADLINE,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    NO_RETRY,
    FaultInjector,
    FaultPlan,
    ParallelExecutor,
    RetryPolicy,
    TaskFailure,
)


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


def _sleepy(x):
    time.sleep(x)
    return x


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults_do_not_retry(self):
        assert NO_RETRY.retries == 0
        assert NO_RETRY.schedule(0) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_multiplier": 0.5},
            {"backoff_max_s": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExecutionError):
            RetryPolicy(**kwargs)

    def test_zero_base_means_immediate_retry(self):
        policy = RetryPolicy(retries=3, backoff_base_s=0.0, jitter=0.5)
        assert policy.schedule(7) == [0.0, 0.0, 0.0]

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            retries=3, backoff_base_s=1.0, backoff_multiplier=2.0
        )
        assert policy.schedule(0) == [1.0, 2.0, 4.0]

    def test_backoff_cap(self):
        policy = RetryPolicy(
            retries=5, backoff_base_s=1.0, backoff_multiplier=10.0,
            backoff_max_s=3.0,
        )
        assert max(policy.schedule(0)) == 3.0

    def test_jitter_is_deterministic_per_task(self):
        policy = RetryPolicy(
            retries=4, backoff_base_s=0.5, jitter=0.3, seed=42
        )
        twin = RetryPolicy(
            retries=4, backoff_base_s=0.5, jitter=0.3, seed=42
        )
        for index in range(6):
            assert policy.schedule(index) == twin.schedule(index)

    def test_jitter_is_call_order_independent(self):
        policy = RetryPolicy(
            retries=3, backoff_base_s=0.5, jitter=0.3, seed=1
        )
        forward = [policy.delay_s(5, k) for k in (1, 2, 3)]
        backward = [policy.delay_s(5, k) for k in (3, 2, 1)][::-1]
        assert forward == backward

    def test_different_tasks_draw_different_jitter(self):
        policy = RetryPolicy(
            retries=1, backoff_base_s=1.0, jitter=1.0, seed=9
        )
        delays = {policy.delay_s(i, 1) for i in range(16)}
        assert len(delays) > 1

    def test_attempt_must_be_positive(self):
        with pytest.raises(ExecutionError, match="attempt"):
            RetryPolicy(retries=1, backoff_base_s=1.0).delay_s(0, 0)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_explicit_fail_tasks(self):
        injector = FaultInjector(fail_tasks={2: 1, 5: 3})
        assert injector.failing_attempts(2) == 1
        assert injector.failing_attempts(5) == 3
        assert injector.failing_attempts(0) == 0
        assert injector.faulted_indices(8) == (2, 5)

    def test_rate_one_faults_every_task(self):
        injector = FaultInjector(failure_rate=1.0)
        assert injector.faulted_indices(10) == tuple(range(10))

    def test_rate_zero_faults_nothing(self):
        injector = FaultInjector(failure_rate=0.0)
        assert injector.faulted_indices(10) == ()

    def test_partial_rate_is_deterministic(self):
        a = FaultInjector(failure_rate=0.5, seed=3)
        b = FaultInjector(failure_rate=0.5, seed=3)
        assert a.faulted_indices(64) == b.faulted_indices(64)
        picked = len(a.faulted_indices(256))
        assert 0 < picked < 256

    def test_before_attempt_raises_within_failing_prefix(self):
        injector = FaultInjector(fail_tasks={0: 2})
        with pytest.raises(InjectedFault):
            injector.before_attempt(0, "t", 1)
        with pytest.raises(InjectedFault):
            injector.before_attempt(0, "t", 2)
        injector.before_attempt(0, "t", 3)  # past the prefix: no raise
        injector.before_attempt(1, "t", 1)  # unfaulted task: no raise

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_rate": -0.1},
            {"failure_rate": 1.1},
            {"attempts_per_failure": 0},
            {"delay_s": -1.0},
            {"fail_tasks": {0: -1}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExecutionError):
            FaultInjector(**kwargs)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unbounded_plan_never_expires(self):
        plan = FaultPlan()
        assert plan.time_left() is None
        assert not plan.expired()

    def test_past_deadline_expires(self):
        plan = FaultPlan(deadline=time.monotonic() - 1.0)
        assert plan.expired()
        assert plan.time_left() < 0


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
class TestExecutorRetries:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_injected_failures_with_retry_match_fault_free_run(
        self, backend
    ):
        items = list(range(12))
        clean = ParallelExecutor(backend="serial").map(_square, items)
        executor = ParallelExecutor(
            backend=backend,
            max_workers=2,
            retries=1,
            fault_injector=FaultInjector(failure_rate=1.0),
        )
        retried = executor.map(_square, items)
        assert retried == clean
        report = executor.last_report
        assert report.retried == len(items)
        assert report.failed == 0

    def test_retry_counts_in_stats(self):
        executor = ParallelExecutor(
            retries=3,
            fault_injector=FaultInjector(
                fail_tasks={1: 2, 4: 1}
            ),
        )
        results = executor.map(_square, list(range(6)))
        assert results == [_square(i) for i in range(6)]
        assert executor.last_report.retried == 3

    def test_exhausted_retries_raise_aggregated_error(self):
        executor = ParallelExecutor(
            retries=1,
            fault_injector=FaultInjector(fail_tasks={2: 5}),
        )
        with pytest.raises(ExecutionError, match="1/4 tasks failed"):
            executor.map(_square, list(range(4)))

    def test_collect_mode_records_attempts_and_kind(self):
        executor = ParallelExecutor(
            retries=2,
            error_mode="collect",
            fault_injector=FaultInjector(fail_tasks={1: 9}),
        )
        results = executor.map(_square, list(range(3)))
        assert results[0] == 0 and results[2] == 4
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == FAILURE_ERROR
        assert failure.attempts == 3  # 1 initial + 2 retries
        assert "InjectedFault" in failure.error
        assert executor.last_report.failed == 1
        assert executor.last_report.retried == 2

    def test_backoff_sleep_is_applied(self):
        executor = ParallelExecutor(
            retries=1,
            retry_policy=RetryPolicy(retries=1, backoff_base_s=0.05),
            fault_injector=FaultInjector(fail_tasks={0: 1}),
        )
        start = time.perf_counter()
        assert executor.map(_square, [3]) == [9]
        assert time.perf_counter() - start >= 0.05

    def test_retry_shorthand_builds_policy(self):
        executor = ParallelExecutor(retries=4)
        assert executor.retries == 4
        assert executor.retry_policy.retries == 4


class TestTimeouts:
    def test_slow_task_times_out(self):
        executor = ParallelExecutor(
            task_timeout_s=0.05, error_mode="collect"
        )
        results = executor.map(_sleepy, [0.0, 1.0])
        assert results[0] == 0.0
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == FAILURE_TIMEOUT
        assert "TaskTimeout" in failure.error
        assert executor.last_report.timed_out == 1

    def test_timeout_is_retryable(self):
        calls = []

        def flaky(x):
            calls.append(x)
            if len(calls) == 1:
                time.sleep(1.0)
            return x

        executor = ParallelExecutor(task_timeout_s=0.05, retries=1)
        assert executor.map(flaky, [7]) == [7]
        assert len(calls) == 2
        assert executor.last_report.retried == 1

    def test_call_with_timeout_passes_fast_results(self):
        from repro.runtime.executor import _call_with_timeout

        assert _call_with_timeout(_square, 4, 5.0) == 16
        assert _call_with_timeout(_square, 4, None) == 16
        with pytest.raises(TaskTimeout):
            _call_with_timeout(_sleepy, 0.5, 0.01)

    def test_validation(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(task_timeout_s=0.0)
        with pytest.raises(ExecutionError):
            ParallelExecutor(deadline_s=-1.0)


class TestDeadline:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_expired_deadline_cuts_remaining_tasks(self, backend):
        executor = ParallelExecutor(
            backend=backend,
            max_workers=2,
            chunk_size=1,
            deadline_s=0.15,
            error_mode="collect",
        )
        results = executor.map(_sleepy, [0.2] * 6)
        kinds = [
            r.kind if isinstance(r, TaskFailure) else "ok" for r in results
        ]
        assert FAILURE_DEADLINE in kinds
        assert executor.last_report.failed == kinds.count(FAILURE_DEADLINE)

    def test_generous_deadline_changes_nothing(self):
        executor = ParallelExecutor(deadline_s=60.0)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.last_report.failed == 0
