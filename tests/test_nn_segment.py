"""Tests for segment (gather/scatter) operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.nn.segment import (
    gather,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn.tensor import Tensor

from tests.test_nn_tensor import numeric_gradient


class TestGather:
    def test_forward(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        out = gather(x, np.array([2, 0, 2]))
        np.testing.assert_allclose(out.data[0], [6, 7, 8])
        np.testing.assert_allclose(out.data[2], [6, 7, 8])

    def test_backward_scatter_adds(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        gather(x, np.array([1, 1, 0])).sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1], [2, 2], [0, 0]])

    def test_index_validation(self):
        x = Tensor(np.zeros((3, 2)))
        with pytest.raises(ModelError):
            gather(x, np.array([3]))
        with pytest.raises(ModelError):
            gather(x, np.array([[0, 1]]))


class TestSegmentSum:
    def test_forward(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = segment_sum(x, np.array([0, 1, 0]), 2)
        np.testing.assert_allclose(out.data, [[4.0], [2.0]])

    def test_empty_segment_zero(self):
        x = Tensor(np.array([[1.0]]))
        out = segment_sum(x, np.array([2]), 4)
        np.testing.assert_allclose(out.data[:2], 0.0)

    def test_backward(self):
        data = np.random.default_rng(0).normal(size=(5, 3))
        index = np.array([0, 1, 0, 2, 1])

        def build(x):
            return (segment_sum(x, index, 3) ** 2.0).sum()

        x = Tensor(data.copy(), requires_grad=True)
        build(x).backward()
        numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_index_bounds(self):
        x = Tensor(np.ones((2, 1)))
        with pytest.raises(ModelError):
            segment_sum(x, np.array([0, 5]), 3)
        with pytest.raises(ModelError):
            segment_sum(x, np.array([0, -1]), 3)
        with pytest.raises(ModelError):
            segment_sum(x, np.array([0]), 3)  # length mismatch


class TestSegmentMean:
    def test_forward(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])

    def test_empty_segment_zero(self):
        x = Tensor(np.array([[2.0]]))
        out = segment_mean(x, np.array([1]), 3)
        np.testing.assert_allclose(out.data[0], 0.0)
        np.testing.assert_allclose(out.data[2], 0.0)

    def test_backward(self):
        data = np.random.default_rng(1).normal(size=(5, 2))
        index = np.array([0, 1, 0, 0, 1])

        def build(x):
            return (segment_mean(x, index, 2) ** 2.0).sum()

        x = Tensor(data.copy(), requires_grad=True)
        build(x).backward()
        numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)


class TestSegmentMax:
    def test_forward(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [0.0, 9.0]]))
        out = segment_max(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0, 5.0], [0.0, 9.0]])

    def test_empty_segment_zero(self):
        x = Tensor(np.array([[1.0]]))
        out = segment_max(x, np.array([0]), 2)
        assert out.data[1, 0] == 0.0

    def test_backward_routes_to_max(self):
        x = Tensor(np.array([[1.0], [3.0], [2.0]]), requires_grad=True)
        segment_max(x, np.array([0, 0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0], [1.0], [0.0]])

    def test_backward_tie_splits(self):
        x = Tensor(np.array([[2.0], [2.0]]), requires_grad=True)
        segment_max(x, np.array([0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5]])

    def test_backward_no_ties_numeric(self):
        data = np.random.default_rng(2).permutation(10).astype(float).reshape(5, 2)
        index = np.array([0, 1, 0, 1, 0])

        def build(x):
            return (segment_max(x, index, 2) ** 2.0).sum()

        x = Tensor(data.copy(), requires_grad=True)
        build(x).backward()
        numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_negative_values(self):
        # max of all-negative segment must stay negative, not clamp to 0
        x = Tensor(np.array([[-3.0], [-1.0]]))
        out = segment_max(x, np.array([0, 0]), 1)
        assert out.data[0, 0] == -1.0


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        rng = np.random.default_rng(0)
        scores = Tensor(rng.normal(size=(6, 2)))
        index = np.array([0, 0, 1, 1, 1, 2])
        out = segment_softmax(scores, index, 3)
        sums = np.zeros((3, 2))
        np.add.at(sums, index, out.data)
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_shift_invariance(self):
        scores = np.array([[1.0], [3.0], [2.0]])
        index = np.array([0, 0, 0])
        a = segment_softmax(Tensor(scores), index, 1).data
        b = segment_softmax(Tensor(scores + 100.0), index, 1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerical_stability_large_scores(self):
        scores = Tensor(np.array([[1000.0], [1001.0]]))
        out = segment_softmax(scores, np.array([0, 0]), 1)
        assert np.isfinite(out.data).all()

    def test_backward(self):
        data = np.random.default_rng(3).normal(size=(5, 1))
        index = np.array([0, 0, 1, 1, 1])

        def build(x):
            soft = segment_softmax(x, index, 2)
            weights = Tensor(np.arange(5.0)[:, None])
            return (soft * weights).sum()

        x = Tensor(data.copy(), requires_grad=True)
        build(x).backward()
        numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    @given(st.integers(0, 10**6), st.integers(2, 8), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_distribution(self, seed, items, segments):
        rng = np.random.default_rng(seed)
        scores = Tensor(rng.normal(size=(items, 1)) * 10)
        index = rng.integers(0, segments, size=items)
        out = segment_softmax(scores, index, segments).data
        assert (out >= 0).all()
        sums = np.zeros((segments, 1))
        np.add.at(sums, index, out)
        occupied = np.bincount(index, minlength=segments) > 0
        np.testing.assert_allclose(sums[occupied], 1.0, atol=1e-9)


class TestSegmentCount:
    def test_counts(self):
        counts = segment_count(np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(counts, [2, 0, 1, 0])
