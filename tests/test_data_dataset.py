"""Tests for QAOADataset and QAOARecord."""

import numpy as np
import pytest

from repro.data.dataset import QAOADataset, QAOARecord
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph


def make_record(ratio=0.8, p=1, num_nodes=4, source="optimized"):
    graph = Graph.cycle(num_nodes) if num_nodes >= 3 else Graph(2, ((0, 1),))
    return QAOARecord(
        graph=graph,
        p=p,
        gammas=tuple([0.5] * p),
        betas=tuple([0.25] * p),
        expectation=ratio * 4.0,
        optimal_value=4.0,
        approximation_ratio=ratio,
        best_cut_value=4.0,
        source=source,
    )


class TestRecord:
    def test_target_vector_order(self):
        record = make_record(p=2)
        np.testing.assert_allclose(
            record.target_vector(), [0.5, 0.5, 0.25, 0.25]
        )

    def test_with_label(self):
        record = make_record()
        updated = record.with_label([1.0], [0.5], 3.6, 0.9, "fixed_angle")
        assert updated.gammas == (1.0,)
        assert updated.source == "fixed_angle"
        assert record.source == "optimized"  # original unchanged

    def test_frozen(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.p = 3


class TestDataset:
    def test_container_protocol(self):
        dataset = QAOADataset([make_record(), make_record(0.5)])
        assert len(dataset) == 2
        assert dataset[0].approximation_ratio == 0.8
        assert len(list(dataset)) == 2
        assert len(dataset[0:1]) == 1

    def test_append_extend(self):
        dataset = QAOADataset()
        dataset.append(make_record())
        dataset.extend([make_record(), make_record()])
        assert len(dataset) == 3

    def test_targets_shape(self):
        dataset = QAOADataset([make_record(p=2), make_record(p=2)])
        assert dataset.targets().shape == (2, 4)

    def test_depth_consistent(self):
        dataset = QAOADataset([make_record(p=2), make_record(p=2)])
        assert dataset.depth() == 2

    def test_depth_mixed_raises(self):
        dataset = QAOADataset([make_record(p=1), make_record(p=2)])
        with pytest.raises(DatasetError):
            dataset.depth()

    def test_filter(self):
        dataset = QAOADataset([make_record(0.9), make_record(0.4)])
        good = dataset.filter(lambda r: r.approximation_ratio > 0.5)
        assert len(good) == 1

    def test_save_load_roundtrip(self, tmp_path):
        dataset = QAOADataset(
            [make_record(0.8, p=2), make_record(0.6, p=2, source="fixed_angle")]
        )
        path = tmp_path / "ds.json"
        dataset.save(path)
        loaded = QAOADataset.load(path)
        assert len(loaded) == 2
        assert loaded[0].gammas == dataset[0].gammas
        assert loaded[1].source == "fixed_angle"
        assert loaded[0].graph.edges == dataset[0].graph.edges

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(DatasetError):
            QAOADataset.load(path)

    def test_summary(self):
        dataset = QAOADataset([make_record(0.8), make_record(0.6)])
        summary = dataset.summary()
        assert summary["count"] == 2
        assert summary["mean_ar"] == pytest.approx(0.7)
        assert summary["min_ar"] == 0.6

    def test_empty_summary(self):
        assert QAOADataset().summary()["count"] == 0
