"""Tests for the Graph container."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_basic(self):
        graph = Graph(3, ((0, 1), (1, 2)))
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.weights == (1.0, 1.0)

    def test_edges_canonicalized(self):
        graph = Graph(3, ((2, 0), (2, 1)))
        assert graph.edges == ((0, 2), (1, 2))

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self loop"):
            Graph(3, ((1, 1),))

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(3, ((0, 1), (1, 0)))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(3, ((0, 3),))

    def test_rejects_empty_graph(self):
        with pytest.raises(GraphError):
            Graph(0, ())

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(GraphError, match="weights"):
            Graph(3, ((0, 1), (1, 2)), (1.0,))

    def test_single_node_no_edges(self):
        graph = Graph(1, ())
        assert graph.num_edges == 0
        assert graph.is_connected()

    def test_from_edges(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)], [0.5, 1.5])
        assert graph.weights == (0.5, 1.5)

    def test_immutability(self):
        graph = Graph(3, ((0, 1),))
        with pytest.raises(AttributeError):
            graph.num_nodes = 5


class TestNamedConstructors:
    def test_complete(self):
        k4 = Graph.complete(4)
        assert k4.num_edges == 6
        assert k4.is_regular()
        assert k4.regular_degree() == 3

    def test_cycle(self):
        c5 = Graph.cycle(5)
        assert c5.num_edges == 5
        assert c5.regular_degree() == 2

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            Graph.cycle(2)

    def test_path(self):
        p4 = Graph.path(4)
        assert p4.num_edges == 3
        assert not p4.is_regular()

    def test_star(self):
        s5 = Graph.star(5)
        assert s5.num_edges == 4
        assert list(s5.degrees()) == [4, 1, 1, 1, 1]

    def test_networkx_roundtrip(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1, weight=2.0)
        nx_graph.add_edge(1, 2)
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_nodes == 3
        back = graph.to_networkx()
        assert back[0][1]["weight"] == 2.0

    def test_from_networkx_relabels(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge("a", "b")
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_nodes == 2
        assert graph.edges == ((0, 1),)


class TestDerivedQuantities:
    def test_degrees(self, triangle):
        assert list(triangle.degrees()) == [2, 2, 2]

    def test_max_degree_empty(self):
        assert Graph(3, ()).max_degree() == 0

    def test_regular_detection(self, triangle):
        assert triangle.is_regular()
        assert triangle.regular_degree() == 2
        assert Graph.path(3).regular_degree() is None

    def test_adjacency_symmetric(self, weighted_triangle):
        adj = weighted_triangle.adjacency_matrix()
        assert np.array_equal(adj, adj.T)
        assert adj[0, 1] == 1.0
        assert adj[1, 2] == 2.0
        assert adj[0, 2] == 3.0

    def test_edge_array_shape(self, triangle):
        assert triangle.edge_array().shape == (3, 2)
        assert Graph(2, ()).edge_array().shape == (0, 2)

    def test_neighbors(self, square):
        assert square.neighbors(0) == [1, 3]

    def test_neighbors_out_of_range(self, square):
        with pytest.raises(GraphError):
            square.neighbors(9)

    def test_has_edge(self, square):
        assert square.has_edge(0, 1)
        assert square.has_edge(1, 0)
        assert not square.has_edge(0, 2)

    def test_total_weight(self, weighted_triangle):
        assert weighted_triangle.total_weight == 6.0

    def test_is_weighted(self, triangle, weighted_triangle):
        assert not triangle.is_weighted
        assert weighted_triangle.is_weighted

    def test_with_weights(self, triangle):
        weighted = triangle.with_weights([2.0, 2.0, 2.0])
        assert weighted.is_weighted
        assert triangle.weights == (1.0, 1.0, 1.0)  # original untouched

    def test_with_name(self, triangle):
        assert triangle.with_name("t2").name == "t2"

    def test_connectivity(self):
        assert Graph.cycle(5).is_connected()
        disconnected = Graph(4, ((0, 1), (2, 3)))
        assert not disconnected.is_connected()
