"""Tests for the quantum substrate: gates, statevector, circuit IR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.quantum import gates
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import Statevector


class TestGates:
    @pytest.mark.parametrize(
        "matrix",
        [gates.I2, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T,
         gates.CNOT, gates.CZ, gates.SWAP],
    )
    def test_fixed_gates_unitary(self, matrix):
        assert gates.is_unitary(matrix)

    @given(st.floats(-10, 10))
    @settings(max_examples=25, deadline=None)
    def test_rotations_unitary(self, theta):
        for factory in (gates.rx, gates.ry, gates.rz, gates.rzz, gates.rxx,
                        gates.phase):
            assert gates.is_unitary(factory(theta))

    def test_rx_pi_is_x_up_to_phase(self):
        assert np.allclose(gates.rx(np.pi), -1j * gates.X)

    def test_rz_zero_is_identity(self):
        assert np.allclose(gates.rz(0.0), gates.I2)

    def test_u3_covers_hadamard(self):
        h = gates.u3(np.pi / 2, 0.0, np.pi)
        # H up to global phase
        ratio = h[0, 0] / gates.H[0, 0]
        assert np.allclose(h, ratio * gates.H)

    def test_rzz_diagonal(self):
        matrix = gates.rzz(0.7)
        assert np.allclose(matrix, np.diag(np.diag(matrix)))

    def test_is_unitary_rejects_nonsquare(self):
        assert not gates.is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_singular(self):
        assert not gates.is_unitary(np.zeros((2, 2)))


class TestStatevector:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.data[0] == 1.0
        assert state.norm() == pytest.approx(1.0)

    def test_plus_state_uniform(self):
        state = Statevector.plus_state(3)
        assert np.allclose(state.probabilities(), 1 / 8)

    def test_basis_state(self):
        state = Statevector.basis_state(2, 3)
        assert state.data[3] == 1.0

    def test_basis_state_range(self):
        with pytest.raises(CircuitError):
            Statevector.basis_state(2, 4)

    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            Statevector(0)

    def test_rejects_giant(self):
        with pytest.raises(CircuitError):
            Statevector(25)

    def test_x_gate_flips(self):
        state = Statevector.zero_state(2)
        state.apply_gate(gates.X, [0])
        assert state.data[1] == 1.0  # little-endian: qubit 0 = bit 0

    def test_x_on_high_qubit(self):
        state = Statevector.zero_state(2)
        state.apply_gate(gates.X, [1])
        assert state.data[2] == 1.0

    def test_h_creates_superposition(self):
        state = Statevector.zero_state(1)
        state.apply_gate(gates.H, [0])
        assert np.allclose(state.data, [1 / np.sqrt(2)] * 2)

    def test_cnot_control_convention(self):
        # qubits=(target, control): local index bit1 = control
        state = Statevector.basis_state(2, 0b10)  # qubit1 = 1
        state.apply_gate(gates.CNOT, [0, 1])
        assert abs(state.data[0b11]) == pytest.approx(1.0)

    def test_bell_state(self):
        state = Statevector.zero_state(2)
        state.apply_gate(gates.H, [0])
        state.apply_gate(gates.CNOT, [1, 0])  # target 1, control 0
        probs = state.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_gate_shape_validation(self):
        state = Statevector.zero_state(2)
        with pytest.raises(CircuitError):
            state.apply_gate(np.eye(2), [0, 1])

    def test_duplicate_qubits_rejected(self):
        state = Statevector.zero_state(2)
        with pytest.raises(CircuitError):
            state.apply_gate(gates.CNOT, [0, 0])

    def test_apply_diagonal(self):
        state = Statevector.plus_state(2)
        state.apply_diagonal(np.exp(1j * np.arange(4)))
        assert state.norm() == pytest.approx(1.0)

    def test_apply_rx_all_matches_gatewise(self):
        theta = 0.37
        fast = Statevector.plus_state(3)
        fast.apply_rx_all(theta)
        slow = Statevector.plus_state(3)
        for q in range(3):
            slow.apply_gate(gates.rx(theta), [q])
        assert np.allclose(fast.data, slow.data)

    def test_expectation_diagonal(self):
        state = Statevector.plus_state(2)
        diagonal = np.array([0.0, 1.0, 2.0, 3.0])
        assert state.expectation_diagonal(diagonal) == pytest.approx(1.5)

    def test_inner_and_fidelity(self):
        a = Statevector.zero_state(2)
        b = Statevector.plus_state(2)
        assert a.fidelity(b) == pytest.approx(0.25)
        assert a.inner(a) == pytest.approx(1.0)

    def test_sampling_distribution(self):
        state = Statevector.basis_state(3, 5)
        samples = state.sample(100, rng=0)
        assert (samples == 5).all()

    def test_sample_counts(self):
        state = Statevector.plus_state(1)
        counts = state.sample_counts(1000, rng=0)
        assert set(counts) == {0, 1}
        assert abs(counts[0] - 500) < 100

    def test_normalize(self):
        state = Statevector(1, np.array([2.0, 0.0]))
        state.normalize()
        assert state.norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        state = Statevector(1, np.array([1.0, 0.0]))
        state.data[:] = 0
        with pytest.raises(CircuitError):
            state.normalize()

    @given(st.integers(1, 5), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_unitarity_preserves_norm(self, n, seed):
        rng = np.random.default_rng(seed)
        state = Statevector.plus_state(n)
        for _ in range(3):
            q = int(rng.integers(0, n))
            state.apply_gate(gates.rx(rng.uniform(-np.pi, np.pi)), [q])
            state.apply_gate(gates.rz(rng.uniform(-np.pi, np.pi)), [q])
        assert state.norm() == pytest.approx(1.0)


class TestCircuit:
    def test_build_and_count(self):
        circuit = Circuit(3).h(0).h(1).cnot(0, 1).rzz(0.3, 1, 2)
        assert circuit.num_gates == 4
        assert circuit.two_qubit_gate_count() == 2
        assert circuit.gate_counts()["h"] == 2

    def test_depth(self):
        circuit = Circuit(2).h(0).h(1)  # parallel
        assert circuit.depth() == 1
        circuit.cnot(0, 1)
        assert circuit.depth() == 2

    def test_run_bell(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        state = circuit.run()
        assert state.probabilities()[0b00] == pytest.approx(0.5)
        assert state.probabilities()[0b11] == pytest.approx(0.5)

    def test_run_does_not_mutate_input(self):
        initial = Statevector.zero_state(1)
        Circuit(1).x(0).run(initial)
        assert initial.data[0] == 1.0

    def test_angle_required(self):
        with pytest.raises(CircuitError, match="angle"):
            Circuit(1).add("rx", (0,))

    def test_angle_rejected_for_fixed(self):
        with pytest.raises(CircuitError, match="no angle"):
            Circuit(1).add("h", (0,), angle=0.5)

    def test_unknown_gate(self):
        with pytest.raises(CircuitError, match="unknown gate"):
            Circuit(1).add("foo", (0,))

    def test_qubit_range_checked(self):
        with pytest.raises(CircuitError, match="out of range"):
            Circuit(2).h(5)

    def test_wrong_arity(self):
        with pytest.raises(CircuitError, match="takes 2 qubits"):
            Circuit(2).add("cnot", (0,))

    def test_state_size_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(2).run(Statevector.zero_state(3))

    def test_cz_symmetric(self):
        a = Circuit(2).h(0).h(1).cz(0, 1).run()
        b = Circuit(2).h(0).h(1).cz(1, 0).run()
        assert np.allclose(a.data, b.data)
