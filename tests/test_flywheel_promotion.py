"""Tests for the promotion gate and version store."""

import pytest

from repro.exceptions import FlywheelError
from repro.flywheel.promotion import (
    PromotionConfig,
    PromotionDecision,
    gate_candidate,
)
from repro.flywheel.versions import VersionStore
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.serving.registry import load_checkpoint, model_fingerprint


def make_model(seed: int) -> QAOAParameterPredictor:
    model = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=8, rng=seed)
    model.eval()
    return model


@pytest.fixture(scope="module")
def eval_graphs():
    return [Graph.cycle(n) for n in (4, 5, 6)]


FAST = PromotionConfig(eval_iters=8)


class TestGate:
    def test_cold_start_always_promotes(self, eval_graphs):
        decision = gate_candidate(make_model(1), None, eval_graphs, FAST)
        assert decision.promote is True
        assert decision.incumbent_score is None
        assert decision.incumbent_fingerprint is None

    def test_exact_tie_promotes_deterministically(self, eval_graphs):
        """Same weights on both sides: scores are equal, and equality is
        within any margin — the candidate (with the fresher data) wins.
        Re-running the gate flips nothing."""
        model = make_model(2)
        twin = make_model(2)
        decisions = [
            gate_candidate(model, twin, eval_graphs, FAST) for _ in range(2)
        ]
        for decision in decisions:
            assert decision.candidate_score == decision.incumbent_score
            assert decision.promote is True
        assert decisions[0].manifest() == decisions[1].manifest()

    def test_scores_are_paired_and_deterministic(self, eval_graphs):
        a = gate_candidate(make_model(3), make_model(4), eval_graphs, FAST)
        b = gate_candidate(make_model(3), make_model(4), eval_graphs, FAST)
        assert a.candidate_score == b.candidate_score
        assert a.incumbent_score == b.incumbent_score
        assert a.promote == b.promote

    def test_worse_candidate_rejected(self, eval_graphs, monkeypatch):
        import repro.flywheel.promotion as promotion

        candidate, incumbent = make_model(5), make_model(6)
        scores = {id(candidate): 0.80, id(incumbent): 0.90}
        monkeypatch.setattr(
            promotion,
            "_score",
            lambda model, graphs, config, cache: scores[id(model)],
        )
        decision = gate_candidate(candidate, incumbent, eval_graphs, FAST)
        assert decision.promote is False
        assert "rejected" in decision.reason

    def test_margin_tolerates_small_regression(self, eval_graphs, monkeypatch):
        import repro.flywheel.promotion as promotion

        candidate, incumbent = make_model(5), make_model(6)
        scores = {id(candidate): 0.895, id(incumbent): 0.90}
        monkeypatch.setattr(
            promotion,
            "_score",
            lambda model, graphs, config, cache: scores[id(model)],
        )
        within = gate_candidate(
            candidate, incumbent, eval_graphs, PromotionConfig(margin=0.01)
        )
        assert within.promote is True
        beyond = gate_candidate(
            candidate, incumbent, eval_graphs, PromotionConfig(margin=0.001)
        )
        assert beyond.promote is False

    def test_manifest_is_json_safe(self, eval_graphs):
        import json

        decision = gate_candidate(make_model(1), make_model(2), eval_graphs, FAST)
        payload = json.dumps(decision.manifest())
        assert "candidate_fingerprint" in payload

    def test_empty_eval_set_rejected(self):
        with pytest.raises(FlywheelError):
            gate_candidate(make_model(1), None, [], FAST)

    def test_config_validation(self):
        with pytest.raises(FlywheelError):
            PromotionConfig(margin=-0.1)
        with pytest.raises(FlywheelError):
            PromotionConfig(eval_iters=0)


class TestVersionStore:
    def test_publish_and_load_roundtrip(self, tmp_path):
        store = VersionStore(tmp_path)
        model = make_model(1)
        pointer = store.publish(model, final_loss=0.5)
        assert pointer["version"] == 1
        assert pointer["fingerprint"] == model_fingerprint(model)
        loaded, payload = store.load_current()
        assert model_fingerprint(loaded) == pointer["fingerprint"]
        assert payload == store.current()
        assert store.versions() == [1]

    def test_versions_increment(self, tmp_path):
        store = VersionStore(tmp_path)
        store.publish(make_model(1))
        pointer = store.publish(make_model(2))
        assert pointer["version"] == 2
        assert store.versions() == [1, 2]

    def test_empty_store(self, tmp_path):
        store = VersionStore(tmp_path)
        assert store.current() is None
        assert store.versions() == []
        with pytest.raises(FlywheelError):
            store.load_current()

    def test_rejected_candidate_leaves_store_untouched(self, tmp_path):
        """The rejection contract: staging writes nothing to the
        published surface — versions/ and CURRENT.json stay identical."""
        store = VersionStore(tmp_path)
        incumbent_pointer = store.publish(make_model(1))
        pointer_bytes = store.pointer_path.read_bytes()

        staged = store.stage_candidate(make_model(2), tag="reject-me")
        assert staged.is_file()
        # No promotion happened; everything published is unchanged.
        assert store.versions() == [1]
        assert store.current() == incumbent_pointer
        assert store.pointer_path.read_bytes() == pointer_bytes
        # The staged checkpoint never entered versions/.
        assert staged.parent == store.candidates_dir

    def test_promote_candidate_moves_into_versions(self, tmp_path):
        store = VersionStore(tmp_path)
        store.publish(make_model(1))
        model = make_model(2)
        staged = store.stage_candidate(model, tag="winner")
        pointer = store.promote_candidate(staged)
        assert pointer["version"] == 2
        assert pointer["fingerprint"] == model_fingerprint(model)
        assert not staged.exists()  # moved, not copied
        assert load_checkpoint(pointer["path"]).p == model.p
        assert store.current() == pointer

    def test_promote_missing_candidate_raises(self, tmp_path):
        store = VersionStore(tmp_path)
        with pytest.raises(FlywheelError):
            store.promote_candidate(tmp_path / "nope.json")

    def test_record_promotion_manifest(self, tmp_path):
        import json

        store = VersionStore(tmp_path)
        path = store.record_promotion(3, {"promote": True, "margin": 0.0})
        assert json.loads(path.read_text())["promote"] is True
        assert path.name == "v0003.json"

    def test_corrupt_pointer_raises(self, tmp_path):
        store = VersionStore(tmp_path)
        store.pointer_path.parent.mkdir(parents=True, exist_ok=True)
        store.pointer_path.write_text('{"version": 1}')
        with pytest.raises(FlywheelError, match="missing"):
            store.current()
