"""Tests for the shared Max-Cut problem cache."""

import pickle
import threading

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.maxcut.cache import ProblemCache, graph_signature


def _path_graph(name="p"):
    return Graph(3, ((0, 1), (1, 2)), name=name)


def _relabeled_path(name="q"):
    # Isomorphic to the path (same 1-WL hash) but with node 0 as the
    # center — a different labeled structure, hence a different
    # cost diagonal.
    return Graph(3, ((0, 1), (0, 2)), name=name)


class TestSignature:
    def test_name_excluded(self):
        assert graph_signature(_path_graph("a")) == graph_signature(
            _path_graph("b")
        )

    def test_structure_included(self):
        assert graph_signature(_path_graph()) != graph_signature(
            _relabeled_path()
        )


class TestProblemCache:
    def test_hit_returns_same_object(self):
        cache = ProblemCache()
        first = cache.get(_path_graph("a"))
        second = cache.get(_path_graph("b"))
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_cached_problem_matches_fresh(self):
        cache = ProblemCache()
        graph = _path_graph()
        cached = cache.get(graph)
        from repro.maxcut.problem import MaxCutProblem

        fresh = MaxCutProblem(graph)
        np.testing.assert_array_equal(
            cached.cost_diagonal(), fresh.cost_diagonal()
        )
        assert cached.optimum() == fresh.optimum()

    def test_wl_equal_graphs_get_distinct_entries(self):
        # Same isomorphism class, different labeling: the diagonal is
        # label-dependent, so the cache must keep both.
        cache = ProblemCache()
        a = cache.get(_path_graph())
        b = cache.get(_relabeled_path())
        assert a is not b
        assert cache.hits == 0
        assert cache.misses == 2
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["wl_classes"] == 1

    def test_lru_eviction(self):
        cache = ProblemCache(max_entries=2)
        g1 = Graph(3, ((0, 1),), name="g1")
        g2 = Graph(3, ((1, 2),), name="g2")
        g3 = Graph(3, ((0, 2),), name="g3")
        cache.get(g1)
        cache.get(g2)
        cache.get(g1)  # refresh g1 -> g2 is now oldest
        cache.get(g3)  # evicts g2
        assert len(cache) == 2
        misses = cache.misses
        cache.get(g2)  # miss (was evicted); re-inserting evicts g1
        assert cache.misses == misses + 1
        hits = cache.hits
        cache.get(g3)
        assert cache.hits == hits + 1  # g3 survived both evictions

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ProblemCache(max_entries=0)

    def test_stats_shape(self):
        cache = ProblemCache()
        cache.get(_path_graph())
        cache.get(_path_graph())
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["entries"] == 1
        assert stats["wl_classes"] == 1

    def test_empty_stats(self):
        stats = ProblemCache().stats()
        assert stats["hit_rate"] == 0.0
        assert stats["entries"] == 0

    def test_clear(self):
        cache = ProblemCache()
        cache.get(_path_graph())
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0

    def test_pickles_to_empty(self):
        # Process-backend workers must not pay to serialize diagonals.
        cache = ProblemCache(max_entries=8)
        cache.get(_path_graph())
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.max_entries == 8
        assert clone.hits == 0
        # The clone still works as a cache.
        clone.get(_path_graph())
        assert len(clone) == 1

    def test_thread_safety(self):
        cache = ProblemCache()
        graphs = [Graph(4, ((0, 1), (1, 2), (2, 3)), name=f"t{i}") for i in range(4)]
        errors = []

        def worker():
            try:
                for _ in range(50):
                    for graph in graphs:
                        cache.get(graph)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # All names share one structure -> a single entry, and every
        # call is accounted as a hit or a miss.
        assert len(cache) == 1
        assert cache.hits + cache.misses == 8 * 50 * 4
