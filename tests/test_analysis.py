"""Tests for table formatting and figure-series builders."""

import numpy as np
import pytest

from repro.analysis.figures import (
    comparison_series,
    export_csv,
    histogram_series,
    interval_series,
    render_comparison,
    render_histogram,
    render_intervals,
)
from repro.analysis.tables import PAPER_TABLE1, format_rows, format_table1
from repro.data.stats import IntervalSummary
from repro.pipeline.evaluation import EvaluationResult, WarmStartComparison


def make_result(name="gcn", improvements=(5.0, -2.0, 3.0)):
    result = EvaluationResult(strategy_name=name)
    for i, delta in enumerate(improvements):
        result.comparisons.append(
            WarmStartComparison(
                graph_name=f"g{i}",
                num_nodes=6,
                degree=3,
                random_ratio=0.7,
                strategy_ratio=0.7 + delta / 100.0,
                random_initial_ratio=0.5,
                strategy_initial_ratio=0.55,
            )
        )
    return result


class TestTables:
    def test_paper_reference_values(self):
        assert PAPER_TABLE1["gin"] == (3.66, 9.97)
        assert PAPER_TABLE1["sage"] == (2.86, 10.01)

    def test_format_table1_contains_rows(self):
        text = format_table1({"gcn": make_result("gcn")})
        assert "gcn" in text
        assert "3.65 ± 10.17" in text  # paper column
        assert "2.00" in text  # our mean improvement

    def test_format_table1_unknown_arch(self):
        text = format_table1({"custom": make_result("custom")})
        assert "—" in text

    def test_format_rows_generic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_rows(rows, ["a", "b"], title="T")
        assert text.startswith("T")
        assert "10" in text
        assert "—" in text


class TestFigureSeries:
    def test_histogram_series_sorted(self):
        series = histogram_series({5: 2, 3: 7})
        assert series[0] == {"key": 3, "count": 7}

    def test_render_histogram(self):
        text = render_histogram({3: 10, 4: 5}, "Degrees")
        assert "Degrees" in text
        assert "#" in text
        assert "10" in text

    def test_render_histogram_empty(self):
        assert "(empty)" in render_histogram({}, "x")

    def test_interval_series(self):
        summary = IntervalSummary.from_values(4, np.array([0.5, 0.7, 0.9]))
        series = interval_series([summary])
        assert series[0]["key"] == 4
        assert series[0]["min"] == 0.5
        assert series[0]["max"] == 0.9

    def test_render_intervals(self):
        summary = IntervalSummary.from_values(4, np.array([0.5, 0.7, 0.9]))
        text = render_intervals([summary], "AR by size")
        assert "AR by size" in text
        assert "|" in text

    def test_comparison_series(self):
        series = comparison_series(make_result())
        assert len(series) == 3
        assert series[0]["improvement_pp"] == pytest.approx(5.0)
        assert series[0]["random_ar"] == 0.7

    def test_render_comparison(self):
        text = render_comparison(make_result())
        assert "gcn" in text
        assert "r" in text and "G" in text

    def test_render_comparison_collision_marker(self):
        result = make_result(improvements=(0.0,))
        assert "=" in render_comparison(result)


class TestCsvExport:
    def test_export_and_content(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "out" / "rows.csv"
        export_csv(rows, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert len(lines) == 3

    def test_export_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_csv([], tmp_path / "e.csv")
