"""Equivalence tests for the optimized simulator kernels.

The fast mixer contracts qubit groups against closed-form ``RX^(tensor
g)`` matrices via gemm plus contiguous butterflies; these tests pin it
against two independent oracles — the gate-by-gate ``apply_gate`` path
with the RX matrix, and the original ``np.flip`` reference kernels —
plus the finite-difference gradient oracle after the kernel swap.
"""

import numpy as np
import pytest

from repro.graphs.generators import random_regular_graph
from repro.qaoa.simulator import (
    QAOASimulator,
    _apply_mixer,
    _apply_mixer_into,
    _apply_mixer_reference,
    _apply_sum_x,
    _apply_sum_x_reference,
)
from repro.quantum.gates import rx
from repro.quantum.statevector import Statevector


def _random_state(num_qubits, rng):
    dim = 1 << num_qubits
    psi = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return psi / np.linalg.norm(psi)


class TestMixerKernel:
    @pytest.mark.parametrize("num_qubits", [1, 2, 7, 12])
    def test_matches_apply_gate_rx_oracle(self, num_qubits):
        """Mixer == RX(2 beta) on every qubit via the gate-matrix path."""
        rng = np.random.default_rng(100 + num_qubits)
        psi = _random_state(num_qubits, rng)
        for beta in rng.uniform(-np.pi, np.pi, size=3):
            oracle = Statevector(num_qubits, psi)
            for qubit in range(num_qubits):
                oracle.apply_gate(rx(2.0 * beta), [qubit])
            fast = _apply_mixer(psi, num_qubits, beta)
            np.testing.assert_allclose(
                fast, oracle.data, atol=1e-12, rtol=0.0
            )

    @pytest.mark.parametrize("num_qubits", [1, 2, 7, 12])
    def test_matches_flip_reference(self, num_qubits):
        rng = np.random.default_rng(200 + num_qubits)
        psi = _random_state(num_qubits, rng)
        for beta in rng.uniform(-np.pi, np.pi, size=3):
            np.testing.assert_allclose(
                _apply_mixer(psi, num_qubits, beta),
                _apply_mixer_reference(psi, num_qubits, beta),
                atol=1e-12,
                rtol=0.0,
            )

    @pytest.mark.parametrize("num_qubits", [3, 6, 7, 11, 13])
    def test_into_kernel_writes_dst_and_preserves_src(self, num_qubits):
        """Every group split (gemm-only, two-gemm, gemm+butterfly)."""
        rng = np.random.default_rng(3)
        psi = _random_state(num_qubits, rng)
        src = psi.copy()
        dst = np.empty(psi.size, dtype=np.complex128)
        scratch = np.empty(psi.size, dtype=np.complex128)
        out = _apply_mixer_into(src, dst, num_qubits, 0.4, scratch)
        assert out is dst
        np.testing.assert_array_equal(src, psi)  # src untouched
        np.testing.assert_allclose(
            out, _apply_mixer_reference(psi, num_qubits, 0.4), atol=1e-12
        )

    def test_out_of_place_wrapper_leaves_input_untouched(self):
        rng = np.random.default_rng(4)
        psi = _random_state(6, rng)
        before = psi.copy()
        _apply_mixer(psi, 6, 1.1)
        np.testing.assert_array_equal(psi, before)

    def test_unitarity(self):
        rng = np.random.default_rng(5)
        psi = _random_state(8, rng)
        out = _apply_mixer(psi, 8, 0.73)
        assert np.linalg.norm(out) == pytest.approx(1.0)


class TestSumXKernel:
    @pytest.mark.parametrize("num_qubits", [1, 2, 7, 12])
    def test_matches_reference(self, num_qubits):
        rng = np.random.default_rng(300 + num_qubits)
        psi = _random_state(num_qubits, rng)
        np.testing.assert_allclose(
            _apply_sum_x(psi, num_qubits),
            _apply_sum_x_reference(psi, num_qubits),
            atol=1e-12,
            rtol=0.0,
        )


class TestGradientAfterKernelSwap:
    @pytest.mark.parametrize("num_qubits,degree", [(4, 3), (7, 4), (10, 3)])
    def test_adjoint_matches_finite_difference(self, num_qubits, degree):
        graph = random_regular_graph(num_qubits, degree, rng=num_qubits)
        simulator = QAOASimulator(graph)
        rng = np.random.default_rng(17)
        gammas = rng.uniform(0, 2 * np.pi, size=2)
        betas = rng.uniform(0, np.pi / 2, size=2)
        _, grad_gamma, grad_beta = simulator.expectation_and_gradient(
            gammas, betas
        )
        fd_gamma, fd_beta = simulator.gradient_finite_difference(
            gammas, betas, eps=1e-6
        )
        np.testing.assert_allclose(grad_gamma, fd_gamma, atol=1e-5)
        np.testing.assert_allclose(grad_beta, fd_beta, atol=1e-5)

    def test_repeated_evaluations_do_not_interfere(self):
        """Workspace reuse must not leak state between calls."""
        graph = random_regular_graph(6, 3, rng=0)
        simulator = QAOASimulator(graph)
        gammas, betas = np.array([0.4]), np.array([0.3])
        first = simulator.expectation_and_gradient(gammas, betas)
        simulator.expectation(np.array([1.7]), np.array([0.9]))
        simulator.state(np.array([2.1]), np.array([0.2]))
        second = simulator.expectation_and_gradient(gammas, betas)
        assert first[0] == second[0]
        np.testing.assert_array_equal(first[1], second[1])
        np.testing.assert_array_equal(first[2], second[2])

    def test_state_returns_independent_arrays(self):
        """state() results must not alias the simulator workspaces."""
        graph = random_regular_graph(5, 2, rng=1)
        simulator = QAOASimulator(graph)
        a = simulator.state(np.array([0.3]), np.array([0.2]))
        a_data = a.data.copy()
        simulator.state(np.array([1.3]), np.array([0.8]))
        simulator.expectation(np.array([2.0]), np.array([0.1]))
        np.testing.assert_array_equal(a.data, a_data)


class TestStatevectorCopyGuard:
    def test_copy_is_independent(self):
        state = Statevector.plus_state(3)
        clone = state.copy()
        clone.data[0] = 0.0
        assert state.data[0] != 0.0

    def test_init_copies_by_default(self):
        data = np.zeros(4, dtype=np.complex128)
        data[0] = 1.0
        state = Statevector(2, data)
        data[0] = 0.0
        assert state.data[0] == 1.0

    def test_copy_false_adopts_array(self):
        data = np.zeros(4, dtype=np.complex128)
        data[0] = 1.0
        state = Statevector(2, data, copy=False)
        assert state.data is data
