"""Unit tests for the scale stack's in-process pieces.

Admission gate, shard routing math, cache export/import, and the
shared-weight slab — everything that needs no forked worker.
"""

import numpy as np
import pytest

from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.serving.cache import CacheError, PredictionCache, shard_index
from repro.serving.scale import (
    ADMIT,
    DEGRADE,
    SHED,
    AdmissionController,
    ScaleConfig,
    ScaleError,
    SharedWeights,
    build_model,
    inline_manifest,
)


class TestScaleConfig:
    def test_defaults_validate(self):
        config = ScaleConfig()
        assert config.workers >= 1
        assert config.shed_limit > config.max_inflight

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_inflight": 0},
            {"shed_factor": 0.5},
            {"shed_deadline_ms": 0},
            {"inference_threads": 0},
            {"l1_cache_size": -1},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ScaleError):
            ScaleConfig(**kwargs)

    def test_shed_limit_always_exceeds_max_inflight(self):
        # Even a shed factor of ~1 must leave a degrade band of >= 1,
        # otherwise DEGRADE is unreachable and everything sheds.
        config = ScaleConfig(max_inflight=4, shed_factor=1.0)
        assert config.shed_limit == 5


class TestAdmissionController:
    def test_admit_degrade_shed_progression(self):
        control = AdmissionController(
            ScaleConfig(max_inflight=2, shed_factor=2.0)
        )
        assert control.decide() == ADMIT
        assert control.decide() == ADMIT
        # Worker path saturated: degrade band until the shed limit.
        decisions = [control.decide() for _ in range(10)]
        assert set(decisions) == {DEGRADE}
        assert control.inflight == 2  # degrades take no slot

    def test_shed_past_limit(self):
        control = AdmissionController(
            ScaleConfig(max_inflight=1, shed_factor=1.0)
        )
        assert control.decide() == ADMIT
        assert control.decide() == DEGRADE  # inflight == max_inflight == 1
        # Shedding keys on *total* front-end concurrency, not worker
        # slots: once shed_limit requests are in the house, the next
        # decision sheds.
        for _ in range(control.config.shed_limit):
            control.enter()
        assert control.decide() == SHED
        for _ in range(control.config.shed_limit):
            control.exit()
        assert control.decide() == DEGRADE  # back under the limit

    def test_release_reopens_admission(self):
        control = AdmissionController(
            ScaleConfig(max_inflight=1, shed_factor=2.0)
        )
        assert control.decide() == ADMIT
        assert control.decide() == DEGRADE
        control.release()
        assert control.decide() == ADMIT

    def test_stats_counts_every_outcome(self):
        control = AdmissionController(
            ScaleConfig(max_inflight=1, shed_factor=1.0)
        )
        control.decide()  # admit
        control.decide()  # degrade
        for _ in range(control.config.shed_limit):
            control.enter()
        control.decide()  # shed
        control.record_deadline_drop()
        control.record_breaker_degrade()
        stats = control.stats()
        assert stats["admitted"] == 1
        assert stats["degraded"] == 1
        assert stats["shed"] == 1
        assert stats["deadline_drops"] == 1
        assert stats["breaker_degrades"] == 1
        assert stats["max_observed_inflight"] >= 1

    def test_deadline_seconds(self):
        control = AdmissionController(ScaleConfig(shed_deadline_ms=250.0))
        assert control.deadline_s == pytest.approx(0.25)


class TestShardIndex:
    def test_partition_of_hash_space(self):
        # Every hash lands on exactly one shard, and with enough
        # distinct hashes every shard owns a non-empty partition.
        hashes = [f"{i:08x}{'0' * 56}" for i in range(256)]
        for n in (1, 2, 3, 5):
            owners = [shard_index(h, n) for h in hashes]
            assert all(0 <= s < n for s in owners)
            assert set(owners) == set(range(n))

    def test_deterministic(self):
        h = "deadbeef" + "0" * 56
        assert shard_index(h, 4) == shard_index(h, 4)

    def test_single_shard_owns_everything(self):
        assert shard_index("a" * 64, 1) == 0

    def test_invalid_shard_count_raises(self):
        with pytest.raises(CacheError):
            shard_index("a" * 64, 0)


class TestCacheExportImport:
    def test_roundtrip(self):
        cache = PredictionCache(max_size=8)
        cache.put("fp:wl1", ((0.1, 0.2), (0.3, 0.4), "model"))
        cache.put("fp:wl2", ((0.5,), (0.6,), "fixed_angle"))
        entries = cache.export_entries()
        restored = PredictionCache(max_size=8)
        assert restored.import_entries(entries) == 2
        assert restored.get("fp:wl1") == ((0.1, 0.2), (0.3, 0.4), "model")
        assert restored.get("fp:wl2") == ((0.5,), (0.6,), "fixed_angle")

    def test_import_respects_max_size(self):
        cache = PredictionCache(max_size=4)
        for i in range(4):
            cache.put(f"fp:wl{i}", ((float(i),), (0.0,), "model"))
        small = PredictionCache(max_size=2)
        assert small.import_entries(cache.export_entries()) == 2

    def test_expired_entries_are_skipped(self):
        clock = [0.0]
        cache = PredictionCache(max_size=4, ttl_s=10.0, clock=lambda: clock[0])
        cache.put("fp:old", ((1.0,), (2.0,), "model"))
        clock[0] = 50.0  # entry is 50s old at export time, TTL is 10s
        entries = cache.export_entries()
        restored = PredictionCache(
            max_size=4, ttl_s=10.0, clock=lambda: clock[0]
        )
        assert restored.import_entries(entries) == 0
        assert restored.get("fp:old") is None


@pytest.fixture()
def model():
    return QAOAParameterPredictor(arch="gcn", p=2, hidden_dim=16, rng=11)


class TestSharedWeights:
    def test_views_are_bit_identical(self, model):
        shared, manifest = SharedWeights.for_model(model)
        try:
            rebuilt = build_model(manifest, shared)
            for name, value in model.state_dict().items():
                np.testing.assert_array_equal(
                    rebuilt.state_dict()[name], value
                )
        finally:
            shared.close()

    def test_rebuilt_model_forward_is_bit_identical(self, model):
        from repro.gnn.batching import GraphBatch

        shared, manifest = SharedWeights.for_model(model)
        try:
            rebuilt = build_model(manifest, shared)
            graph = Graph(4, ((0, 1), (1, 2), (2, 3)))
            model.eval()
            batch = GraphBatch.from_graphs([graph])
            expected = model(batch).data
            actual = rebuilt(batch).data
            np.testing.assert_array_equal(actual, expected)
        finally:
            shared.close()

    def test_overflow_raises(self, model):
        shared = SharedWeights(capacity=16)
        try:
            with pytest.raises(ScaleError):
                shared.write(model)
        finally:
            shared.close()

    def test_swap_rewrites_slab_in_place(self, model):
        shared, _ = SharedWeights.for_model(model)
        try:
            other = QAOAParameterPredictor(
                arch="gcn", p=2, hidden_dim=16, rng=99
            )
            manifest = shared.write(other)
            rebuilt = build_model(manifest, shared)
            for name, value in other.state_dict().items():
                np.testing.assert_array_equal(
                    rebuilt.state_dict()[name], value
                )
        finally:
            shared.close()

    def test_inline_manifest_needs_no_slab(self, model):
        rebuilt = build_model(inline_manifest(model), None)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(rebuilt.state_dict()[name], value)

    def test_slab_manifest_without_slab_raises(self, model):
        shared, manifest = SharedWeights.for_model(model)
        shared.close()
        with pytest.raises(ScaleError):
            build_model(manifest, None)
