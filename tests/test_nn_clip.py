"""Tests for gradient clipping."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.nn.module import Parameter
from repro.nn.optim import clip_grad_norm


class TestClipGradNorm:
    def _params_with_grads(self, *grads):
        params = []
        for grad in grads:
            param = Parameter(np.zeros_like(np.asarray(grad, dtype=float)))
            param.grad = np.asarray(grad, dtype=np.float64)
            params.append(param)
        return params

    def test_no_clip_under_threshold(self):
        params = self._params_with_grads([3.0, 4.0])  # norm 5
        returned = clip_grad_norm(params, max_norm=10.0)
        assert returned == pytest.approx(5.0)
        np.testing.assert_allclose(params[0].grad, [3.0, 4.0])

    def test_clips_to_max_norm(self):
        params = self._params_with_grads([3.0, 4.0])  # norm 5
        clip_grad_norm(params, max_norm=1.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0, rel=1e-6)
        # direction preserved
        np.testing.assert_allclose(
            params[0].grad / np.linalg.norm(params[0].grad), [0.6, 0.8]
        )

    def test_global_norm_across_parameters(self):
        params = self._params_with_grads([3.0], [4.0])  # global norm 5
        returned = clip_grad_norm(params, max_norm=2.5)
        assert returned == pytest.approx(5.0)
        total = np.sqrt(
            sum(float((p.grad**2).sum()) for p in params)
        )
        assert total == pytest.approx(2.5, rel=1e-6)

    def test_skips_gradless_parameters(self):
        param = Parameter(np.zeros(2))
        returned = clip_grad_norm([param], max_norm=1.0)
        assert returned == 0.0
        assert param.grad is None

    def test_invalid_max_norm(self):
        with pytest.raises(OptimizationError):
            clip_grad_norm([], max_norm=0.0)
