"""End-to-end tests for the multi-process scale serving stack.

Covers the PR's headline contracts: shard routing partitions the
WL-hash space, N forked workers over shared weights answer
bit-identically to the single-process service, hot-swap drains every
worker, snapshots warm a fresh pool, and the admission gate sheds with
503 + Retry-After instead of hanging.
"""

import json
import multiprocessing
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import Future

import numpy as np
import pytest

from repro.flywheel import ReplayLog
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.generators import erdos_renyi_graph
from repro.serving import (
    PredictionService,
    ScaleConfig,
    ScaleServingServer,
    ServingConfig,
    WorkerPool,
    shard_index,
)
from repro.serving.scale import graph_request_bodies, run_load
from repro.serving.scale.pool import WorkerError, _WorkerHandle
from repro.serving.scale.shared import SharedWeights

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def make_model(rng=42, p=2):
    model = QAOAParameterPredictor(arch="gcn", p=p, hidden_dim=16, rng=rng)
    model.eval()
    return model


def graphs_for_test(count=8, nodes=8):
    return [erdos_renyi_graph(nodes, 0.5, rng=100 + i) for i in range(count)]


def post_predict(port, graph, timeout=15):
    body = json.dumps(
        {"num_nodes": graph.num_nodes, "edges": [list(e) for e in graph.edges]}
    ).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/predict",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def get(port, route, timeout=15):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{route}", timeout=timeout
    ) as response:
        return response.status, json.load(response)


@pytest.fixture(scope="module")
def model():
    return make_model()


@pytest.fixture(scope="module")
def server(model):
    config = ScaleConfig(workers=2, max_inflight=32)
    pool = WorkerPool(
        model=model,
        serving_config=ServingConfig(max_wait_ms=1.0),
        scale_config=config,
    )
    running = ScaleServingServer(
        pool, model=model, port=0, scale_config=config
    )
    running.start_background()
    yield running
    running.close()


@pytest.fixture(scope="module")
def reference(model):
    service = PredictionService(
        model=model, config=ServingConfig(max_wait_ms=1.0)
    )
    yield service
    service.close()


class TestBitIdentical:
    def test_multi_worker_matches_single_process(self, server, reference):
        for graph in graphs_for_test():
            status, payload, _ = post_predict(server.port, graph)
            assert status == 200
            expected = reference.predict(graph)
            assert tuple(payload["gammas"]) == expected.gammas
            assert tuple(payload["betas"]) == expected.betas
            assert payload["source"] == expected.source

    def test_both_workers_serve(self, server):
        shards = set()
        for graph in graphs_for_test(count=16):
            _, payload, _ = post_predict(server.port, graph)
            if "shard" in payload:
                shards.add(payload["shard"])
        assert shards == {0, 1}


class TestShardRouting:
    def test_response_shard_matches_wl_routing(self, server):
        for graph in graphs_for_test():
            wl_hash = wl_canonical_hash(graph)
            _, payload, _ = post_predict(server.port, graph)
            if "shard" in payload:  # L1 hits carry no shard tag
                assert payload["shard"] == shard_index(wl_hash, 2)

    def test_worker_caches_partition_the_hash_space(self, server):
        # Every cached entry must live on the shard its WL hash routes
        # to: keys are "<fingerprint>:<wl_hash>" and the owning shard
        # is shard_index(wl_hash, n). Drive traffic, then audit every
        # worker's cache via the snapshot protocol.
        for graph in graphs_for_test(count=12):
            post_predict(server.port, graph)
        per_shard = server.pool._broadcast("snapshot", timeout=15)
        total = 0
        for shard, entries in per_shard.items():
            for key, _value, _age in entries:
                wl_hash = str(key).rpartition(":")[2]
                assert shard_index(wl_hash, 2) == shard
                total += 1
        assert total > 0


class TestHealthAndMetrics:
    def test_healthz_reports_all_workers(self, server):
        status, payload = get(server.port, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["mode"] == "scale"
        assert sorted(w["shard"] for w in payload["workers"]) == [0, 1]
        assert all(w["alive"] for w in payload["workers"])

    def test_metrics_embed_admission_and_worker_sections(self, server):
        post_predict(server.port, graphs_for_test()[0])
        status, payload = get(server.port, "/metrics")
        assert status == 200
        assert payload["admission"]["admitted"] >= 1
        assert set(payload["workers"]) == {"0", "1"}
        assert "worker_breakers" in payload["admission"]

    def test_bad_payload_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/predict",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=10
            )
        assert excinfo.value.code == 404


class TestHotSwap:
    def test_swap_drains_and_switches_every_worker(self, server):
        new_model = make_model(rng=777)
        graphs = graphs_for_test(count=6)
        stop = threading.Event()
        errors = []

        def hammer():
            while not stop.is_set():
                for graph in graphs:
                    status, payload, _ = post_predict(server.port, graph)
                    if status != 200:
                        errors.append((status, payload))

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            summary = server.swap_model(new_model, source="<test-swap>")
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        # Barrier: every worker acked the swap with the new fingerprint.
        assert sorted(summary["workers"]) == [0, 1]
        for shard_summary in summary["workers"].values():
            assert (
                shard_summary["new_fingerprint"]
                == summary["new_fingerprint"]
            )
        # Post-swap answers are bit-identical to the new model.
        expected_service = PredictionService(
            model=new_model, config=ServingConfig(max_wait_ms=1.0)
        )
        try:
            for graph in graphs:
                _, payload, _ = post_predict(server.port, graph)
                expected = expected_service.predict(graph)
                assert tuple(payload["gammas"]) == expected.gammas
                assert tuple(payload["betas"]) == expected.betas
        finally:
            expected_service.close()
        status, payload = get(server.port, "/healthz")
        fingerprints = {w.get("fingerprint") for w in payload["workers"]}
        assert fingerprints == {summary["new_fingerprint"]}


class TestSwapSafety:
    def test_shared_slab_double_buffers_swap_writes(self):
        # The active region must never be overwritten mid-swap: a
        # request in flight keeps computing over exactly the weights
        # it started with.
        model_a = make_model(rng=1)
        model_b = make_model(rng=2)
        shared, manifest_a = SharedWeights.for_model(model_a)
        try:
            before = {
                name: view.copy()
                for name, view in shared.views(manifest_a).items()
            }
            manifest_b = shared.write(model_b)
            assert manifest_b["region"] != manifest_a["region"]
            # Old views (what in-flight requests read) are untouched.
            for name, view in shared.views(manifest_a).items():
                np.testing.assert_array_equal(view, before[name])
            # New views carry model B exactly.
            state_b = model_b.state_dict()
            for name, view in shared.views(manifest_b).items():
                np.testing.assert_array_equal(
                    view,
                    np.ascontiguousarray(state_b[name], dtype=np.float64),
                )
            # Until activate(), another write reuses the same inactive
            # region — a failed swap never burns the live weights.
            assert shared.write(model_b)["region"] == manifest_b["region"]
            shared.activate(manifest_b["region"])
            assert shared.write(model_a)["region"] == manifest_a["region"]
        finally:
            shared.close()

    def test_reader_survives_late_reply_to_cancelled_request(self):
        # A deadline-dropped request cancels its future; the worker's
        # late reply must be swallowed, not kill the reader thread
        # (which would permanently blackhole the shard).
        parent, child = multiprocessing.get_context().Pipe()
        handle = _WorkerHandle(0, process=None, conn=parent)
        try:
            future = handle.request("ping")
            _kind, req_id = child.recv()
            assert future.cancel()  # deadline drop before the reply
            child.send((req_id, "ok", {"late": True}))
            second = handle.request("ping")
            _kind, req_id2 = child.recv()
            child.send((req_id2, "ok", {"pong": True}))
            assert second.result(timeout=10) == {"pong": True}
            assert handle.alive
        finally:
            child.close()
            handle.reader.join(timeout=10)
            parent.close()

    def test_swap_drain_timeout_keeps_old_model(self):
        # One hung inference must not wedge the worker loop: the drain
        # is bounded and the worker declines the swap with "err".
        from repro.serving.scale.worker import _WorkerState, _handle_swap

        class Conn:
            def __init__(self):
                self.sent = []

            def send(self, message):
                self.sent.append(message)

        state = _WorkerState(
            Conn(), service=None, shard=0, num_shards=1, shared=None,
            drain_timeout_s=0.05,
        )
        state.inflight.add(Future())  # never completes
        _handle_swap(state, 7, {"fingerprint": "deadbeef"})
        req_id, status, payload = state.conn.sent[-1]
        assert (req_id, status) == (7, "err")
        assert "drain timed out" in payload

    def test_partial_swap_failure_rolls_back_and_flags(self, model):
        config = ScaleConfig(workers=2, swap_timeout_s=5.0)
        pool = WorkerPool(model=model, scale_config=config)
        try:
            old_fingerprint = pool.manifest["fingerprint"]
            broken = pool.worker(1)
            real_request = broken.request

            def black_hole(kind, *args):
                if kind == "swap":
                    return Future()  # never acks -> parent times out
                return real_request(kind, *args)

            broken.request = black_hole
            with pytest.raises(WorkerError):
                pool.swap_model(make_model(rng=99))
            # Manifest only commits after *all* acks; ambiguous state
            # (an ack timeout) is flagged for /healthz.
            assert pool.manifest["fingerprint"] == old_fingerprint
            assert pool.swap_inconsistent
            # The acked worker was rolled back onto the old manifest.
            assert (
                pool.worker(0)
                .request("ping")
                .result(timeout=10)["fingerprint"]
                == old_fingerprint
            )
            # Recovery: a clean swap converges and clears the flag.
            broken.request = real_request
            summary = pool.swap_model(make_model(rng=99))
            assert not pool.swap_inconsistent
            fingerprints = {
                status["fingerprint"] for status in pool.ping_all()
            }
            assert fingerprints == {summary["fingerprint"]}
        finally:
            pool.close()

    def test_healthz_surfaces_fingerprint_inconsistency(self, server):
        server.pool.swap_inconsistent = True
        try:
            status, payload = get(server.port, "/healthz")
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["fingerprint_consistent"] is False
        finally:
            server.pool.swap_inconsistent = False
        _, payload = get(server.port, "/healthz")
        assert payload["fingerprint_consistent"] is True


class TestSnapshotWarmup:
    def test_snapshot_warms_a_fresh_pool(self, tmp_path):
        model = make_model(rng=5, p=1)
        graphs = graphs_for_test(count=4, nodes=6)
        snapshot_path = tmp_path / "cache_snapshot.json"
        config = ScaleConfig(workers=2)
        first = ScaleServingServer(
            WorkerPool(model=model, scale_config=config),
            model=model,
            port=0,
            scale_config=config,
            cache_snapshot_path=snapshot_path,
        )
        first.start_background()
        try:
            for graph in graphs:
                status, payload, _ = post_predict(first.port, graph)
                assert status == 200
        finally:
            first.close()  # writes the snapshot
        assert snapshot_path.exists()

        second = ScaleServingServer(
            WorkerPool(model=model, scale_config=config),
            model=model,
            port=0,
            scale_config=config,
        )
        second.start_background()
        try:
            loaded = second.load_cache_snapshot(snapshot_path)
            assert loaded > 0
            # Disable the L1 read path? No — a warm L1 is part of the
            # warm-start contract; the first request must come back
            # cached instead of recomputed.
            status, payload, _ = post_predict(second.port, graphs[0])
            assert status == 200
            assert payload["cached"] is True
        finally:
            second.close()


class TestWorkerRespawn:
    def test_dead_worker_respawns_warm_and_counts_in_metrics(self, tmp_path):
        model = make_model(rng=9, p=1)
        graphs = graphs_for_test(count=12, nodes=6)
        snapshot_path = tmp_path / "cache_snapshot.json"
        config = ScaleConfig(workers=2)
        server = ScaleServingServer(
            WorkerPool(model=model, scale_config=config),
            model=model,
            port=0,
            scale_config=config,
            cache_snapshot_path=snapshot_path,
        )
        server.start_background()
        try:
            for graph in graphs:
                status, _, _ = post_predict(server.port, graph)
                assert status == 200
            assert server.save_cache_snapshot(snapshot_path) > 0

            # Kill the worker owning graphs[0]'s shard: its snapshot
            # partition is non-empty, so the respawn warm-up below has
            # something to restore.
            victim = server.pool.route(wl_canonical_hash(graphs[0]))
            handle = server.pool.worker(victim)
            handle.process.terminate()
            handle.process.join(10)
            deadline = time.time() + 10
            while server.pool.worker_alive(victim) and time.time() < deadline:
                time.sleep(0.05)
            assert not server.pool.worker_alive(victim)

            # A request for the dead shard (fresh graphs, so the L1
            # cannot short-circuit) degrades to fallbacks and schedules
            # the respawn.
            triggered = False
            for i in range(64):
                fresh = erdos_renyi_graph(6, 0.5, rng=900 + i)
                if server.pool.route(wl_canonical_hash(fresh)) != victim:
                    continue
                status, payload, _ = post_predict(server.port, fresh)
                assert status == 200
                assert payload.get("degraded") is True
                triggered = True
                break
            assert triggered

            # The replacement comes up in the background, warmed from
            # the snapshot partition it owns.
            deadline = time.time() + 20
            warmed = []
            while time.time() < deadline:
                if server.pool.worker_alive(victim):
                    warmed = server.pool.worker(victim).request(
                        "snapshot"
                    ).result(timeout=10)
                    if warmed:
                        break
                time.sleep(0.1)
            assert server.pool.worker_alive(victim)
            assert len(warmed) > 0
            assert server.pool.worker_restarts.get(victim) == 1

            status, payload = get(server.port, "/metrics")
            assert status == 200
            assert payload["workers"][str(victim)]["restarts"] == 1

            status, payload = get(server.port, "/healthz")
            assert payload["status"] == "ok"
            assert all(w["alive"] for w in payload["workers"])
        finally:
            server.close()


class TestAdmissionOverHTTP:
    @pytest.fixture()
    def tiny_server(self, model):
        config = ScaleConfig(
            workers=2, max_inflight=2, shed_factor=2.0, retry_after_s=3.0
        )
        pool = WorkerPool(model=model, scale_config=config)
        running = ScaleServingServer(
            pool, model=model, port=0, scale_config=config
        )
        running.start_background()
        yield running
        running.close()

    def test_shed_is_503_with_retry_after(self, tiny_server):
        # Deterministically saturate the front-end concurrency gauge,
        # then hit the HTTP path: it must shed, not queue.
        shed_limit = tiny_server.scale_config.shed_limit
        for _ in range(shed_limit):
            tiny_server.admission.enter()
        try:
            graph = graphs_for_test(count=1)[0]
            status, payload, headers = post_predict(tiny_server.port, graph)
            assert status == 503
            assert "error" in payload
            retry_after = {k.lower(): v for k, v in headers.items()}.get(
                "retry-after"
            )
            assert retry_after is not None
            assert int(retry_after) >= 1
        finally:
            for _ in range(shed_limit):
                tiny_server.admission.exit()
        # Pressure gone: the same request is served normally again.
        status, payload, _ = post_predict(
            tiny_server.port, graphs_for_test(count=1)[0]
        )
        assert status == 200

    def test_degrade_band_answers_from_fallbacks(self, tiny_server):
        # Fill exactly to max_inflight: next request lands in the
        # degrade band and must get an immediate fallback 200.
        taken = 0
        while tiny_server.admission.inflight < 2:
            assert tiny_server.admission.decide() == "admit"
            taken += 1
        try:
            graph = graphs_for_test(count=1)[0]
            # Use a graph the L1 has never seen (fresh server).
            status, payload, _ = post_predict(tiny_server.port, graph)
            assert status == 200
            assert payload.get("degraded") is True
            assert payload["source"] != "model"
        finally:
            for _ in range(taken):
                tiny_server.admission.release()

    def test_predict_never_hangs_under_overload(self, tiny_server):
        graphs = graphs_for_test(count=6)
        bodies = graph_request_bodies(graphs)
        report = run_load(
            "127.0.0.1", tiny_server.port, bodies, concurrency=8,
            duration_s=1.5,
        )
        assert report["requests"] > 0
        # Only 200s and shed 503s — and every 503 carried Retry-After.
        assert set(report["statuses"]) <= {"200", "503"}
        assert report["retry_after"]["missing"] == 0
        assert report["connection_errors"] == 0


class TestReplaySingleWriter:
    def test_frontend_owns_the_replay_log(self, tmp_path, model):
        replay = ReplayLog(tmp_path / "replay")
        config = ScaleConfig(workers=2)
        running = ScaleServingServer(
            WorkerPool(model=model, scale_config=config),
            model=model,
            port=0,
            scale_config=config,
            replay_log=replay,
        )
        running.start_background()
        try:
            graphs = graphs_for_test(count=3)
            for graph in graphs:
                post_predict(running.port, graph)
            records = replay.load()
            assert len(records) == 3
        finally:
            running.close()
