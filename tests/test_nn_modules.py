"""Tests for Module, layers, optimizers, schedulers and losses."""

import numpy as np
import pytest

from repro.exceptions import ModelError, OptimizationError
from repro.nn.layers import (
    MLP,
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import huber_loss, mae_loss, mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import ReduceLROnPlateau, StepLR
from repro.nn.tensor import Tensor


class TestModule:
    def test_named_parameters_recursive(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 3, rng=0)
                self.blocks = [Linear(3, 3, rng=1), Linear(3, 1, rng=2)]

        net = Net()
        names = dict(net.named_parameters())
        assert "fc.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert net.num_parameters() == (2 * 3 + 3) + (3 * 3 + 3) + (3 * 1 + 1)

    def test_train_eval_recursive(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5))
        seq.eval()
        assert not seq.modules[1].training
        seq.train()
        assert seq.modules[1].training

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng=0)
        b = Linear(3, 2, rng=1)
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_validates_names(self):
        layer = Linear(2, 2, rng=0)
        with pytest.raises(ModelError, match="mismatch"):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_validates_shapes(self):
        layer = Linear(2, 2, rng=0)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ModelError, match="shape"):
            layer.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_input_dim_checked(self):
        layer = Linear(4, 3, rng=0)
        with pytest.raises(ModelError):
            layer(Tensor(np.ones((5, 5))))

    def test_invalid_dims(self):
        with pytest.raises(ModelError):
            Linear(0, 3)

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=0)
        loss = (layer(Tensor(np.ones((4, 3)))) ** 2.0).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestDropout:
    def test_identity_in_eval(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_scales_in_train(self):
        drop = Dropout(0.5, rng=0)
        out = drop(Tensor(np.ones((100, 100)))).data
        # surviving activations are scaled by 1/keep = 2
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.05

    def test_zero_rate_identity(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones((3, 3)))
        assert drop(x) is x

    def test_invalid_rate(self):
        with pytest.raises(ModelError):
            Dropout(1.0)


class TestActivationModules:
    @pytest.mark.parametrize(
        "module,fn",
        [
            (ReLU(), lambda v: np.maximum(v, 0)),
            (Tanh(), np.tanh),
            (Sigmoid(), lambda v: 1 / (1 + np.exp(-v))),
        ],
    )
    def test_matches_numpy(self, module, fn):
        data = np.linspace(-2, 2, 7)
        np.testing.assert_allclose(module(Tensor(data)).data, fn(data))

    def test_leaky_relu_slope(self):
        module = LeakyReLU(0.1)
        out = module(Tensor(np.array([-10.0, 10.0])))
        np.testing.assert_allclose(out.data, [-1.0, 10.0])


class TestMLP:
    def test_structure(self):
        mlp = MLP([4, 8, 8, 2], dropout=0.5, rng=0)
        # 3 Linear + 2 ReLU + 2 Dropout
        assert len(mlp.layers) == 7

    def test_needs_two_dims(self):
        with pytest.raises(ModelError):
            MLP([4])

    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        mlp = MLP([3, 16, 1], rng=rng)
        optimizer = Adam(mlp.parameters(), 0.01)
        X = rng.normal(size=(128, 3))
        Y = (X @ np.array([[1.0], [-2.0], [0.5]]))
        for _ in range(400):
            optimizer.zero_grad()
            loss = mse_loss(mlp(Tensor(X)), Tensor(Y))
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.01


class TestOptimizers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        param = Parameter(np.array([10.0]))
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            (param * param).sum().backward()
            optimizer.step()
        return abs(param.data[0])

    def test_sgd_converges(self):
        assert self._quadratic_step(SGD, learning_rate=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_step(SGD, learning_rate=0.05, momentum=0.9) < 1e-2

    def test_adam_converges(self):
        assert self._quadratic_step(Adam, learning_rate=0.3) < 1e-2

    def test_adam_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], learning_rate=0.01, weight_decay=1.0)
        for _ in range(100):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()  # zero loss gradient
            optimizer.step()
        assert abs(param.data[0]) < 1.0

    def test_requires_parameters(self):
        with pytest.raises(OptimizationError):
            Adam([], learning_rate=0.01)

    def test_requires_positive_lr(self):
        with pytest.raises(OptimizationError):
            SGD([Parameter(np.ones(1))], learning_rate=0.0)

    def test_skips_parameters_without_grad(self):
        a, b = Parameter(np.ones(1)), Parameter(np.ones(1))
        optimizer = SGD([a, b], learning_rate=0.1)
        (a * 2.0).sum().backward()
        optimizer.step()
        assert b.data[0] == 1.0
        assert a.data[0] != 1.0


class TestSchedulers:
    def _make(self, **kwargs):
        optimizer = SGD([Parameter(np.ones(1))], learning_rate=1.0)
        return optimizer, ReduceLROnPlateau(optimizer, **kwargs)

    def test_reduces_after_patience(self):
        optimizer, scheduler = self._make(patience=2, factor=0.5)
        scheduler.step(1.0)  # best
        for _ in range(2):
            assert not scheduler.step(1.0)  # no improvement, within patience
        assert scheduler.step(1.0)  # exceeds patience -> reduce
        assert optimizer.learning_rate == 0.5

    def test_improvement_resets_patience(self):
        optimizer, scheduler = self._make(patience=2, factor=0.5)
        scheduler.step(1.0)
        scheduler.step(1.0)
        scheduler.step(0.5)  # improvement
        scheduler.step(0.5)
        scheduler.step(0.5)
        assert optimizer.learning_rate == 1.0  # not yet reduced

    def test_min_lr_floor(self):
        optimizer, scheduler = self._make(patience=0, factor=0.1, min_lr=0.05)
        scheduler.step(1.0)
        for _ in range(5):
            scheduler.step(1.0)
        assert optimizer.learning_rate == pytest.approx(0.05)

    def test_paper_factor_5_normalized(self):
        _, scheduler = self._make(factor=5.0)
        assert scheduler.factor == pytest.approx(0.2)

    def test_pinned_min_lr_does_not_reset_bad_epochs(self):
        # Regression: once the LR sat at min_lr, every patience expiry
        # used to reset num_bad_epochs to 0 without reducing anything,
        # so the scheduler silently cycled and num_reductions
        # undercounted plateau events (PyTorch reduces only when
        # old_lr - new_lr exceeds eps; a pinned LR never does).
        optimizer, scheduler = self._make(
            patience=1, factor=0.1, min_lr=0.5
        )
        scheduler.step(1.0)  # best
        assert not scheduler.step(1.0)  # bad epoch 1, within patience
        assert scheduler.step(1.0)  # bad epoch 2 -> reduce 1.0 -> 0.5
        assert optimizer.learning_rate == pytest.approx(0.5)
        assert scheduler.num_reductions == 1
        # Pinned at min_lr: further plateau epochs must not count as
        # reductions, and the bad-epoch counter must keep growing
        # rather than silently re-arming.
        for epoch in range(1, 4):
            assert not scheduler.step(1.0)
            assert scheduler.num_bad_epochs == epoch
        assert optimizer.learning_rate == pytest.approx(0.5)
        assert scheduler.num_reductions == 1

    def test_num_reductions_counts_actual_reductions(self):
        optimizer, scheduler = self._make(
            patience=0, factor=0.1, min_lr=0.001
        )
        scheduler.step(1.0)
        for _ in range(6):
            scheduler.step(1.0)
        # 1.0 -> 0.1 -> 0.01 -> 0.001 (pinned thereafter)
        assert scheduler.num_reductions == 3
        assert optimizer.learning_rate == pytest.approx(0.001)

    def test_max_mode(self):
        optimizer, scheduler = self._make(mode="max", patience=0, factor=0.5)
        scheduler.step(1.0)
        scheduler.step(2.0)  # improvement in max mode
        assert optimizer.learning_rate == 1.0
        scheduler.step(1.5)  # worse -> reduce (patience 0)
        assert optimizer.learning_rate == 0.5

    def test_invalid_mode(self):
        optimizer = SGD([Parameter(np.ones(1))], learning_rate=1.0)
        with pytest.raises(OptimizationError):
            ReduceLROnPlateau(optimizer, mode="bogus")

    def test_step_lr(self):
        optimizer = SGD([Parameter(np.ones(1))], learning_rate=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        assert optimizer.learning_rate == 1.0
        scheduler.step()
        assert optimizer.learning_rate == pytest.approx(0.1)


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        target = np.array([[0.0, 0.0]])
        assert mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_mae_value(self):
        pred = Tensor(np.array([[1.0, -2.0]]))
        assert mae_loss(pred, np.zeros((1, 2))).item() == pytest.approx(1.5)

    def test_huber_quadratic_region(self):
        pred = Tensor(np.array([[0.5]]))
        assert huber_loss(pred, np.zeros((1, 1))).item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([[3.0]]))
        assert huber_loss(pred, np.zeros((1, 1))).item() == pytest.approx(2.5)

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            mse_loss(Tensor(np.ones((2, 2))), np.ones((2, 3)))

    def test_target_never_gets_grad(self):
        pred = Tensor(np.ones((2, 2)), requires_grad=True)
        target = Tensor(np.zeros((2, 2)), requires_grad=True)
        mse_loss(pred, target).backward()
        assert target.grad is None
        assert pred.grad is not None
