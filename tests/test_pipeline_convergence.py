"""Tests for convergence-speed analysis."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.graphs.generators import random_regular_graph
from repro.pipeline.convergence import (
    ConvergenceAnalyzer,
    ConvergenceComparison,
    ConvergenceReport,
    iterations_to_threshold,
)
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.initialization import ConstantInitialization


class TestIterationsToThreshold:
    def test_finds_first_crossing(self):
        assert iterations_to_threshold([0.1, 0.5, 0.9, 0.95], 0.9) == 3

    def test_none_when_never_reached(self):
        assert iterations_to_threshold([0.1, 0.2], 0.9) is None

    def test_immediate(self):
        assert iterations_to_threshold([1.0], 0.9) == 1

    def test_empty_history(self):
        assert iterations_to_threshold([], 0.5) is None


class TestComparison:
    def test_saved_iterations(self):
        comparison = ConvergenceComparison(
            graph_name="g",
            target_ratio=0.9,
            random_iterations=40,
            warm_iterations=10,
            budget=100,
        )
        assert comparison.saved_iterations() == 30

    def test_nonreaching_counts_as_budget(self):
        comparison = ConvergenceComparison(
            graph_name="g",
            target_ratio=0.9,
            random_iterations=None,
            warm_iterations=10,
            budget=100,
        )
        assert comparison.saved_iterations() == 90


class TestReport:
    def test_aggregates(self):
        report = ConvergenceReport(target_ratio=0.9, budget=50)
        report.comparisons.append(
            ConvergenceComparison("a", 0.9, 30, 10, 50)
        )
        report.comparisons.append(
            ConvergenceComparison("b", 0.9, None, 20, 50)
        )
        assert report.mean_saved_iterations == pytest.approx(25.0)
        assert report.reach_rate("random") == 0.5
        assert report.reach_rate("warm") == 1.0

    def test_unknown_arm(self):
        report = ConvergenceReport(target_ratio=0.9, budget=50)
        report.comparisons.append(
            ConvergenceComparison("a", 0.9, 1, 1, 50)
        )
        with pytest.raises(DatasetError):
            report.reach_rate("bogus")

    def test_summary_keys(self):
        report = ConvergenceReport(target_ratio=0.9, budget=50)
        assert set(report.summary()) == {
            "target_ratio",
            "budget",
            "mean_saved_iterations",
            "random_reach_rate",
            "warm_reach_rate",
            "count",
        }


class TestAnalyzer:
    @pytest.fixture(scope="class")
    def graphs(self):
        return [random_regular_graph(8, 3, rng=i) for i in range(4)]

    def test_oracle_warmstart_saves_iterations(self, graphs):
        # starting at the closed-form optimum must reach the target in
        # very few iterations; random starts need more on average
        gamma, beta = p1_optimal_angles_regular(3)
        analyzer = ConvergenceAnalyzer(
            p=1, budget=80, target_ratio=0.95, rng=0
        )
        report = analyzer.compare(
            graphs, ConstantInitialization(gamma, beta)
        )
        assert report.mean_saved_iterations >= 0
        assert report.reach_rate("warm") >= report.reach_rate("random") - 0.26

    def test_validation(self, graphs):
        with pytest.raises(DatasetError):
            ConvergenceAnalyzer(target_ratio=1.5)
        analyzer = ConvergenceAnalyzer(rng=0)
        with pytest.raises(DatasetError):
            analyzer.compare([], ConstantInitialization())

    def test_deterministic(self, graphs):
        def run():
            analyzer = ConvergenceAnalyzer(
                p=1, budget=30, target_ratio=0.9, rng=9
            )
            return analyzer.compare(
                graphs[:2], ConstantInitialization(0.6, 0.39)
            ).mean_saved_iterations

        assert run() == pytest.approx(run())
