"""Tests for QAOA parameter optimizers."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.graphs.generators import random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.optimizers import (
    AdamOptimizer,
    GradientDescentOptimizer,
    SPSAOptimizer,
    scipy_optimize,
)
from repro.qaoa.simulator import QAOASimulator


@pytest.fixture
def simulator(petersen_like):
    return QAOASimulator(petersen_like)


class TestAdam:
    def test_improves_expectation(self, simulator):
        start = simulator.expectation([0.3], [0.2])
        result = AdamOptimizer().run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=100
        )
        assert result.expectation > start

    def test_history_recorded(self, simulator):
        result = AdamOptimizer().run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=50
        )
        assert len(result.history) == 50
        assert result.iterations == 50

    def test_early_stopping(self, simulator):
        result = AdamOptimizer().run(
            simulator,
            np.array([0.3]),
            np.array([0.2]),
            max_iters=500,
            tol=1e-10,
        )
        assert result.iterations < 500

    def test_best_params_returned(self, simulator):
        result = AdamOptimizer().run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=80
        )
        assert simulator.expectation(result.gammas, result.betas) == (
            pytest.approx(result.expectation)
        )

    def test_reaches_near_closed_form_p1(self):
        # Optimizing p=1 on a near-triangle-free cubic graph should land
        # close to the closed-form per-edge value.
        graph = random_regular_graph(12, 3, rng=8)
        simulator = QAOASimulator(graph)
        result = AdamOptimizer(learning_rate=0.05).run(
            simulator, np.array([0.5]), np.array([0.3]), max_iters=300
        )
        gamma_star, beta_star = p1_optimal_angles_regular(3)
        reference = simulator.expectation([gamma_star], [beta_star])
        assert result.expectation >= reference - 0.05 * reference

    def test_invalid_learning_rate(self):
        with pytest.raises(OptimizationError):
            AdamOptimizer(learning_rate=0.0)

    def test_multi_layer(self, simulator):
        result = AdamOptimizer().run(
            simulator,
            np.array([0.3, 0.5]),
            np.array([0.2, 0.1]),
            max_iters=120,
        )
        p1 = AdamOptimizer().run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=120
        )
        # depth 2 should do at least as well as depth 1 (up to tolerance)
        assert result.expectation >= p1.expectation - 0.05


class TestGradientDescent:
    def test_monotone_improvement_tendency(self, simulator):
        result = GradientDescentOptimizer(learning_rate=0.01).run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=100
        )
        assert result.history[-1] > result.history[0]

    def test_invalid_learning_rate(self):
        with pytest.raises(OptimizationError):
            GradientDescentOptimizer(learning_rate=-1.0)


class TestSPSA:
    def test_improves_from_bad_start(self, simulator):
        baseline = simulator.expectation([0.05], [0.05])
        result = SPSAOptimizer(rng=0).run(
            simulator, np.array([0.05]), np.array([0.05]), max_iters=200
        )
        assert result.expectation > baseline

    def test_deterministic_with_seed(self, simulator):
        a = SPSAOptimizer(rng=7).run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=50
        )
        b = SPSAOptimizer(rng=7).run(
            simulator, np.array([0.3]), np.array([0.2]), max_iters=50
        )
        assert np.allclose(a.gammas, b.gammas)


class TestScipy:
    @pytest.mark.parametrize("method", ["L-BFGS-B", "Nelder-Mead", "COBYLA"])
    def test_methods_improve(self, simulator, method):
        start = simulator.expectation([0.3], [0.2])
        result = scipy_optimize(
            simulator, np.array([0.3]), np.array([0.2]), method=method
        )
        assert result.expectation >= start - 1e-9

    def test_lbfgs_matches_adam_quality(self, simulator):
        lbfgs = scipy_optimize(
            simulator, np.array([0.4]), np.array([0.25]), method="L-BFGS-B"
        )
        adam = AdamOptimizer().run(
            simulator, np.array([0.4]), np.array([0.25]), max_iters=300
        )
        assert abs(lbfgs.expectation - adam.expectation) < 0.2
