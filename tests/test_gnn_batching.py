"""Tests for GraphBatch construction."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn.batching import GraphBatch
from repro.graphs.graph import Graph
from repro.nn.tensor import Tensor


class TestFromGraphs:
    def test_single_graph(self, triangle):
        batch = GraphBatch.from_graphs([triangle])
        assert batch.num_graphs == 1
        assert batch.num_nodes == 3
        assert batch.num_edges == 6  # both directions
        assert batch.x.shape == (3, 15)

    def test_offsets_disjoint_union(self, triangle, square):
        batch = GraphBatch.from_graphs([triangle, square])
        assert batch.num_nodes == 7
        assert batch.num_graphs == 2
        # square's edges live in node range [3, 7)
        second_edges = batch.edge_src[batch.edge_src >= 3]
        assert (second_edges < 7).all()
        np.testing.assert_array_equal(batch.node_graph, [0, 0, 0, 1, 1, 1, 1])

    def test_degrees_match_graphs(self, triangle, square):
        batch = GraphBatch.from_graphs([triangle, square])
        np.testing.assert_allclose(batch.degrees(), [2, 2, 2, 2, 2, 2, 2])

    def test_custom_features(self, triangle):
        feats = np.arange(6.0).reshape(3, 2)
        batch = GraphBatch.from_graphs([triangle], features=[feats])
        np.testing.assert_allclose(batch.x.data, feats)

    def test_feature_row_mismatch(self, triangle):
        with pytest.raises(ModelError):
            GraphBatch.from_graphs([triangle], features=[np.zeros((2, 4))])

    def test_feature_list_length_mismatch(self, triangle, square):
        with pytest.raises(ModelError):
            GraphBatch.from_graphs([triangle, square], features=[np.zeros((3, 2))])

    def test_empty_batch_rejected(self):
        with pytest.raises(ModelError):
            GraphBatch.from_graphs([])

    def test_edge_weights_duplicated_both_directions(self, weighted_triangle):
        batch = GraphBatch.from_graphs([weighted_triangle])
        assert batch.edge_weight.shape == (6,)
        assert sorted(batch.edge_weight) == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]

    def test_edgeless_graph(self):
        batch = GraphBatch.from_graphs([Graph(3, ())])
        assert batch.num_edges == 0
        assert batch.num_nodes == 3

    def test_with_features_replaces(self, triangle):
        batch = GraphBatch.from_graphs([triangle])
        new = batch.with_features(Tensor(np.zeros((3, 4))))
        assert new.x.shape == (3, 4)
        assert new.edge_src is batch.edge_src

    def test_feature_kind_forwarded(self, triangle):
        batch = GraphBatch.from_graphs([triangle], feature_kind="structural")
        assert batch.x.shape == (3, 5)

    def test_validation_of_mismatched_arrays(self):
        with pytest.raises(ModelError):
            GraphBatch(
                Tensor(np.zeros((2, 2))),
                edge_src=np.array([0]),
                edge_dst=np.array([0, 1]),
                edge_weight=np.array([1.0]),
                node_graph=np.array([0, 0]),
                num_graphs=1,
            )
