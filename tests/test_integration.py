"""Cross-module integration tests: the full story, end to end."""

import numpy as np
import pytest

from repro.analysis.figures import comparison_series, render_comparison
from repro.analysis.tables import format_table1
from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.pruning import selective_data_pruning
from repro.data.splits import stratified_split
from repro.data.stats import ar_by_size, degree_frequency, size_frequency
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.runner import QAOARunner
from repro.qaoa.simulator import QAOASimulator


class TestQuantumClassicalAgreement:
    """The quantum stack agrees with classical ground truth."""

    def test_qaoa_never_beats_brute_force(self):
        for seed in range(5):
            graph = random_regular_graph(8, 3, rng=seed)
            problem = MaxCutProblem(graph)
            outcome = QAOARunner(p=2, max_iters=80).run(graph, rng=seed)
            assert outcome.expectation <= problem.max_cut_value() + 1e-9

    def test_deeper_circuits_reach_higher_ratios(self):
        graph = random_regular_graph(10, 3, rng=1)
        simulator = QAOASimulator(graph)
        optimizer = AdamOptimizer()
        ratios = []
        rng = np.random.default_rng(0)
        for p in (1, 2, 3):
            best = -np.inf
            for _ in range(3):  # restarts to dodge local optima
                result = optimizer.run(
                    simulator,
                    rng.uniform(0, 1, p),
                    rng.uniform(0, 0.8, p),
                    max_iters=150,
                )
                best = max(best, result.expectation)
            ratios.append(best / MaxCutProblem(graph).max_cut_value())
        assert ratios[1] >= ratios[0] - 0.01
        assert ratios[2] >= ratios[1] - 0.01

    def test_p1_optimum_matches_theory_on_cycle(self):
        # C6 is 2-regular triangle-free: optimal p=1 ratio = 0.75 exactly
        from repro.graphs.graph import Graph

        graph = Graph.cycle(6)
        gamma, beta = p1_optimal_angles_regular(2)
        ratio = QAOASimulator(graph).approximation_ratio([gamma], [beta])
        assert ratio == pytest.approx(0.75, abs=1e-9)


class TestDatasetStory:
    """Dataset generation reproduces the paper's distribution claims."""

    @pytest.fixture(scope="class")
    def dataset(self):
        config = GenerationConfig(
            num_graphs=60, min_nodes=3, max_nodes=12, optimizer_iters=30,
            seed=2024,
        )
        return generate_dataset(config)

    def test_distributions_cover_ranges(self, dataset):
        sizes = size_frequency(dataset.graphs())
        degrees = degree_frequency(dataset.graphs())
        assert min(sizes) >= 3 and max(sizes) <= 12
        assert min(degrees) >= 2

    def test_ar_by_size_has_spread(self, dataset):
        summaries = ar_by_size(dataset)
        assert any(s.maximum - s.minimum > 0.005 for s in summaries)

    def test_pruning_raises_quality(self, dataset):
        pruned, report = selective_data_pruning(
            dataset, threshold=0.8, selective_rate=0.0
        )
        if report.pruned > 0:
            assert report.mean_ar_after >= report.mean_ar_before


class TestWarmStartStory:
    """Trained GNN warm starts behave like the paper's Table 1/Figure 5."""

    @pytest.fixture(scope="class")
    def setup(self):
        # seed chosen for a clear warm-start effect under the per-graph
        # labeling seed layout (see repro.runtime.seeding)
        config = GenerationConfig(
            num_graphs=48, min_nodes=4, max_nodes=10, optimizer_iters=60,
            seed=12,
        )
        dataset = generate_dataset(config)
        dataset, _ = selective_data_pruning(
            dataset, threshold=0.7, selective_rate=0.5, rng=1
        )
        train, test = stratified_split(dataset, 10, rng=2)
        model = QAOAParameterPredictor(arch="gin", p=1, rng=3)
        Trainer(model, TrainingConfig(epochs=60, seed=3)).fit(train)
        model.eval()
        return model, test

    def test_predictions_in_canonical_ranges(self, setup):
        model, test = setup
        for record in test:
            gammas, betas = model.predict_angles(record.graph)
            assert 0 <= gammas[0] <= 2 * np.pi
            assert 0 <= betas[0] <= np.pi

    def test_warmstart_positive_improvement_on_tight_budget(self, setup):
        model, test = setup
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=15, rng=5)
        result = evaluator.evaluate_model(test.graphs(), model)
        # the paper's effect: positive mean improvement, majority wins
        assert result.mean_improvement > -1.0
        assert result.win_rate() >= 0.5

    def test_gnn_initial_ratio_beats_random_initial(self, setup):
        # before any optimization, predicted angles should start higher
        model, test = setup
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=2, rng=6)
        result = evaluator.evaluate_model(test.graphs(), model)
        gnn_initial = np.mean(
            [c.strategy_initial_ratio for c in result.comparisons]
        )
        random_initial = np.mean(
            [c.random_initial_ratio for c in result.comparisons]
        )
        assert gnn_initial > random_initial

    def test_figure5_and_table1_render(self, setup):
        model, test = setup
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=10, rng=7)
        result = evaluator.evaluate_model(test.graphs(), model, "gin")
        series = comparison_series(result)
        assert len(series) == len(test)
        text = render_comparison(result)
        assert "gin" in text
        table = format_table1({"gin": result})
        assert "gin" in table
