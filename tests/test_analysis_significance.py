"""Tests for paired significance testing."""

import numpy as np
import pytest

from repro.analysis.significance import (
    SignificanceReport,
    paired_significance,
    significance_table,
)

from tests.test_analysis import make_result


class TestPairedSignificance:
    def test_clear_positive_effect(self):
        rng = np.random.default_rng(0)
        improvements = rng.normal(5.0, 1.0, size=50)
        report = paired_significance(improvements)
        assert report.mean == pytest.approx(5.0, abs=0.5)
        assert report.t_pvalue < 1e-6
        assert report.wilcoxon_pvalue < 1e-6
        assert report.sign_test_pvalue < 1e-6
        assert report.significant()

    def test_null_effect_not_significant(self):
        rng = np.random.default_rng(1)
        improvements = rng.normal(0.0, 10.0, size=50)
        report = paired_significance(improvements)
        assert report.t_pvalue > 0.05
        assert not report.significant()

    def test_small_effect_large_spread(self):
        # the paper's regime: mean ~3, std ~10, n=100 -> borderline
        rng = np.random.default_rng(2)
        improvements = rng.normal(3.0, 10.0, size=100)
        report = paired_significance(improvements)
        assert 0.0 < report.t_pvalue < 0.2

    def test_requires_two_values(self):
        with pytest.raises(ValueError):
            paired_significance([1.0])

    def test_all_zero_differences(self):
        report = paired_significance([0.0, 0.0, 0.0])
        assert np.isnan(report.wilcoxon_pvalue)
        assert np.isnan(report.sign_test_pvalue)
        assert not report.significant()

    def test_n_recorded(self):
        report = paired_significance([1.0, 2.0, 3.0])
        assert report.n == 3


class TestSignificanceTable:
    def test_rows_per_strategy(self):
        results = {
            "gcn": make_result("gcn", improvements=(5.0, 4.0, 6.0, 5.5)),
            "gin": make_result("gin", improvements=(0.1, -0.1, 0.2, -0.2)),
        }
        rows = significance_table(results)
        assert len(rows) == 2
        by_name = {row["strategy"]: row for row in rows}
        assert by_name["gcn"]["significant_5pct"]
        assert not by_name["gin"]["significant_5pct"]

    def test_columns(self):
        rows = significance_table(
            {"x": make_result("x", improvements=(1.0, 2.0, 3.0))}
        )
        assert set(rows[0]) == {
            "strategy",
            "mean_pp",
            "t_pvalue",
            "wilcoxon_pvalue",
            "sign_pvalue",
            "significant_5pct",
            "n",
        }
