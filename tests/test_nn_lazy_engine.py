"""Unit tests for the lazy engine internals: IR recording, fusion,
plan caching, arena accounting, and profiler counter attribution."""

import numpy as np

from repro.exceptions import ModelError
from repro.nn import Tensor, eager, is_lazy_enabled, where
from repro.nn import lazyir
from repro.nn import realize as realize_mod
from repro.nn.realize import clear_plan_cache, counters, plan_cache_size
from repro.profiling import TrainingProfiler


def setup_function(function):
    clear_plan_cache()
    lazyir.clear_cse_table()


class TestRecording:
    def test_ops_record_without_computing(self):
        x = Tensor(np.ones((3, 3)))
        y = (x + 1.0).tanh() * 2.0
        assert y._data is None
        assert y._node is not None
        np.testing.assert_array_equal(
            y.data, np.tanh(np.ones((3, 3)) + 1.0) * 2.0
        )
        assert y._data is not None  # realized and cached

    def test_eager_context_computes_immediately(self):
        assert is_lazy_enabled()
        with eager():
            assert not is_lazy_enabled()
            y = Tensor(np.ones(3)) + 1.0
            assert y._data is not None
        assert is_lazy_enabled()

    def test_cse_dedupes_identical_ops(self):
        x = Tensor(np.arange(4.0))
        a = x + x
        b = x + x
        assert a._node is b._node
        # Different structure is a different node.
        c = x * x
        assert c._node is not a._node

    def test_cse_cleared_at_realize(self):
        x = Tensor(np.arange(4.0))
        a = x + x
        _ = a.data  # realize (sync point)
        b = x + x
        assert b._node is not a._node

    def test_shape_introspection_without_realize(self):
        x = Tensor(np.ones((2, 5)))
        y = (x @ Tensor(np.ones((5, 3)))).sum(axis=0, keepdims=True)
        assert y.shape == (1, 3)
        assert y.ndim == 2
        assert y.size == 3
        assert y._data is None  # shape inference did not realize


class TestFusion:
    def test_elementwise_chain_fuses_into_one_kernel(self):
        x = Tensor(np.random.default_rng(0).normal(size=(64, 64)))
        before_kernels, before_ops = counters.kernels, counters.ops
        y = ((x * 2.0 + 1.0).tanh() - 0.5).sum()
        _ = y.data
        assert counters.kernels - before_kernels == 1
        assert counters.ops - before_ops == 5

    def test_views_are_views_not_kernels(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        before = counters.kernels
        transposed = x.T
        base = transposed.data
        assert counters.kernels == before  # a view step, not a kernel
        assert np.shares_memory(base, x.data)

    def test_multi_consumer_node_is_materialized_once(self):
        x = Tensor(np.random.default_rng(1).normal(size=(8, 8)))
        shared = (x * 3.0).tanh()
        a = shared + 1.0
        b = shared * 2.0
        before = counters.ops
        realize_mod.realize([a._node, b._node])
        # shared chain (mul, tanh) computed once, plus one op per branch
        assert counters.ops - before == 4

    def test_scalar_inlining_matches_eager_bits(self):
        data = np.random.default_rng(2).normal(size=(16, 16))
        lazy = ((Tensor(data) * 1.7 + 0.3) / 2.9).data
        with eager():
            ref = ((Tensor(data) * 1.7 + 0.3) / 2.9).data
        np.testing.assert_array_equal(lazy, ref)


class TestPlanCache:
    def test_same_structure_hits_cache(self):
        def build(values):
            return ((Tensor(values) * 2.0).tanh() + 1.0).data

        values = np.random.default_rng(3).normal(size=(10, 4))
        build(values)
        hits, misses = counters.plan_hits, counters.plan_misses
        build(values + 1.0)  # same structure, different values
        assert counters.plan_hits == hits + 1
        assert counters.plan_misses == misses

    def test_different_scalar_is_different_plan(self):
        values = np.random.default_rng(4).normal(size=(4,))
        _ = (Tensor(values) * 2.0).data
        misses = counters.plan_misses
        _ = (Tensor(values) * 3.0).data  # different inlined constant
        assert counters.plan_misses == misses + 1

    def test_boolean_mask_getitem_bypasses_cache(self):
        values = np.arange(6.0)
        mask = values > 2.0
        size = plan_cache_size()
        out = Tensor(values)[mask].data
        np.testing.assert_array_equal(out, values[mask])
        assert plan_cache_size() == size  # uncacheable graph not stored

    def test_clear_plan_cache(self):
        _ = (Tensor(np.ones(3)) + 1.0).data
        assert plan_cache_size() > 0
        clear_plan_cache()
        assert plan_cache_size() == 0


class TestArenaAccounting:
    def test_cur_bytes_returns_to_baseline(self):
        baseline = counters.cur_bytes
        x = Tensor(np.random.default_rng(5).normal(size=(32, 32)))
        _ = ((x * 2.0).tanh() + 1.0).sum().data
        assert counters.cur_bytes == baseline

    def test_peak_bytes_tracks_temporaries(self):
        counters.push_mark()
        x = Tensor(np.random.default_rng(6).normal(size=(64, 64)))
        _ = (x * 2.0 + 1.0).data
        peak = counters.pop_mark()
        # One fused temporary (the escaping result buffer) at minimum.
        assert peak >= 64 * 64 * 8


class TestProfilerIntegration:
    def test_phase_attributes_engine_counters(self):
        profiler = TrainingProfiler()
        x = Tensor(np.random.default_rng(7).normal(size=(16, 16)))
        with profiler.phase("forward"):
            _ = ((x * 2.0).tanh() + 1.0).data
        report = profiler.report()
        phase_counters = report["phases"]["forward"]["counters"]
        assert phase_counters["kernels"] >= 1
        assert phase_counters["realizes"] >= 1
        assert phase_counters["peak_temp_bytes"] > 0
        assert "forward" in profiler.format_report()


class TestSatelliteRegressions:
    def test_where_accepts_tensor_condition(self):
        cond = Tensor(np.array([1.0, 0.0, 2.0]))
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_array_equal(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])

    def test_where_tensor_condition_matches_eager(self):
        rng = np.random.default_rng(8)
        cond_values = rng.normal(size=(5, 3))
        a_values = rng.normal(size=(5, 3))
        b_values = rng.normal(size=(5, 3))

        def run():
            a = Tensor(a_values, requires_grad=True)
            b = Tensor(b_values, requires_grad=True)
            out = where(Tensor(cond_values) > 0.0, a, b)
            out.sum().backward()
            return out.data.copy(), a.grad.copy(), b.grad.copy()

        lazy = run()
        with eager():
            ref = run()
        for got, want in zip(lazy, ref):
            np.testing.assert_array_equal(got, want)

    def test_comparisons_accept_tensor_operands(self):
        a = Tensor(np.array([1.0, 5.0]))
        b = Tensor(np.array([3.0, 3.0]))
        np.testing.assert_array_equal(a > b, [False, True])
        np.testing.assert_array_equal(a < b, [True, False])
        np.testing.assert_array_equal(a >= b, [False, True])
        np.testing.assert_array_equal(a <= b, [True, False])

    def test_data_setter_invalidates_node(self):
        x = Tensor(np.zeros(3))
        y = x + 1.0
        x.data = np.ones(3)
        assert x._node is None
        # y recorded against the old buffer; already-recorded graphs
        # keep their input binding.
        np.testing.assert_array_equal(y.data, np.ones(3))

    def test_detach_shares_lazy_node(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        d = y.detach()
        assert d._node is y._node
        assert not d.requires_grad
        np.testing.assert_array_equal(d.data, np.full(3, 2.0))

    def test_reshape_minus_one_and_errors(self):
        x = Tensor(np.arange(12.0))
        assert x.reshape(3, -1).shape == (3, 4)
        try:
            x.reshape(5, -1)
        except ModelError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ModelError")

    def test_backward_realizes_loss_and_grads_in_one_plan(self):
        x = Tensor(np.random.default_rng(9).normal(size=(6, 6)),
                   requires_grad=True)
        loss = (x.tanh() * 2.0).sum()
        before = counters.realizes
        loss.backward()
        assert counters.realizes - before == 1  # single batched realize
        assert loss._data is not None
        assert x._grad is not None
