"""Tests for k-fold cross-validated evaluation."""

import pytest

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError
from repro.pipeline.crossval import cross_validate, cross_validate_architectures
from repro.pipeline.training import TrainingConfig


class TestCrossValidate:
    def test_fold_count(self, tiny_dataset):
        result = cross_validate(
            tiny_dataset,
            arch="gcn",
            folds=3,
            training=TrainingConfig(epochs=5),
            eval_optimizer_iters=5,
            rng=0,
        )
        assert len(result.fold_improvements) == 3
        assert len(result.fold_win_rates) == 3
        assert result.arch == "gcn"

    def test_aggregates(self, tiny_dataset):
        result = cross_validate(
            tiny_dataset,
            arch="gcn",
            folds=3,
            training=TrainingConfig(epochs=5),
            eval_optimizer_iters=5,
            rng=0,
        )
        assert -100 < result.mean_improvement < 100
        assert result.std_improvement >= 0

    def test_too_few_records(self):
        with pytest.raises(DatasetError):
            cross_validate(QAOADataset(), folds=4)

    def test_deterministic(self, tiny_dataset):
        def run():
            return cross_validate(
                tiny_dataset,
                arch="gcn",
                folds=2,
                training=TrainingConfig(epochs=3),
                eval_optimizer_iters=3,
                rng=7,
            ).fold_improvements

        assert run() == pytest.approx(run())

    def test_multiple_architectures(self, tiny_dataset):
        results = cross_validate_architectures(
            tiny_dataset,
            architectures=("gcn", "sage"),
            folds=2,
            training=TrainingConfig(epochs=3),
            eval_optimizer_iters=3,
            rng=0,
        )
        assert set(results) == {"gcn", "sage"}
