"""Tests for result breakdowns by instance shape."""

import pytest

from repro.analysis.breakdown import (
    hardest_instances,
    improvement_by_degree,
    improvement_by_size,
)
from repro.pipeline.evaluation import EvaluationResult, WarmStartComparison


def make_mixed_result():
    result = EvaluationResult(strategy_name="gin")
    specs = [
        ("a", 6, 3, 0.70, 0.80),
        ("b", 6, 3, 0.70, 0.72),
        ("c", 8, 3, 0.70, 0.65),
        ("d", 8, 5, 0.60, 0.70),
    ]
    for name, n, d, random_ar, warm_ar in specs:
        result.comparisons.append(
            WarmStartComparison(
                graph_name=name,
                num_nodes=n,
                degree=d,
                random_ratio=random_ar,
                strategy_ratio=warm_ar,
                random_initial_ratio=0.5,
                strategy_initial_ratio=0.55,
            )
        )
    return result


class TestBreakdowns:
    def test_by_size_buckets(self):
        rows = improvement_by_size(make_mixed_result())
        assert [row["num_nodes"] for row in rows] == [6, 8]
        assert rows[0]["count"] == 2
        assert rows[0]["mean_improvement_pp"] == pytest.approx(6.0)

    def test_by_degree_buckets(self):
        rows = improvement_by_degree(make_mixed_result())
        assert [row["degree"] for row in rows] == [3, 5]
        assert rows[1]["count"] == 1
        assert rows[1]["mean_improvement_pp"] == pytest.approx(10.0)

    def test_mean_ars_per_bucket(self):
        rows = improvement_by_size(make_mixed_result())
        assert rows[0]["mean_random_ar"] == pytest.approx(0.70)
        assert rows[0]["mean_warm_ar"] == pytest.approx(0.76)

    def test_hardest_instances_sorted(self):
        hardest = hardest_instances(make_mixed_result(), count=2)
        assert hardest[0]["graph"] == "c"  # the only regression (-5pp)
        assert hardest[0]["improvement_pp"] == pytest.approx(-5.0)
        assert len(hardest) == 2

    def test_hardest_count_clamped(self):
        hardest = hardest_instances(make_mixed_result(), count=10)
        assert len(hardest) == 4

    def test_empty_result(self):
        empty = EvaluationResult(strategy_name="x")
        assert improvement_by_size(empty) == []
        assert hardest_instances(empty) == []
