"""Tests for the graph text-file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphFormatError
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_from_text,
    graph_to_text,
    load_graph,
    load_graphs,
    save_graph,
    save_graphs,
)
from repro.graphs.generators import erdos_renyi_graph


class TestTextFormat:
    def test_roundtrip_unweighted(self, square):
        assert graph_from_text(graph_to_text(square)).edges == square.edges

    def test_roundtrip_weighted(self, weighted_triangle):
        parsed = graph_from_text(graph_to_text(weighted_triangle))
        assert parsed.weights == weighted_triangle.weights

    def test_name_preserved(self, triangle):
        parsed = graph_from_text(graph_to_text(triangle))
        assert parsed.name == "triangle"

    def test_explicit_name_wins(self, triangle):
        parsed = graph_from_text(graph_to_text(triangle), name="other")
        assert parsed.name == "other"

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\nnodes 2\n# another\nedge 0 1\n"
        parsed = graph_from_text(text)
        assert parsed.num_edges == 1

    def test_missing_nodes_line(self):
        with pytest.raises(GraphFormatError, match="missing 'nodes'"):
            graph_from_text("edge 0 1\n")

    def test_duplicate_nodes_line(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            graph_from_text("nodes 2\nnodes 3\n")

    def test_malformed_edge(self):
        with pytest.raises(GraphFormatError, match="malformed"):
            graph_from_text("nodes 2\nedge 0\n")

    def test_bad_weight(self):
        with pytest.raises(GraphFormatError, match="bad weight"):
            graph_from_text("nodes 2\nedge 0 1 abc\n")

    def test_unknown_directive(self):
        with pytest.raises(GraphFormatError, match="unknown directive"):
            graph_from_text("nodes 2\nvertex 0\n")

    def test_bad_node_count(self):
        with pytest.raises(GraphFormatError, match="bad node count"):
            graph_from_text("nodes two\n")

    @given(st.integers(2, 12), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, n, seed):
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        parsed = graph_from_text(graph_to_text(graph))
        assert parsed.num_nodes == graph.num_nodes
        assert parsed.edges == graph.edges
        assert parsed.weights == graph.weights


class TestFileIO:
    def test_save_load_single(self, tmp_path, square):
        path = tmp_path / "g" / "square.graph"
        save_graph(square, path)
        loaded = load_graph(path)
        assert loaded.edges == square.edges

    def test_stem_becomes_name(self, tmp_path):
        graph = Graph(2, ((0, 1),))
        path = tmp_path / "mygraph.graph"
        save_graph(graph, path)
        assert load_graph(path).name == "mygraph"

    def test_save_load_directory(self, tmp_path, triangle, square):
        paths = save_graphs([triangle, square], tmp_path)
        assert len(paths) == 2
        loaded = load_graphs(tmp_path)
        assert {g.name for g in loaded} == {"triangle", "square"}

    def test_unnamed_graphs_get_indices(self, tmp_path):
        graphs = [Graph(2, ((0, 1),)), Graph(3, ((0, 2),))]
        paths = save_graphs(graphs, tmp_path)
        assert paths[0].stem == "graph_00000"
        assert paths[1].stem == "graph_00001"
