"""Tests for repro.utils: RNG plumbing and serialization."""

import json
import os

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.serialization import atomic_write_text, load_json, save_json
from repro.utils.logging import get_logger


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_spawn_is_deterministic_given_parent(self):
        a = spawn_rng(ensure_rng(11)).random(4)
        b = spawn_rng(ensure_rng(11)).random(4)
        assert np.array_equal(a, b)

    def test_spawn_independent_of_parent_consumption(self):
        parent = ensure_rng(11)
        child = spawn_rng(parent)
        first = child.random()
        parent.random(100)
        assert first == first  # child already derived; no interference

    def test_two_spawns_differ(self):
        parent = ensure_rng(11)
        a = spawn_rng(parent).random(4)
        b = spawn_rng(parent).random(4)
        assert not np.array_equal(a, b)


class TestSerialization:
    def test_roundtrip_builtin(self, tmp_path):
        data = {"a": 1, "b": [1.5, "x"], "c": None}
        path = tmp_path / "sub" / "data.json"
        save_json(data, path)
        assert load_json(path) == data

    def test_numpy_scalars_and_arrays(self, tmp_path):
        data = {
            "i": np.int64(3),
            "f": np.float64(2.5),
            "b": np.bool_(True),
            "arr": np.arange(3),
        }
        path = tmp_path / "np.json"
        save_json(data, path)
        loaded = load_json(path)
        assert loaded == {"i": 3, "f": 2.5, "b": True, "arr": [0, 1, 2]}

    def test_raises_on_unserializable(self, tmp_path):
        with pytest.raises(TypeError):
            save_json({"x": object()}, tmp_path / "bad.json")

    def test_output_is_valid_json(self, tmp_path):
        path = tmp_path / "v.json"
        save_json([1, 2, 3], path)
        assert json.loads(path.read_text()) == [1, 2, 3]


class TestAtomicWrites:
    def test_atomic_write_text_roundtrip(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrite_replaces_content(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "data")
        assert os.listdir(tmp_path) == ["file.txt"]

    def test_failed_encode_leaves_existing_file_intact(self, tmp_path):
        """An unserializable payload must not clobber the previous save."""
        path = tmp_path / "data.json"
        save_json({"ok": 1}, path)
        with pytest.raises(TypeError):
            save_json({"bad": object()}, path)
        assert load_json(path) == {"ok": 1}
        assert os.listdir(tmp_path) == ["data.json"]

    def test_dataset_save_is_atomic(self, tmp_path, tiny_dataset):
        """Dataset.save never leaves a truncated file on disk."""
        path = tmp_path / "ds.json"
        tiny_dataset.save(path)
        reloaded_summary = json.loads(path.read_text())
        assert isinstance(reloaded_summary, (list, dict))
        assert os.listdir(tmp_path) == ["ds.json"]


class TestLogging:
    def test_logger_namespaced(self):
        logger = get_logger("repro.test")
        assert logger.name == "repro.test"

    def test_root_handler_installed_once(self):
        get_logger("repro.a")
        get_logger("repro.b")
        import logging

        assert len(logging.getLogger("repro").handlers) == 1
