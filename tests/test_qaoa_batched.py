"""Batched simulator and lock-step optimizers vs the serial engine.

The batched kernels compute the same per-instance quantities as the
serial :class:`QAOASimulator` on a cheaper operation schedule, so every
test here asserts agreement within ``TOL = 1e-10`` — the evaluation
engine's numerical contract — on forward values, adjoint gradients, and
full optimization trajectories.
"""

import numpy as np
import pytest

from repro.exceptions import CircuitError, OptimizationError
from repro.graphs.generators import (
    random_connected_graph,
    random_weighted_graph,
)
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.batched import (
    BatchedAdamOptimizer,
    BatchedGradientDescentOptimizer,
    BatchedQAOASimulator,
    _batched_mixer_into,
    _batched_rx_group_matrices,
    _batched_sum_x_into,
)
from repro.qaoa.optimizers import AdamOptimizer, GradientDescentOptimizer
from repro.qaoa.simulator import (
    QAOASimulator,
    _apply_mixer,
    _apply_sum_x,
    _rx_group_matrix,
)

TOL = 1e-10


def _problems(num_nodes, count, seed=0):
    return [
        MaxCutProblem(random_connected_graph(num_nodes, rng=seed + i))
        for i in range(count)
    ]


def _params(rng, batch, p):
    return rng.uniform(0.0, 2.0, (batch, p)), rng.uniform(0.0, 1.0, (batch, p))


class TestBatchedKernels:
    @pytest.mark.parametrize("k", [1, 2, 4, 6])
    def test_group_matrices_match_serial(self, k):
        betas = np.array([0.0, 0.3, -0.7, 1.9])
        stack = _batched_rx_group_matrices(k, betas)
        for i, beta in enumerate(betas):
            np.testing.assert_allclose(
                stack[i], _rx_group_matrix(k, beta), atol=TOL, rtol=0.0
            )

    @pytest.mark.parametrize("n", [1, 3, 6, 7, 9, 12, 13])
    def test_mixer_matches_serial(self, n):
        # n <= 6 is the single-gemm path, 7..12 the two-gemm path, and
        # 13 exercises the middle-qubit butterflies between the groups.
        rng = np.random.default_rng(n)
        batch, dim = 3, 1 << n
        src = rng.normal(size=(batch, dim)) + 1j * rng.normal(
            size=(batch, dim)
        )
        src = np.ascontiguousarray(src)
        dst = np.empty_like(src)
        betas = rng.uniform(-1.0, 1.0, batch)
        _batched_mixer_into(src, dst, n, betas)
        for i, beta in enumerate(betas):
            np.testing.assert_allclose(
                dst[i], _apply_mixer(src[i], n, beta), atol=TOL, rtol=0.0
            )

    @pytest.mark.parametrize("n", [1, 4, 6, 8, 13])
    def test_sum_x_matches_serial(self, n):
        rng = np.random.default_rng(n)
        batch, dim = 3, 1 << n
        src = rng.normal(size=(batch, dim)) + 1j * rng.normal(
            size=(batch, dim)
        )
        src = np.ascontiguousarray(src)
        out = np.empty_like(src)
        _batched_sum_x_into(src, n, out)
        for i in range(batch):
            np.testing.assert_allclose(
                out[i], _apply_sum_x(src[i], n), atol=TOL, rtol=0.0
            )


class TestBatchedSimulator:
    @pytest.mark.parametrize("n", [2, 4, 6, 7, 8, 12])
    def test_forward_and_gradient_match_serial(self, n):
        problems = _problems(n, 4, seed=10 * n)
        batched = BatchedQAOASimulator(problems)
        gammas, betas = _params(np.random.default_rng(n), 4, 2)
        energies, grad_gamma, grad_beta = batched.expectations_and_gradients(
            gammas, betas
        )
        values = batched.expectations(gammas, betas)
        ratios = batched.approximation_ratios(gammas, betas)
        for i, problem in enumerate(problems):
            serial = QAOASimulator(problem)
            e, gg, gb = serial.expectation_and_gradient(gammas[i], betas[i])
            assert abs(energies[i] - e) < TOL
            assert abs(values[i] - serial.expectation(gammas[i], betas[i])) < TOL
            np.testing.assert_allclose(grad_gamma[i], gg, atol=TOL, rtol=0.0)
            np.testing.assert_allclose(grad_beta[i], gb, atol=TOL, rtol=0.0)
            assert ratios[i] == pytest.approx(
                problem.approximation_ratio(e), abs=TOL
            )

    def test_middle_butterfly_path_matches_serial(self):
        # n = 13 puts one qubit between the low and high gemm groups.
        problems = _problems(13, 2, seed=77)
        batched = BatchedQAOASimulator(problems)
        gammas, betas = _params(np.random.default_rng(13), 2, 1)
        energies, grad_gamma, grad_beta = batched.expectations_and_gradients(
            gammas, betas
        )
        for i, problem in enumerate(problems):
            e, gg, gb = QAOASimulator(problem).expectation_and_gradient(
                gammas[i], betas[i]
            )
            assert abs(energies[i] - e) < TOL
            np.testing.assert_allclose(grad_gamma[i], gg, atol=TOL, rtol=0.0)
            np.testing.assert_allclose(grad_beta[i], gb, atol=TOL, rtol=0.0)

    def test_single_instance_stack(self):
        # K = 1 — the degenerate bucket a unique graph size produces.
        problems = _problems(6, 1, seed=3)
        batched = BatchedQAOASimulator(problems)
        gammas, betas = _params(np.random.default_rng(1), 1, 2)
        energies, _, _ = batched.expectations_and_gradients(gammas, betas)
        e, _, _ = QAOASimulator(problems[0]).expectation_and_gradient(
            gammas[0], betas[0]
        )
        assert abs(energies[0] - e) < TOL

    def test_weighted_graphs_use_dense_phase_fallback(self):
        # Non-integral diagonals cannot use the phase-gather table; the
        # dense-exp fallback must agree with serial just the same.
        problems = [
            MaxCutProblem(random_weighted_graph(7, rng=i)) for i in range(3)
        ]
        batched = BatchedQAOASimulator(problems)
        assert batched._diag_int is None
        gammas, betas = _params(np.random.default_rng(5), 3, 2)
        energies, grad_gamma, grad_beta = batched.expectations_and_gradients(
            gammas, betas
        )
        for i, problem in enumerate(problems):
            e, gg, gb = QAOASimulator(problem).expectation_and_gradient(
                gammas[i], betas[i]
            )
            assert abs(energies[i] - e) < TOL
            np.testing.assert_allclose(grad_gamma[i], gg, atol=TOL, rtol=0.0)
            np.testing.assert_allclose(grad_beta[i], gb, atol=TOL, rtol=0.0)

    def test_unweighted_graphs_use_phase_table(self):
        batched = BatchedQAOASimulator(_problems(6, 2))
        assert batched._diag_int is not None

    def test_mixed_sizes_rejected(self):
        with pytest.raises(CircuitError, match="share one node count"):
            BatchedQAOASimulator(
                [_problems(5, 1)[0], _problems(6, 1)[0]]
            )

    def test_empty_stack_rejected(self):
        with pytest.raises(CircuitError, match="at least one"):
            BatchedQAOASimulator([])

    def test_bad_parameter_shapes_rejected(self):
        batched = BatchedQAOASimulator(_problems(5, 2))
        with pytest.raises(CircuitError):
            batched.expectations(np.zeros(2), np.zeros(2))  # 1-D
        with pytest.raises(CircuitError):
            batched.expectations(np.zeros((2, 1)), np.zeros((2, 2)))
        with pytest.raises(CircuitError):
            batched.expectations(np.zeros((3, 1)), np.zeros((3, 1)))  # K=2
        with pytest.raises(CircuitError):
            batched.expectations(np.zeros((2, 0)), np.zeros((2, 0)))

    def test_accepts_raw_graphs(self):
        graphs = [random_connected_graph(5, rng=i) for i in range(2)]
        batched = BatchedQAOASimulator(graphs)
        assert all(
            isinstance(p, MaxCutProblem) for p in batched.problems
        )


class TestLockStepOptimizers:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_adam_trace_matches_serial(self, n):
        problems = _problems(n, 3, seed=n)
        batched_sim = BatchedQAOASimulator(problems)
        gammas, betas = _params(np.random.default_rng(n), 3, 2)
        result = BatchedAdamOptimizer(learning_rate=0.05).run(
            batched_sim, gammas, betas, max_iters=40
        )
        for i, problem in enumerate(problems):
            serial = AdamOptimizer(learning_rate=0.05).run(
                QAOASimulator(problem), gammas[i], betas[i], max_iters=40
            )
            assert abs(result.expectations[i] - serial.expectation) < TOL
            np.testing.assert_allclose(
                result.gammas[i], serial.gammas, atol=TOL, rtol=0.0
            )
            np.testing.assert_allclose(
                result.betas[i], serial.betas, atol=TOL, rtol=0.0
            )
            np.testing.assert_allclose(
                result.histories[i], serial.history, atol=TOL, rtol=0.0
            )

    def test_gradient_descent_trace_matches_serial(self):
        problems = _problems(6, 3, seed=21)
        batched_sim = BatchedQAOASimulator(problems)
        gammas, betas = _params(np.random.default_rng(2), 3, 1)
        result = BatchedGradientDescentOptimizer(learning_rate=0.02).run(
            batched_sim, gammas, betas, max_iters=30
        )
        for i, problem in enumerate(problems):
            serial = GradientDescentOptimizer(learning_rate=0.02).run(
                QAOASimulator(problem), gammas[i], betas[i], max_iters=30
            )
            assert abs(result.expectations[i] - serial.expectation) < TOL
            np.testing.assert_allclose(
                result.histories[i], serial.history, atol=TOL, rtol=0.0
            )

    def test_tolerance_stops_rows_independently(self):
        problems = _problems(6, 4, seed=8)
        batched_sim = BatchedQAOASimulator(problems)
        gammas, betas = _params(np.random.default_rng(9), 4, 1)
        result = BatchedAdamOptimizer(learning_rate=0.05).run(
            batched_sim, gammas, betas, max_iters=200, tol=1e-6
        )
        for i, problem in enumerate(problems):
            serial = AdamOptimizer(learning_rate=0.05).run(
                QAOASimulator(problem),
                gammas[i],
                betas[i],
                max_iters=200,
                tol=1e-6,
            )
            # Identical stopping decision and identical trace per row.
            assert result.iterations[i] == len(serial.history)
            assert abs(result.expectations[i] - serial.expectation) < TOL
            np.testing.assert_allclose(
                result.histories[i], serial.history, atol=TOL, rtol=0.0
            )

    def test_bad_learning_rate_rejected(self):
        with pytest.raises(OptimizationError):
            BatchedAdamOptimizer(learning_rate=0.0)
        with pytest.raises(OptimizationError):
            BatchedGradientDescentOptimizer(learning_rate=-1.0)

    def test_bad_parameter_rank_rejected(self):
        batched_sim = BatchedQAOASimulator(_problems(5, 2))
        with pytest.raises(OptimizationError):
            BatchedAdamOptimizer().run(
                batched_sim, np.zeros(2), np.zeros(2)
            )
