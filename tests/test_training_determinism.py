"""Training determinism across the cached / reference / CSR paths.

The contract of the batch-cache overhaul: with the same seed, the
default cached path produces **bit-identical** per-epoch losses,
validation losses, and final weights to the from-scratch
``GraphBatch.from_graphs`` loop — including under ``batch_invariant()``
and against the seed ``np.add.at`` kernels (``reference_scatter``).
The opt-in CSR path is equivalence-tested within float tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import QAOADataset, QAOARecord
from repro.gnn.batching import GraphBatch
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_connected_graph
from repro.nn.segment import reference_scatter
from repro.nn.tensor import batch_invariant
from repro.pipeline.training import Trainer, TrainingConfig


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(31)
    records = []
    for _ in range(20):
        graph = random_connected_graph(
            int(rng.integers(4, 9)), rng=int(rng.integers(0, 2**31))
        )
        records.append(
            QAOARecord(
                graph=graph,
                p=1,
                gammas=(float(rng.uniform(0, 3)),),
                betas=(float(rng.uniform(0, 1.5)),),
                expectation=1.0,
                optimal_value=2.0,
                approximation_ratio=0.8,
            )
        )
    return QAOADataset(records[:16]), QAOADataset(records[16:])


def _fit(dataset, arch="gin", reference=False, validation=None, **overrides):
    train, val = dataset
    if validation is None:
        validation = val
    model = QAOAParameterPredictor(arch=arch, p=1, rng=5)
    config = TrainingConfig(epochs=3, batch_size=8, seed=13, **overrides)
    trainer = Trainer(model, config)
    if reference:
        with reference_scatter():
            history = trainer.fit(train, validation=validation)
    else:
        history = trainer.fit(train, validation=validation)
    weights = np.concatenate([p.data.ravel() for p in model.parameters()])
    return history, weights


@pytest.mark.parametrize("arch", ["gin", "gcn", "gat", "sage", "mean"])
def test_cached_path_bitwise_identical(dataset, arch):
    cached_history, cached_weights = _fit(dataset, arch=arch)
    ref_history, ref_weights = _fit(
        dataset, arch=arch, reference=True, compile_batches=False
    )
    assert cached_history.losses == ref_history.losses
    assert cached_history.validation_losses == ref_history.validation_losses
    assert np.array_equal(cached_weights, ref_weights)


def test_bitwise_identical_under_batch_invariant(dataset):
    with batch_invariant():
        cached_history, cached_weights = _fit(dataset)
        ref_history, ref_weights = _fit(
            dataset, reference=True, compile_batches=False
        )
    assert cached_history.losses == ref_history.losses
    assert np.array_equal(cached_weights, ref_weights)


def test_csr_kernels_equivalent(dataset):
    csr_history, csr_weights = _fit(dataset, csr_kernels=True)
    ref_history, ref_weights = _fit(
        dataset, reference=True, compile_batches=False
    )
    np.testing.assert_allclose(
        csr_history.losses, ref_history.losses, rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        csr_history.validation_losses,
        ref_history.validation_losses,
        rtol=1e-9,
        atol=1e-12,
    )
    np.testing.assert_allclose(
        csr_weights, ref_weights, rtol=1e-6, atol=1e-8
    )


def test_csr_without_batch_cache_equivalent(dataset):
    csr_history, _ = _fit(dataset, compile_batches=False, csr_kernels=True)
    ref_history, _ = _fit(
        dataset, reference=True, compile_batches=False
    )
    np.testing.assert_allclose(
        csr_history.losses, ref_history.losses, rtol=1e-9, atol=1e-12
    )


def test_validation_batch_built_once(dataset, monkeypatch):
    """The hoist satellite: one ``from_graphs`` for the whole fit."""
    calls = []
    original = GraphBatch.from_graphs.__func__

    def counting(cls, *args, **kwargs):
        calls.append(1)
        return original(cls, *args, **kwargs)

    monkeypatch.setattr(
        GraphBatch, "from_graphs", classmethod(counting)
    )
    _fit(dataset)
    assert sum(calls) == 1  # validation only; training uses the cache


def test_epoch_times_and_throughput_recorded(dataset):
    history, _ = _fit(dataset)
    assert len(history.epoch_times) == 3
    assert all(t >= 0 for t in history.epoch_times)
    assert history.epochs_per_second > 0


def test_profiler_off_by_default(dataset):
    history, _ = _fit(dataset)
    assert history.profile is None


def test_profiler_report_in_history(dataset):
    history, _ = _fit(dataset, profile=True)
    report = history.profile
    assert report is not None and report["schema"] == 1
    phases = report["phases"]
    for name in ("compile", "batch_assembly", "forward", "backward",
                 "optimizer", "evaluate"):
        assert name in phases, sorted(phases)
        assert phases[name]["calls"] > 0
    assert report["accounted_s"] <= report["total_s"] + 1e-6


def test_evaluate_loss_accepts_prebuilt_batch(dataset):
    train, val = dataset
    model = QAOAParameterPredictor(arch="gin", p=1, rng=5)
    trainer = Trainer(model, TrainingConfig(epochs=1, seed=13))
    from repro.nn.tensor import Tensor

    batch = GraphBatch.from_graphs(
        val.graphs(), feature_kind="degree_onehot", max_nodes=model.in_dim
    )
    targets = Tensor(val.targets())
    rebuilt = trainer.evaluate_loss(val)
    prebuilt = trainer.evaluate_loss(val, batch=batch, targets=targets)
    assert rebuilt == prebuilt
