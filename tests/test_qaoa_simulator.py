"""Tests for the fast QAOA simulator and its exact gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.graphs.graph import Graph
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.ansatz import build_qaoa_circuit
from repro.qaoa.simulator import QAOASimulator


class TestForward:
    def test_accepts_graph_or_problem(self, triangle):
        a = QAOASimulator(triangle)
        b = QAOASimulator(MaxCutProblem(triangle))
        assert a.expectation([0.3], [0.2]) == pytest.approx(
            b.expectation([0.3], [0.2])
        )

    def test_zero_angles_give_half_edges(self, petersen_like):
        # |+> state: every edge cut with probability 1/2
        simulator = QAOASimulator(petersen_like)
        assert simulator.expectation([0.0], [0.0]) == pytest.approx(
            petersen_like.num_edges / 2.0
        )

    def test_state_normalized(self, petersen_like):
        state = QAOASimulator(petersen_like).state([0.4, 0.1], [0.3, 0.2])
        assert state.norm() == pytest.approx(1.0)

    def test_matches_gate_level_circuit(self, petersen_like):
        gammas, betas = np.array([0.5, 0.9]), np.array([0.35, 0.15])
        fast = QAOASimulator(petersen_like).state(gammas, betas)
        slow = build_qaoa_circuit(petersen_like, gammas, betas).run()
        assert abs(np.vdot(fast.data, slow.data)) == pytest.approx(1.0)

    def test_matches_gate_level_weighted(self, weighted_triangle):
        gammas, betas = np.array([0.7]), np.array([0.4])
        fast = QAOASimulator(weighted_triangle).state(gammas, betas)
        slow = build_qaoa_circuit(weighted_triangle, gammas, betas).run()
        assert abs(np.vdot(fast.data, slow.data)) == pytest.approx(1.0)

    def test_expectation_below_optimum(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        optimum = MaxCutProblem(petersen_like).max_cut_value()
        for gamma in (0.2, 0.6, 1.1):
            assert simulator.expectation([gamma], [0.3]) <= optimum + 1e-9

    def test_gamma_periodicity_unweighted(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        e1 = simulator.expectation([0.4], [0.3])
        e2 = simulator.expectation([0.4 + 2 * np.pi], [0.3])
        assert e1 == pytest.approx(e2)

    def test_beta_periodicity(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        e1 = simulator.expectation([0.4], [0.3])
        e2 = simulator.expectation([0.4], [0.3 + np.pi])
        assert e1 == pytest.approx(e2)

    def test_param_validation(self, triangle):
        simulator = QAOASimulator(triangle)
        with pytest.raises(CircuitError):
            simulator.expectation([0.1, 0.2], [0.3])
        with pytest.raises(CircuitError):
            simulator.expectation([], [])

    def test_approximation_ratio_in_unit_interval(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        ratio = simulator.approximation_ratio([0.4], [0.3])
        assert 0.0 <= ratio <= 1.0

    def test_sample_cut_value_achievable(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        bitstring, value = simulator.sample_cut([0.4], [0.3], shots=64, rng=0)
        from repro.maxcut.problem import cut_value

        assert cut_value(petersen_like, bitstring) == value


class TestGradients:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_adjoint_matches_finite_difference(self, petersen_like, p):
        simulator = QAOASimulator(petersen_like)
        rng = np.random.default_rng(p)
        gammas = rng.uniform(0, 2, size=p)
        betas = rng.uniform(0, 1, size=p)
        _, grad_gamma, grad_beta = simulator.expectation_and_gradient(
            gammas, betas
        )
        fd_gamma, fd_beta = simulator.gradient_finite_difference(gammas, betas)
        assert np.allclose(grad_gamma, fd_gamma, atol=1e-6)
        assert np.allclose(grad_beta, fd_beta, atol=1e-6)

    def test_gradient_zero_at_zero_angles(self, petersen_like):
        # d<C>/dgamma at (0, 0): state is |+>, C expectation stationary in
        # beta (no phase structure to rotate), gradient wrt beta must be 0.
        simulator = QAOASimulator(petersen_like)
        _, _, grad_beta = simulator.expectation_and_gradient([0.0], [0.0])
        assert np.allclose(grad_beta, 0.0, atol=1e-12)

    def test_energy_consistency(self, petersen_like):
        simulator = QAOASimulator(petersen_like)
        gammas, betas = np.array([0.4, 0.8]), np.array([0.25, 0.1])
        energy, _, _ = simulator.expectation_and_gradient(gammas, betas)
        assert energy == pytest.approx(simulator.expectation(gammas, betas))

    @given(st.integers(3, 8), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_gradients_on_random_graphs(self, n, seed):
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        if graph.num_edges == 0:
            return
        simulator = QAOASimulator(graph)
        rng = np.random.default_rng(seed)
        gammas = rng.uniform(0, 2, size=2)
        betas = rng.uniform(0, 1, size=2)
        _, grad_gamma, grad_beta = simulator.expectation_and_gradient(
            gammas, betas
        )
        fd_gamma, fd_beta = simulator.gradient_finite_difference(gammas, betas)
        assert np.allclose(grad_gamma, fd_gamma, atol=1e-5)
        assert np.allclose(grad_beta, fd_beta, atol=1e-5)

    def test_weighted_graph_gradients(self, weighted_triangle):
        simulator = QAOASimulator(weighted_triangle)
        gammas, betas = np.array([0.3]), np.array([0.6])
        _, grad_gamma, grad_beta = simulator.expectation_and_gradient(
            gammas, betas
        )
        fd_gamma, fd_beta = simulator.gradient_finite_difference(gammas, betas)
        assert np.allclose(grad_gamma, fd_gamma, atol=1e-6)
        assert np.allclose(grad_beta, fd_beta, atol=1e-6)
