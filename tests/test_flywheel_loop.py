"""End-to-end tests for the flywheel cycle and hot-swap watcher."""

import pytest

from repro.data.dataset import QAOADataset
from repro.data.generation import GenerationConfig, sample_graphs
from repro.exceptions import FlywheelError
from repro.flywheel import (
    FlywheelConfig,
    ModelWatcher,
    PromotionConfig,
    RelabelConfig,
    ReplayLog,
    RetrainConfig,
    SelectionConfig,
    VersionStore,
    run_cycle,
    run_cycles,
)
from repro.runtime import FaultInjector
from repro.serving import SOURCE_MODEL, PredictionService, ServingConfig


FAST = FlywheelConfig.seeded(
    3,
    eval_size=3,
    selection=SelectionConfig(max_candidates=8),
    relabel=RelabelConfig(optimizer_iters=30, checkpoint_every=3),
    retrain=RetrainConfig(epochs=4, hidden_dim=16),
    promotion=PromotionConfig(eval_iters=10),
)


def drive_traffic(tmp_path, seed=7, requests=14):
    """A fallback-only service answering deterministic scripted traffic."""
    replay = ReplayLog(tmp_path / "replay", seed=seed)
    service = PredictionService(
        config=ServingConfig(default_p=1, batching=False), replay_log=replay
    )
    import numpy as np

    graphs = sample_graphs(
        GenerationConfig(
            num_graphs=requests // 2, min_nodes=4, max_nodes=7, seed=seed
        ),
        np.random.default_rng(seed),
    )
    for index in range(requests):
        service.predict(graphs[index % len(graphs)])
    return replay, service, graphs


class TestCycle:
    def test_cold_start_cycle_promotes(self, tmp_path):
        replay, service, _ = drive_traffic(tmp_path)
        report = run_cycle(
            replay, tmp_path / "ds.json", tmp_path / "store", FAST
        )
        service.close()
        assert report["promoted"] is True
        assert report["version"] == 1
        assert report["labeled"] > 0
        store = VersionStore(tmp_path / "store")
        assert store.current()["fingerprint"] == report["fingerprint"]
        # The dataset grew and every record is depth-consistent.
        dataset = QAOADataset.load(tmp_path / "ds.json")
        assert len(dataset) == report["dataset_size"]
        assert dataset.depth() == 1
        # A cycle report landed on disk.
        assert (tmp_path / "store" / "cycles" / "cycle_00001.json").is_file()

    def test_same_seed_reproduces_same_fingerprint(self, tmp_path):
        """The acceptance criterion: identical log + seed => identical
        promoted checkpoint fingerprint, on fresh state."""
        replay, service, _ = drive_traffic(tmp_path)
        service.close()
        r1 = run_cycle(replay, tmp_path / "ds1.json", tmp_path / "s1", FAST)
        r2 = run_cycle(replay, tmp_path / "ds2.json", tmp_path / "s2", FAST)
        assert r1["promoted"] and r2["promoted"]
        assert r1["fingerprint"] == r2["fingerprint"]

    def test_second_cycle_over_same_log_is_noop(self, tmp_path):
        replay, service, _ = drive_traffic(tmp_path)
        service.close()
        reports = run_cycles(
            2, replay, tmp_path / "ds.json", tmp_path / "store", FAST
        )
        assert reports[0]["promoted"] is True
        assert reports[1]["promoted"] is False
        assert "no labelable replay classes" in reports[1]["reason"]
        assert VersionStore(tmp_path / "store").versions() == [1]

    def test_cycle_with_injected_faults_same_fingerprint(self, tmp_path):
        import dataclasses

        replay, service, _ = drive_traffic(tmp_path)
        service.close()
        clean = run_cycle(replay, tmp_path / "ds1.json", tmp_path / "s1", FAST)
        faulty_config = dataclasses.replace(
            FAST,
            relabel=dataclasses.replace(FAST.relabel, retries=2),
        )
        faulty = run_cycle(
            replay,
            tmp_path / "ds2.json",
            tmp_path / "s2",
            faulty_config,
            fault_injector=FaultInjector(failure_rate=0.9),
        )
        assert faulty["fingerprint"] == clean["fingerprint"]

    def test_killed_cycle_resumes_to_same_fingerprint(self, tmp_path):
        replay, service, _ = drive_traffic(tmp_path)
        service.close()
        reference = run_cycle(
            replay, tmp_path / "ds1.json", tmp_path / "s1", FAST
        )
        # Kill mid-labeling: a later bucket fails past its (zero) retry
        # budget, after earlier shards checkpointed.
        with pytest.raises(FlywheelError):
            run_cycle(
                replay,
                tmp_path / "ds2.json",
                tmp_path / "s2",
                FAST,
                fault_injector=FaultInjector(fail_tasks={3: 99}),
            )
        resumed = run_cycle(replay, tmp_path / "ds2.json", tmp_path / "s2", FAST)
        assert resumed["promoted"] is True
        assert resumed["fingerprint"] == reference["fingerprint"]

    def test_rejected_candidate_leaves_pointer_untouched(
        self, tmp_path, monkeypatch
    ):
        import repro.flywheel.loop as loop
        from repro.flywheel.promotion import PromotionDecision

        replay, service, _ = drive_traffic(tmp_path)
        service.close()
        first = run_cycle(replay, tmp_path / "ds.json", tmp_path / "s", FAST)
        assert first["promoted"]
        store = VersionStore(tmp_path / "s")
        pointer_before = store.current()

        # New traffic, but force the gate to reject.
        replay2, service2, _ = drive_traffic(
            tmp_path / "more", seed=21, requests=8
        )
        service2.close()
        monkeypatch.setattr(
            loop,
            "gate_candidate",
            lambda *a, **k: PromotionDecision(
                promote=False,
                candidate_score=0.1,
                incumbent_score=0.9,
                margin=0.0,
                candidate_fingerprint="cand",
                incumbent_fingerprint="inc",
                eval_graphs=1,
                reason="forced rejection",
            ),
        )
        report = run_cycle(replay2, tmp_path / "ds.json", tmp_path / "s", FAST)
        assert report["promoted"] is False
        assert store.current() == pointer_before
        assert store.versions() == [1]

    def test_empty_log_is_a_noop(self, tmp_path):
        report = run_cycle(
            ReplayLog(tmp_path / "replay"),
            tmp_path / "ds.json",
            tmp_path / "store",
            FAST,
        )
        assert report["promoted"] is False
        assert report["replay_records"] == 0

    def test_run_cycles_validation(self, tmp_path):
        with pytest.raises(FlywheelError):
            run_cycles(
                0, tmp_path / "r", tmp_path / "d.json", tmp_path / "s", FAST
            )


class TestHotSwap:
    def test_live_service_observes_promotion_without_restart(self, tmp_path):
        replay, service, graphs = drive_traffic(tmp_path)
        # Before the cycle: fallback-only service.
        before = service.predict(graphs[0])
        assert before.source != SOURCE_MODEL

        run_cycle(replay, tmp_path / "ds.json", tmp_path / "store", FAST)
        watcher = ModelWatcher(service, str(tmp_path / "store"))
        summary = watcher.check_once()
        assert summary is not None
        assert summary["version"] == 1

        after = service.predict(graphs[0])
        assert after.source == SOURCE_MODEL
        snapshot = service.metrics_snapshot()["flywheel"]
        assert snapshot["hot_swaps"] == 1
        assert snapshot["promotion_version"] == 1
        # Second poll: nothing new, no second swap.
        assert watcher.check_once() is None
        assert watcher.swaps == 1
        service.close()

    def test_watcher_survives_missing_and_torn_store(self, tmp_path):
        service = PredictionService(
            config=ServingConfig(default_p=1, batching=False)
        )
        watcher = ModelWatcher(service, str(tmp_path / "store"))
        assert watcher.check_once() is None  # no pointer yet
        store = VersionStore(tmp_path / "store")
        store.pointer_path.parent.mkdir(parents=True, exist_ok=True)
        store.pointer_path.write_text("{not json")
        assert watcher.check_once() is None
        assert watcher.check_errors == 1
        service.close()

    def test_watcher_background_thread_swaps(self, tmp_path):
        import time

        replay, service, graphs = drive_traffic(tmp_path)
        run_cycle(replay, tmp_path / "ds.json", tmp_path / "store", FAST)
        with ModelWatcher(
            service, str(tmp_path / "store"), poll_interval_s=0.05
        ) as watcher:
            watcher.start()
            deadline = time.monotonic() + 10.0
            while watcher.swaps == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
        assert watcher.swaps == 1
        assert service.predict(graphs[0]).source == SOURCE_MODEL
        service.close()
