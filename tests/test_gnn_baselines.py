"""Tests for structure-free prediction baselines."""

import numpy as np
import pytest

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError, ModelError
from repro.gnn.baselines import (
    BucketMedianPredictor,
    DegreeStatsPredictor,
    MeanPredictor,
    graph_statistics,
)
from repro.graphs.graph import Graph

from tests.test_data_dataset import make_record


class TestGraphStatistics:
    def test_vector_shape(self, petersen_like):
        stats = graph_statistics(petersen_like)
        assert stats.shape == (7,)

    def test_values(self, triangle):
        stats = graph_statistics(triangle)
        assert stats[0] == 3  # nodes
        assert stats[1] == 3  # edges
        assert stats[2] == 2.0  # mean degree
        assert stats[3] == 0.0  # degree std (regular)
        assert stats[5] == 1.0  # density (complete)

    def test_weighted_total(self, weighted_triangle):
        assert graph_statistics(weighted_triangle)[6] == 6.0


class TestMeanPredictor:
    def test_predicts_training_mean(self):
        dataset = QAOADataset([make_record(0.8), make_record(0.9)])
        baseline = MeanPredictor().fit(dataset)
        gammas, betas = baseline.predict_angles(Graph.cycle(5))
        assert gammas[0] == pytest.approx(0.5)
        assert betas[0] == pytest.approx(0.25)

    def test_same_for_all_graphs(self):
        dataset = QAOADataset([make_record()])
        baseline = MeanPredictor().fit(dataset)
        a = baseline.predict_angles(Graph.cycle(4))
        b = baseline.predict_angles(Graph.complete(6))
        np.testing.assert_allclose(a[0], b[0])

    def test_requires_fit(self):
        with pytest.raises(ModelError):
            MeanPredictor().predict_angles(Graph.cycle(4))

    def test_empty_dataset(self):
        with pytest.raises(DatasetError):
            MeanPredictor().fit(QAOADataset())

    def test_as_initialization(self):
        dataset = QAOADataset([make_record()])
        strategy = MeanPredictor().fit(dataset).as_initialization()
        gammas, betas = strategy.initial_parameters(Graph.cycle(4), 1)
        assert gammas[0] == pytest.approx(0.5)
        with pytest.raises(ModelError):
            strategy.initial_parameters(Graph.cycle(4), 2)


class TestBucketMedianPredictor:
    def test_exact_bucket_lookup(self):
        from repro.data.dataset import QAOARecord

        records = []
        for gamma in (0.4, 0.5, 0.6):
            graph = Graph.cycle(6)
            records.append(
                QAOARecord(
                    graph=graph, p=1, gammas=(gamma,), betas=(0.3,),
                    expectation=4.0, optimal_value=6.0,
                    approximation_ratio=0.67,
                )
            )
        baseline = BucketMedianPredictor().fit(QAOADataset(records))
        gammas, betas = baseline.predict_angles(Graph.cycle(6))
        assert gammas[0] == pytest.approx(0.5)  # median
        assert betas[0] == pytest.approx(0.3)

    def test_nearest_bucket_fallback(self):
        dataset = QAOADataset([make_record(num_nodes=4)])
        baseline = BucketMedianPredictor().fit(dataset)
        # unseen (8, 7) bucket falls back to the only bucket present
        gammas, _ = baseline.predict_angles(Graph.complete(8))
        assert gammas[0] == pytest.approx(0.5)

    def test_requires_fit(self):
        with pytest.raises(ModelError):
            BucketMedianPredictor().predict_angles(Graph.cycle(4))

    def test_empty_dataset(self):
        with pytest.raises(DatasetError):
            BucketMedianPredictor().fit(QAOADataset())

    def test_as_initialization_depth_check(self):
        dataset = QAOADataset([make_record()])
        strategy = BucketMedianPredictor().fit(dataset).as_initialization()
        with pytest.raises(ModelError):
            strategy.initial_parameters(Graph.cycle(4), 3)


class TestDegreeStatsPredictor:
    def test_learns_degree_dependence(self):
        # targets depend on degree: cycle records get (0.4, 0.2),
        # complete-graph records get (1.2, 0.6) — the stats MLP must
        # separate them
        records = []
        for _ in range(8):
            cycle = make_record(num_nodes=6)
            records.append(
                cycle.with_label([0.4], [0.2], cycle.expectation,
                                 cycle.approximation_ratio, "optimized")
            )
        from repro.data.dataset import QAOARecord

        for _ in range(8):
            graph = Graph.complete(6)
            records.append(
                QAOARecord(
                    graph=graph,
                    p=1,
                    gammas=(1.2,),
                    betas=(0.6,),
                    expectation=5.0,
                    optimal_value=9.0,
                    approximation_ratio=0.55,
                )
            )
        dataset = QAOADataset(records)
        baseline = DegreeStatsPredictor(epochs=400, rng=0).fit(dataset)
        cycle_g, _ = baseline.predict_angles(Graph.cycle(6))
        complete_g, _ = baseline.predict_angles(Graph.complete(6))
        assert abs(cycle_g[0] - 0.4) < 0.25
        assert abs(complete_g[0] - 1.2) < 0.25

    def test_requires_fit(self):
        with pytest.raises(ModelError):
            DegreeStatsPredictor().predict_angles(Graph.cycle(4))

    def test_deterministic_after_fit(self, tiny_dataset):
        baseline = DegreeStatsPredictor(epochs=20, rng=1).fit(tiny_dataset)
        graph = tiny_dataset[0].graph
        a = baseline.predict_angles(graph)
        b = baseline.predict_angles(graph)
        np.testing.assert_allclose(a[0], b[0])

    def test_as_initialization(self, tiny_dataset):
        strategy = (
            DegreeStatsPredictor(epochs=10, rng=0)
            .fit(tiny_dataset)
            .as_initialization()
        )
        gammas, betas = strategy.initial_parameters(
            tiny_dataset[0].graph, 1
        )
        assert gammas.shape == (1,)
