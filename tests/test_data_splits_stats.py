"""Tests for splitting and distribution statistics."""

import numpy as np
import pytest

from repro.data.dataset import QAOADataset
from repro.data.splits import kfold_indices, random_split, stratified_split
from repro.data.stats import (
    IntervalSummary,
    ar_by_degree,
    ar_by_size,
    degree_frequency,
    low_quality_fraction,
    size_frequency,
)
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

from tests.test_data_dataset import make_record


@pytest.fixture
def sized_dataset():
    records = []
    for num_nodes in (4, 5, 6):
        for ratio in (0.5, 0.7, 0.9):
            records.append(make_record(ratio=ratio, num_nodes=num_nodes))
    return QAOADataset(records)


class TestSplits:
    def test_random_split_sizes(self, sized_dataset):
        train, test = random_split(sized_dataset, 3, rng=0)
        assert len(train) == 6
        assert len(test) == 3

    def test_random_split_partition(self, sized_dataset):
        train, test = random_split(sized_dataset, 3, rng=0)
        assert len(train) + len(test) == len(sized_dataset)

    def test_random_split_invalid_size(self, sized_dataset):
        with pytest.raises(DatasetError):
            random_split(sized_dataset, 0)
        with pytest.raises(DatasetError):
            random_split(sized_dataset, 9)

    def test_stratified_covers_strata(self, sized_dataset):
        _, test = stratified_split(sized_dataset, 3, rng=0)
        # one per (size, degree) stratum: sizes 4, 5, 6 all present
        assert {r.graph.num_nodes for r in test} == {4, 5, 6}

    def test_stratified_sizes(self, sized_dataset):
        train, test = stratified_split(sized_dataset, 4, rng=1)
        assert len(test) == 4
        assert len(train) == 5

    def test_stratified_deterministic(self, sized_dataset):
        a = stratified_split(sized_dataset, 3, rng=7)[1]
        b = stratified_split(sized_dataset, 3, rng=7)[1]
        assert [r.graph.name for r in a] == [r.graph.name for r in b]

    def test_kfold_partition(self):
        folds = kfold_indices(10, 3, rng=0)
        combined = np.concatenate(folds)
        assert sorted(combined) == list(range(10))

    def test_kfold_invalid(self):
        with pytest.raises(DatasetError):
            kfold_indices(3, 5)
        with pytest.raises(DatasetError):
            kfold_indices(10, 1)


class TestFrequencies:
    def test_degree_frequency(self, triangle, square):
        freq = degree_frequency([triangle, square])
        assert freq == {2: 7}

    def test_size_frequency(self, triangle, square):
        freq = size_frequency([triangle, square, square])
        assert freq == {3: 1, 4: 2}

    def test_mixed_degrees(self):
        freq = degree_frequency([Graph.star(4)])
        assert freq == {1: 3, 3: 1}


class TestIntervals:
    def test_interval_summary_values(self):
        summary = IntervalSummary.from_values(5, np.array([0.2, 0.4, 0.6, 0.8]))
        assert summary.key == 5
        assert summary.count == 4
        assert summary.minimum == 0.2
        assert summary.maximum == 0.8
        assert summary.mean == pytest.approx(0.5)
        assert summary.median == pytest.approx(0.5)

    def test_ar_by_size_buckets(self, sized_dataset):
        summaries = ar_by_size(sized_dataset)
        assert [s.key for s in summaries] == [4, 5, 6]
        for summary in summaries:
            assert summary.count == 3
            assert summary.minimum == pytest.approx(0.5)
            assert summary.maximum == pytest.approx(0.9)

    def test_ar_by_degree_regular(self, sized_dataset):
        summaries = ar_by_degree(sized_dataset)
        assert [s.key for s in summaries] == [2]  # all cycles are 2-regular
        assert summaries[0].count == 9

    def test_ar_by_degree_irregular_uses_max(self):
        from repro.data.dataset import QAOARecord

        star = Graph.star(5)
        record = QAOARecord(
            graph=star,
            p=1,
            gammas=(0.1,),
            betas=(0.1,),
            expectation=2.0,
            optimal_value=4.0,
            approximation_ratio=0.5,
        )
        summaries = ar_by_degree(QAOADataset([record]))
        assert summaries[0].key == 4

    def test_low_quality_fraction(self, sized_dataset):
        # 3 of 9 records have AR 0.5 < 0.7
        assert low_quality_fraction(sized_dataset, 0.7) == pytest.approx(1 / 3)

    def test_low_quality_empty(self):
        assert low_quality_fraction(QAOADataset()) == 0.0
