"""Batched warm-start evaluation engine vs the serial engine.

The batched engine must run the *same experiment* as the serial one —
identical seed derivation, hence identical initial angles per arm — and
agree on every per-graph ratio within ``1e-10`` (the numerical contract
of :mod:`repro.qaoa.batched`).
"""

import numpy as np
import pytest

from repro.graphs.generators import random_connected_graph
from repro.maxcut.cache import ProblemCache
from repro.pipeline.evaluation import (
    EvaluationResult,
    WarmStartComparison,
    WarmStartEvaluator,
    _size_buckets,
)
from repro.profiling import EvaluationProfiler
from repro.qaoa.initialization import ConstantInitialization
from repro.runtime import ParallelExecutor

TOL = 1e-10


@pytest.fixture(scope="module")
def mixed_graphs():
    # Sizes 5..8, two graphs each, interleaved so bucketing has to
    # scatter results back to input order.
    graphs = []
    for i in range(8):
        size = 5 + (i % 4)
        graphs.append(
            random_connected_graph(size, rng=31 + i, name=f"m{i}")
        )
    return graphs


def _evaluate(graphs, batched, seed=123, **kwargs):
    evaluator = WarmStartEvaluator(
        p=1, optimizer_iters=12, rng=seed, batched=batched, **kwargs
    )
    return evaluator.evaluate_strategy(
        graphs, ConstantInitialization(0.6, 0.4), "const"
    )


def _assert_engines_agree(serial, batched):
    assert len(serial.comparisons) == len(batched.comparisons)
    for a, b in zip(serial.comparisons, batched.comparisons):
        assert a.graph_name == b.graph_name
        assert abs(a.random_ratio - b.random_ratio) < TOL
        assert abs(a.strategy_ratio - b.strategy_ratio) < TOL
        assert abs(a.random_initial_ratio - b.random_initial_ratio) < TOL
        assert abs(a.strategy_initial_ratio - b.strategy_initial_ratio) < TOL


class TestSizeBuckets:
    def test_groups_by_node_count(self):
        graphs = [
            random_connected_graph(n, rng=n, name=f"g{i}")
            for i, n in enumerate([5, 6, 5, 7, 6, 5])
        ]
        buckets = _size_buckets(graphs, max_bucket=64)
        # One bucket per distinct size, preserving input order inside.
        assert sorted(map(tuple, buckets)) == [(0, 2, 5), (1, 4), (3,)]

    def test_bucket_cap_counts_rows_not_graphs(self):
        graphs = [
            random_connected_graph(5, rng=i, name=f"g{i}") for i in range(5)
        ]
        # max_bucket=4 rows -> 2 graphs per bucket.
        buckets = _size_buckets(graphs, max_bucket=4)
        assert [len(b) for b in buckets] == [2, 2, 1]

    def test_minimum_one_graph_per_bucket(self):
        graphs = [
            random_connected_graph(5, rng=i, name=f"g{i}") for i in range(2)
        ]
        assert [len(b) for b in _size_buckets(graphs, 2)] == [1, 1]


class TestBatchedEvaluator:
    def test_matches_serial_on_mixed_sizes(self, mixed_graphs):
        serial = _evaluate(mixed_graphs, batched=False)
        batched = _evaluate(mixed_graphs, batched=True)
        _assert_engines_agree(serial, batched)

    def test_bucket_splitting_does_not_change_results(self, mixed_graphs):
        # max_bucket=2 degenerates to one graph per stack (K=2 rows);
        # results must not depend on the split.
        whole = _evaluate(mixed_graphs, batched=True, max_bucket=64)
        split = _evaluate(mixed_graphs, batched=True, max_bucket=2)
        _assert_engines_agree(whole, split)

    def test_single_graph_test_set(self):
        graph = [random_connected_graph(6, rng=1, name="solo")]
        serial = _evaluate(graph, batched=False)
        batched = _evaluate(graph, batched=True)
        _assert_engines_agree(serial, batched)

    def test_thread_backend_matches(self, mixed_graphs):
        serial = _evaluate(mixed_graphs, batched=True)
        threaded = _evaluate(
            mixed_graphs,
            batched=True,
            executor=ParallelExecutor(backend="thread", max_workers=2),
        )
        _assert_engines_agree(serial, threaded)

    def test_max_bucket_validation(self):
        with pytest.raises(ValueError, match="max_bucket"):
            WarmStartEvaluator(batched=True, max_bucket=1)

    def test_problem_cache_shared_across_sweeps(self, mixed_graphs):
        # Within a sweep both arms share one simulator (a single cache
        # lookup per graph); a second sweep over the same graphs — the
        # multi-architecture comparison — must hit for every graph.
        cache = ProblemCache()
        _evaluate(mixed_graphs, batched=False, problem_cache=cache)
        assert cache.misses == len(mixed_graphs)
        assert cache.hits == 0
        _evaluate(mixed_graphs, batched=False, problem_cache=cache)
        assert cache.misses == len(mixed_graphs)
        assert cache.hits == len(mixed_graphs)

    def test_problem_cache_shared_between_engines(self, mixed_graphs):
        # The batched engine resolves problems through the same cache.
        cache = ProblemCache()
        _evaluate(mixed_graphs, batched=False, problem_cache=cache)
        _evaluate(mixed_graphs, batched=True, problem_cache=cache)
        assert cache.misses == len(mixed_graphs)
        assert cache.hits >= len(mixed_graphs)

    def test_profiler_records_phases(self, mixed_graphs):
        profiler = EvaluationProfiler()
        _evaluate(mixed_graphs, batched=True, profiler=profiler)
        phases = profiler.report()["phases"]
        assert {"prepare", "optimize", "aggregate"} <= set(phases)
        assert "evaluation profile" in profiler.format_report()


class TestEvaluationResultStatistics:
    def _result(self, improvements):
        result = EvaluationResult(strategy_name="x")
        for i, delta in enumerate(improvements):
            result.comparisons.append(
                WarmStartComparison(
                    graph_name=f"g{i}",
                    num_nodes=5,
                    degree=2,
                    random_ratio=0.7,
                    strategy_ratio=0.7 + delta / 100.0,
                    random_initial_ratio=0.5,
                    strategy_initial_ratio=0.5,
                )
            )
        return result

    def test_sem_matches_definition(self):
        values = [10.0, -10.0, 10.0, 6.0]
        result = self._result(values)
        expected = np.std(values, ddof=1) / np.sqrt(len(values))
        assert result.sem_improvement == pytest.approx(expected)

    def test_sem_zero_below_two_samples(self):
        assert self._result([]).sem_improvement == 0.0
        assert self._result([5.0]).sem_improvement == 0.0

    def test_empty_summary_is_all_zeros(self):
        summary = self._result([]).summary()
        assert summary["count"] == 0
        for key, value in summary.items():
            if key not in ("strategy", "count"):
                assert value == 0.0, (key, value)

    def test_summary_includes_sem(self):
        summary = self._result([1.0, 3.0]).summary()
        assert summary["sem_improvement"] == pytest.approx(
            np.std([1.0, 3.0], ddof=1) / np.sqrt(2)
        )
