"""Tests for node feature construction."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.features import (
    PAPER_INPUT_DIM,
    build_features,
    degree_onehot_features,
    degree_plus_onehot_features,
    feature_dim,
    onehot_id_features,
    structural_features,
)
from repro.graphs.graph import Graph


class TestOnehot:
    def test_shape_padded(self, triangle):
        feats = onehot_id_features(triangle)
        assert feats.shape == (3, PAPER_INPUT_DIM)

    def test_identity_block(self, triangle):
        feats = onehot_id_features(triangle, max_nodes=5)
        assert np.array_equal(feats[:, :3], np.eye(3))
        assert feats[:, 3:].sum() == 0

    def test_too_many_nodes(self):
        with pytest.raises(GraphError, match="capped"):
            onehot_id_features(Graph.complete(6), max_nodes=5)


class TestDegreeOnehot:
    def test_degree_in_slot(self, square):
        feats = degree_onehot_features(square, max_nodes=6)
        for v in range(4):
            assert feats[v, v] == 2.0
        assert feats.sum() == 8.0

    def test_paper_input_dim(self, petersen_like):
        feats = degree_onehot_features(petersen_like)
        assert feats.shape[1] == 15

    def test_irregular_degrees(self):
        star = Graph.star(4)
        feats = degree_onehot_features(star, max_nodes=4)
        assert feats[0, 0] == 3.0
        assert feats[1, 1] == 1.0


class TestDegreePlusOnehot:
    def test_shape(self, triangle):
        feats = degree_plus_onehot_features(triangle, max_nodes=4)
        assert feats.shape == (3, 5)
        assert np.array_equal(feats[:, 0], [2, 2, 2])


class TestStructural:
    def test_shape(self, petersen_like):
        assert structural_features(petersen_like).shape == (10, 5)

    def test_triangle_counts(self, triangle):
        feats = structural_features(triangle)
        # every node of K3 is in exactly one triangle
        assert np.allclose(feats[:, 2], 1.0)

    def test_no_triangles_in_cycle(self, square):
        feats = structural_features(square)
        assert np.allclose(feats[:, 2], 0.0)

    def test_mean_neighbor_degree_regular(self, petersen_like):
        feats = structural_features(petersen_like)
        assert np.allclose(feats[:, 3], 3.0)

    def test_weighted_degree(self, weighted_triangle):
        feats = structural_features(weighted_triangle)
        assert np.isclose(feats[0, 4], 4.0)  # 1 + 3

    def test_isolated_node_safe(self):
        graph = Graph(3, ((0, 1),))
        feats = structural_features(graph)
        assert feats[2, 3] == 0.0  # no neighbors -> 0, not NaN
        assert not np.isnan(feats).any()


class TestDispatch:
    @pytest.mark.parametrize(
        "kind,dim",
        [
            ("degree_onehot", 15),
            ("onehot", 15),
            ("degree_plus_onehot", 16),
            ("structural", 5),
        ],
    )
    def test_kinds_and_dims(self, triangle, kind, dim):
        feats = build_features(triangle, kind)
        assert feats.shape == (3, dim)
        assert feature_dim(kind) == dim

    def test_unknown_kind(self, triangle):
        with pytest.raises(GraphError):
            build_features(triangle, "bogus")
        with pytest.raises(GraphError):
            feature_dim("bogus")
