"""Tests for the serving circuit breaker and model-path degradation.

Unit tests drive :class:`CircuitBreaker` through its state machine with
a fake clock; integration tests verify :class:`PredictionService` never
raises when the model path fails — it degrades to the fallback chain,
counts every failure mode in the metrics, and recovers through a
half-open probe.
"""

import numpy as np
import pytest

from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_regular_graph
from repro.serving import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    PredictionService,
    ServingConfig,
)
from repro.serving.fallbacks import SOURCE_MODEL


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# CircuitBreaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third failure trips
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_after_reset_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.advance(9.9)
        assert breaker.state == STATE_OPEN
        clock.advance(0.2)
        assert breaker.state == STATE_HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()  # wins the probe slot
        assert not breaker.allow()  # everyone else waits

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_counts_a_trip(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, reset_timeout_s=1.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        assert breaker.trips == 1
        clock.advance(2.0)
        assert breaker.allow()
        assert breaker.record_failure()  # failed probe trips again
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        # The window restarts from the failed probe.
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.allow()

    def test_snapshot_is_json_safe(self):
        import json

        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        snapshot = breaker.snapshot()
        json.dumps(snapshot)
        assert snapshot["state"] == STATE_CLOSED
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["trips"] == 0


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
@pytest.fixture
def graphs():
    return [random_regular_graph(n, 2, rng=n) for n in range(4, 12)]


def make_service(clock=None, **config_kwargs):
    model = QAOAParameterPredictor(arch="gcn", p=1, hidden_dim=8, rng=0)
    model.eval()
    defaults = dict(batching=False, breaker_threshold=2, breaker_reset_s=30.0)
    defaults.update(config_kwargs)
    return PredictionService(
        model=model, config=ServingConfig(**defaults), clock=clock
    )


class TestServiceDegradation:
    def test_failing_model_degrades_instead_of_raising(self, graphs):
        service = make_service()
        entry = service.registry.get("default")
        entry.model.predict = lambda batch: (_ for _ in ()).throw(
            RuntimeError("forward pass exploded")
        )
        result = service.predict(graphs[0])
        assert result.source != SOURCE_MODEL
        assert len(result.gammas) == 1
        assert service.metrics.model_failures == 1
        assert service.metrics.errors == 0

    def test_breaker_trips_then_rejects_the_model_path(self, graphs):
        service = make_service()
        entry = service.registry.get("default")
        calls = []

        def failing(batch):
            calls.append(len(batch))
            raise RuntimeError("down")

        entry.model.predict = failing
        for graph in graphs[:2]:  # threshold=2: second failure trips
            service.predict(graph)
        assert service.metrics.breaker_trips == 1
        assert len(calls) == 2
        # Breaker open: the model is never consulted, requests still
        # answer from the fallback chain.
        for graph in graphs[2:5]:
            result = service.predict(graph)
            assert result.source != SOURCE_MODEL
        assert len(calls) == 2
        assert service.metrics.breaker_rejections == 3

    def test_half_open_probe_recovers_the_model_path(self, graphs):
        clock = FakeClock()
        service = make_service(clock=clock, breaker_reset_s=10.0)
        entry = service.registry.get("default")
        healthy_predict = entry.model.predict

        def failing(batch):
            raise RuntimeError("down")

        entry.model.predict = failing
        for graph in graphs[:2]:
            service.predict(graph)
        assert service.metrics.breaker_trips == 1
        entry.model.predict = healthy_predict
        clock.advance(11.0)
        result = service.predict(graphs[5])
        assert result.source == SOURCE_MODEL
        assert service._breaker("default").state == STATE_CLOSED

    def test_model_retries_rescue_transient_failures(self, graphs):
        service = make_service(model_retries=2, breaker_threshold=10)
        entry = service.registry.get("default")
        healthy_predict = entry.model.predict
        calls = []

        def flaky(batch):
            calls.append(len(batch))
            if len(calls) <= 2:
                raise RuntimeError("transient")
            return healthy_predict(batch)

        entry.model.predict = flaky
        result = service.predict(graphs[0])
        assert result.source == SOURCE_MODEL
        assert len(calls) == 3
        assert service.metrics.model_retries == 2
        assert service.metrics.model_failures == 2

    def test_unknown_model_name_degrades(self, graphs):
        service = make_service()
        result = service.predict(graphs[0], model_name="not-registered")
        assert result.source != SOURCE_MODEL
        assert service.metrics.errors == 0

    def test_batch_timeout_counts_as_timeout(self, graphs):
        import time as _time

        service = make_service(
            batching=True,
            max_wait_ms=1.0,
            request_timeout_s=0.05,
            breaker_threshold=1,
        )
        entry = service.registry.get("default")

        def glacial(batch):
            _time.sleep(0.5)
            raise RuntimeError("unreachable in time")

        entry.model.predict = glacial
        try:
            result = service.predict(graphs[0])
        finally:
            service.close()
        assert result.source != SOURCE_MODEL
        assert service.metrics.timeouts == 1
        assert service.metrics.breaker_trips == 1

    def test_metrics_snapshot_reports_breakers(self, graphs):
        service = make_service()
        entry = service.registry.get("default")
        entry.model.predict = lambda batch: (_ for _ in ()).throw(
            RuntimeError("down")
        )
        for graph in graphs[:2]:
            service.predict(graph)
        snapshot = service.metrics_snapshot()
        assert snapshot["fault_tolerance"]["model_failures"] == 2
        assert snapshot["fault_tolerance"]["breaker_trips"] == 1
        assert snapshot["breakers"]["default"]["state"] == STATE_OPEN

    def test_describe_reports_fault_config(self):
        service = make_service()
        config = service.describe()["config"]
        assert config["breaker_threshold"] == 2
        assert config["model_retries"] == 0
        assert "breaker_reset_s" in config
        assert "request_timeout_s" in config
