"""Tests for landscape analysis tools."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.graphs.graph import Graph
from repro.graphs.generators import random_regular_graph
from repro.qaoa.landscape import (
    find_local_maxima,
    global_optimum_p1,
    gradient_variance,
    grid_landscape,
)
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.simulator import QAOASimulator


@pytest.fixture(scope="module")
def cycle_simulator():
    return QAOASimulator(Graph.cycle(8))


class TestGridLandscape:
    def test_shape(self, cycle_simulator):
        grid = grid_landscape(cycle_simulator, gamma_points=10, beta_points=6)
        assert grid.values.shape == (10, 6)
        assert grid.gammas.shape == (10,)

    def test_corner_values(self, cycle_simulator):
        grid = grid_landscape(cycle_simulator, gamma_points=8, beta_points=8)
        # gamma = beta = 0 corner: the |+> state, half the edges
        assert grid.values[0, 0] == pytest.approx(4.0)

    def test_best_is_argmax(self, cycle_simulator):
        grid = grid_landscape(cycle_simulator, gamma_points=12, beta_points=8)
        gamma, beta, value = grid.best()
        assert value == pytest.approx(grid.values.max())
        assert cycle_simulator.expectation([gamma], [beta]) == pytest.approx(
            value
        )

    def test_validation(self, cycle_simulator):
        with pytest.raises(OptimizationError):
            grid_landscape(cycle_simulator, gamma_points=1)


class TestLocalMaxima:
    def test_finds_the_known_optimum(self, cycle_simulator):
        grid = grid_landscape(cycle_simulator, gamma_points=40, beta_points=24)
        maxima = find_local_maxima(grid)
        assert maxima  # at least one interior maximum
        gamma_star, beta_star = p1_optimal_angles_regular(2)
        best = maxima[0]
        assert best["gamma"] == pytest.approx(gamma_star, abs=0.15)
        assert best["beta"] == pytest.approx(beta_star, abs=0.15)

    def test_sorted_descending(self, cycle_simulator):
        grid = grid_landscape(cycle_simulator, gamma_points=30, beta_points=16)
        maxima = find_local_maxima(grid)
        values = [m["value"] for m in maxima]
        assert values == sorted(values, reverse=True)

    def test_multimodality_detected(self):
        # denser graphs typically show several interior maxima — the
        # paper's "complex optimization landscape"
        graph = random_regular_graph(10, 5, rng=3)
        grid = grid_landscape(
            QAOASimulator(graph), gamma_points=40, beta_points=24,
            gamma_range=(0.0, 2 * np.pi), beta_range=(0.0, np.pi / 2),
        )
        maxima = find_local_maxima(grid)
        assert len(maxima) >= 2


class TestGlobalOptimum:
    def test_beats_plain_single_start(self):
        graph = random_regular_graph(10, 4, rng=9)
        simulator = QAOASimulator(graph)
        from repro.qaoa.optimizers import AdamOptimizer

        single = AdamOptimizer().run(
            simulator, np.array([2.8]), np.array([1.4]), max_iters=150
        )
        gammas, betas, value = global_optimum_p1(simulator)
        assert value >= single.expectation - 1e-6

    def test_matches_closed_form_on_cycle(self, cycle_simulator):
        _, _, value = global_optimum_p1(cycle_simulator)
        # C8 p=1 optimum: 0.75 per edge * 8 edges
        assert value == pytest.approx(6.0, abs=1e-4)


class TestGradientVariance:
    def test_statistics_keys(self, cycle_simulator):
        stats = gradient_variance(cycle_simulator, p=1, samples=16, rng=0)
        assert set(stats) == {
            "mean_norm", "var_norm", "max_norm", "fraction_tiny"
        }
        assert stats["mean_norm"] > 0

    def test_shallow_circuits_not_barren(self, cycle_simulator):
        stats = gradient_variance(cycle_simulator, p=1, samples=32, rng=1)
        assert stats["fraction_tiny"] < 0.5

    def test_deterministic(self, cycle_simulator):
        a = gradient_variance(cycle_simulator, samples=8, rng=5)
        b = gradient_variance(cycle_simulator, samples=8, rng=5)
        assert a == b
