"""Tests for pooling and the QAOA parameter predictor."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn.batching import GraphBatch
from repro.gnn.pooling import max_pool, mean_pool, readout, sum_pool
from repro.gnn.predictor import (
    ARCHITECTURES,
    GNNEncoder,
    QAOAParameterPredictor,
)
from repro.graphs.graph import Graph
from repro.nn.optim import Adam
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor


class TestPooling:
    @pytest.fixture
    def batch(self, triangle, square):
        feats_a = np.array([[1.0], [2.0], [3.0]])
        feats_b = np.array([[4.0], [4.0], [4.0], [8.0]])
        return GraphBatch.from_graphs(
            [triangle, square], features=[feats_a, feats_b]
        )

    def test_mean_pool(self, batch):
        out = mean_pool(batch.x, batch)
        np.testing.assert_allclose(out.data, [[2.0], [5.0]])

    def test_sum_pool(self, batch):
        out = sum_pool(batch.x, batch)
        np.testing.assert_allclose(out.data, [[6.0], [20.0]])

    def test_max_pool(self, batch):
        out = max_pool(batch.x, batch)
        np.testing.assert_allclose(out.data, [[3.0], [8.0]])

    def test_readout_dispatch(self, batch):
        assert readout(batch.x, batch, "mean").data[0, 0] == 2.0
        with pytest.raises(ModelError):
            readout(batch.x, batch, "bogus")


class TestEncoder:
    def test_layer_count(self):
        encoder = GNNEncoder("gcn", in_dim=15, hidden_dim=32, num_layers=3, rng=0)
        assert len(encoder.layers) == 3
        assert encoder.out_dim == 32

    def test_rejects_zero_layers(self):
        with pytest.raises(ModelError):
            GNNEncoder("gcn", num_layers=0)

    def test_unknown_arch(self):
        with pytest.raises(ModelError, match="unknown architecture"):
            GNNEncoder("transformer")

    def test_embedding_shape(self, petersen_like):
        encoder = GNNEncoder("gin", rng=0)
        encoder.eval()
        batch = GraphBatch.from_graphs([petersen_like])
        assert encoder(batch).shape == (10, 32)


class TestPredictor:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_output_shape(self, arch, petersen_like, square):
        model = QAOAParameterPredictor(arch=arch, p=2, rng=0)
        batch = GraphBatch.from_graphs([petersen_like, square])
        assert model(batch).shape == (2, 4)

    def test_bounded_outputs_in_range(self, petersen_like):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        model.eval()
        gammas, betas = model.predict_angles(petersen_like)
        assert 0.0 <= gammas[0] <= 2 * np.pi
        assert 0.0 <= betas[0] <= np.pi

    def test_linear_scaling_unbounded(self, petersen_like):
        model = QAOAParameterPredictor(
            arch="gcn", p=1, output_scaling="linear", rng=0
        )
        batch = GraphBatch.from_graphs([petersen_like])
        # no error and no clipping applied
        assert model(batch).shape == (1, 2)

    def test_multihead_gat_predictor(self, petersen_like):
        model = QAOAParameterPredictor(
            arch="gat", p=1, gat_heads=4, rng=0
        )
        batch = GraphBatch.from_graphs([petersen_like])
        assert model(batch).shape == (1, 2)

    def test_gat_heads_must_divide_hidden(self):
        with pytest.raises(ModelError):
            QAOAParameterPredictor(
                arch="gat", p=1, hidden_dim=32, gat_heads=5, rng=0
            )

    def test_invalid_scaling(self):
        with pytest.raises(ModelError):
            QAOAParameterPredictor(output_scaling="clip")

    def test_invalid_depth(self):
        with pytest.raises(ModelError):
            QAOAParameterPredictor(p=0)

    def test_predict_eval_deterministic(self, petersen_like):
        # dropout must be off during predict: repeated calls identical
        model = QAOAParameterPredictor(arch="gin", p=1, dropout=0.5, rng=0)
        a = model.predict([petersen_like])
        b = model.predict([petersen_like])
        np.testing.assert_allclose(a, b)

    def test_predict_restores_training_mode(self, petersen_like):
        model = QAOAParameterPredictor(arch="gin", p=1, rng=0)
        model.train()
        model.predict([petersen_like])
        assert model.training

    def test_as_initialization_strategy(self, petersen_like):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        model.eval()
        strategy = model.as_initialization()
        gammas, betas = strategy.initial_parameters(petersen_like, 1)
        direct_g, direct_b = model.predict_angles(petersen_like)
        np.testing.assert_allclose(gammas, direct_g)
        assert strategy.name == "gnn_gcn"

    def test_as_initialization_depth_mismatch(self, petersen_like):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        strategy = model.as_initialization()
        with pytest.raises(ModelError):
            strategy.initial_parameters(petersen_like, 2)

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_overfits_single_target(self, arch):
        # each architecture can memorize a constant target on two graphs
        graphs = [Graph.cycle(5), Graph.complete(4)]
        model = QAOAParameterPredictor(arch=arch, p=1, dropout=0.0, rng=1)
        batch = GraphBatch.from_graphs(graphs)
        target = Tensor(np.tile([1.2, 0.5], (2, 1)))
        optimizer = Adam(model.parameters(), 0.01)
        losses = []
        for _ in range(150):
            optimizer.zero_grad()
            loss = mse_loss(model(batch), target)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.2, arch

    def test_distinguishes_graphs(self):
        # after training on two different targets, predictions differ
        graphs = [Graph.cycle(6), Graph.complete(6)]
        model = QAOAParameterPredictor(arch="gin", p=1, dropout=0.0, rng=2)
        batch = GraphBatch.from_graphs(graphs)
        target = Tensor(np.array([[0.5, 0.2], [2.5, 1.2]]))
        optimizer = Adam(model.parameters(), 0.01)
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(model(batch), target)
            loss.backward()
            optimizer.step()
        model.eval()
        predictions = model.predict(graphs)
        assert abs(predictions[0, 0] - predictions[1, 0]) > 0.5
