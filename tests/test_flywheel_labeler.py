"""Tests for the background labeler (`repro.flywheel.labeler`)."""

import pytest

from repro.data.checkpoint import LabelingCheckpoint
from repro.exceptions import CheckpointError, FlywheelError
from repro.flywheel.labeler import (
    SOURCE_FLYWHEEL,
    RelabelConfig,
    relabel_candidates,
)
from repro.flywheel.replay import ReplayRecord
from repro.flywheel.selector import select_candidates
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.simulator import QAOASimulator
from repro.runtime import FaultInjector


@pytest.fixture(scope="module")
def candidates():
    graphs = [
        Graph.cycle(4, name="c4"),
        Graph.cycle(5, name="c5"),
        Graph.cycle(6, name="c6"),
        random_regular_graph(6, 3, rng=1, name="r6"),
        random_regular_graph(5, 2, rng=2, name="r5"),
    ]
    records = [
        ReplayRecord(
            graph=g,
            wl_hash=wl_canonical_hash(g),
            p=1,
            gammas=(0.35,),
            betas=(0.25,),
            source="random",
        )
        for g in graphs
    ]
    return select_candidates(records)


FAST = RelabelConfig(optimizer_iters=25, checkpoint_every=2)


def assert_same_records(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.gammas == right.gammas
        assert left.betas == right.betas
        assert left.expectation == right.expectation
        assert left.approximation_ratio == right.approximation_ratio


class TestRelabeling:
    def test_one_record_per_candidate_in_order(self, candidates):
        records = relabel_candidates(candidates, FAST)
        assert len(records) == len(candidates)
        for candidate, record in zip(candidates, records):
            assert record.graph.name == candidate.graph.name
            assert record.p == 1
            assert record.source == SOURCE_FLYWHEEL

    def test_never_worse_than_served_params(self, candidates):
        """Warm start + best-iterate tracking: labels only improve."""
        records = relabel_candidates(candidates, FAST)
        for candidate, record in zip(candidates, records):
            assert record.approximation_ratio >= candidate.served_ar - 1e-9

    def test_label_expectation_matches_simulator(self, candidates):
        import numpy as np

        record = relabel_candidates(candidates[:1], FAST)[0]
        problem = MaxCutProblem(record.graph)
        value = QAOASimulator(problem).expectation(
            np.asarray(record.gammas), np.asarray(record.betas)
        )
        # Canonicalized angles reproduce the recorded expectation.
        assert value == pytest.approx(record.expectation, abs=1e-9)

    def test_deterministic(self, candidates):
        assert_same_records(
            relabel_candidates(candidates, FAST),
            relabel_candidates(candidates, FAST),
        )

    def test_empty_worklist(self):
        assert relabel_candidates([], FAST) == []

    def test_config_validation(self):
        with pytest.raises(FlywheelError):
            RelabelConfig(optimizer_iters=0)
        with pytest.raises(FlywheelError):
            RelabelConfig(checkpoint_every=0)


class TestFaultTolerance:
    def test_injected_failures_with_retries_identical(self, candidates):
        clean = relabel_candidates(candidates, FAST)
        injected = relabel_candidates(
            candidates,
            RelabelConfig(optimizer_iters=25, checkpoint_every=2, retries=2),
            fault_injector=FaultInjector(failure_rate=0.9),
        )
        assert_same_records(clean, injected)

    def test_failure_past_retry_budget_raises(self, candidates):
        with pytest.raises(FlywheelError, match="relabeling failed"):
            relabel_candidates(
                candidates,
                FAST,  # no retries
                fault_injector=FaultInjector(failure_rate=1.0),
            )


class TestCheckpointing:
    def test_kill_and_resume_byte_identical(self, candidates, tmp_path):
        clean = relabel_candidates(candidates, FAST)
        ckpt = tmp_path / "ckpt"
        # First shard completes, a later bucket dies hard.
        with pytest.raises(FlywheelError):
            relabel_candidates(
                candidates,
                FAST,
                checkpoint=ckpt,
                fault_injector=FaultInjector(fail_tasks={2: 99}),
            )
        partial = LabelingCheckpoint(ckpt).load_records()
        assert 0 < len(partial) < len(candidates)
        resumed = relabel_candidates(
            candidates, FAST, checkpoint=ckpt, resume=True
        )
        assert_same_records(clean, resumed)

    def test_completed_checkpoint_resumes_without_work(
        self, candidates, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        first = relabel_candidates(candidates, FAST, checkpoint=ckpt)
        # Resume with an executor that fails everything: nothing runs.
        resumed = relabel_candidates(
            candidates,
            FAST,
            checkpoint=ckpt,
            resume=True,
            fault_injector=FaultInjector(failure_rate=1.0),
        )
        assert_same_records(first, resumed)

    def test_resume_with_different_worklist_rejected(
        self, candidates, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        relabel_candidates(candidates, FAST, checkpoint=ckpt)
        with pytest.raises(CheckpointError):
            relabel_candidates(
                candidates[:2], FAST, checkpoint=ckpt, resume=True
            )

    def test_fingerprint_covers_served_params(self, candidates):
        config = RelabelConfig()
        baseline = config.fingerprint(candidates)
        import copy

        shifted = copy.deepcopy(list(candidates))
        shifted[0].served_gammas = (9.9,)
        assert config.fingerprint(shifted) != baseline
