"""Tests for the online serving subsystem (`repro.serving`)."""

import json
import threading

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_connected_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.serving import (
    CHECKPOINT_FORMAT_VERSION,
    FALLBACK_ORDER,
    SOURCE_ANALYTIC,
    SOURCE_FIXED_ANGLE,
    SOURCE_MODEL,
    SOURCE_RANDOM,
    BatchingError,
    CacheError,
    FallbackChain,
    MicroBatcher,
    ModelRegistry,
    PredictionCache,
    PredictionService,
    ServingConfig,
    build_checkpoint_state,
    cache_key,
    load_checkpoint,
    model_fingerprint,
    save_checkpoint,
)


@pytest.fixture(scope="module")
def model():
    """A small deterministic predictor (untrained weights are fine)."""
    predictor = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=16, rng=7)
    predictor.eval()
    return predictor


def relabel(graph: Graph, perm) -> Graph:
    edges = [(int(perm[u]), int(perm[v])) for u, v in graph.edges]
    return Graph.from_edges(graph.num_nodes, edges, graph.weights)


# ----------------------------------------------------------------------
# Registry + checkpoints
# ----------------------------------------------------------------------
class TestCheckpoints:
    def test_save_load_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_checkpoint(model, path, final_loss=0.5)
        loaded = load_checkpoint(path)
        assert loaded.arch == model.arch
        assert loaded.p == model.p
        assert not loaded.training
        graph = random_regular_graph(8, 3, rng=0)
        np.testing.assert_array_equal(
            model.predict([graph]), loaded.predict([graph])
        )

    def test_checkpoint_carries_format_version(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_checkpoint(model, path)
        state = json.loads(path.read_text())
        assert state["format_version"] == CHECKPOINT_FORMAT_VERSION

    def test_missing_file_raises_model_error(self, tmp_path):
        with pytest.raises(ModelError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.json")

    def test_truncated_json_raises_model_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"arch": "gin", "p"')
        with pytest.raises(ModelError, match="not valid JSON"):
            load_checkpoint(path)

    def test_pre_versioning_checkpoint_gets_hint(self, model, tmp_path):
        state = build_checkpoint_state(model)
        del state["format_version"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(state))
        with pytest.raises(ModelError, match="pre-versioning"):
            load_checkpoint(path)

    def test_future_format_version_rejected(self, model, tmp_path):
        state = build_checkpoint_state(model)
        state["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(state))
        with pytest.raises(ModelError, match="format_version"):
            load_checkpoint(path)

    def test_unknown_arch_rejected(self, model, tmp_path):
        state = build_checkpoint_state(model)
        state["arch"] = "transformer"
        path = tmp_path / "arch.json"
        path.write_text(json.dumps(state))
        with pytest.raises(ModelError, match="transformer"):
            load_checkpoint(path)

    def test_wrong_shape_rejected_as_model_error(self, model, tmp_path):
        state = build_checkpoint_state(model)
        first = next(iter(state["state"]))
        state["state"][first] = [[0.0, 1.0]]
        path = tmp_path / "shape.json"
        path.write_text(json.dumps(state))
        with pytest.raises(ModelError, match=str(path)):
            load_checkpoint(path)

    def test_missing_keys_never_surface_keyerror(self, tmp_path):
        path = tmp_path / "sparse.json"
        path.write_text('{"format_version": 1}')
        with pytest.raises(ModelError, match="missing checkpoint keys"):
            load_checkpoint(path)


class TestRegistry:
    def test_first_registered_is_default(self, model):
        registry = ModelRegistry()
        registry.register("a", model)
        registry.register("b", model)
        assert registry.get().name == "a"
        assert registry.get("b").name == "b"
        assert registry.names() == ["a", "b"]

    def test_empty_registry_raises(self):
        with pytest.raises(ModelError, match="empty"):
            ModelRegistry().get()

    def test_unknown_name_lists_registered(self, model):
        registry = ModelRegistry()
        registry.register("a", model)
        with pytest.raises(ModelError, match="'a'"):
            registry.get("missing")

    def test_load_registers_with_source(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_checkpoint(model, path)
        registry = ModelRegistry()
        entry = registry.load("served", path)
        assert entry.source == str(path)
        assert "served" in registry
        assert registry.describe()[0]["fingerprint"] == entry.fingerprint

    def test_fingerprint_tracks_weights(self, model):
        before = model_fingerprint(model)
        other = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=16, rng=8)
        assert before == model_fingerprint(model)
        assert before != model_fingerprint(other)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestPredictionCache:
    def test_isomorphic_graphs_share_key(self, rng):
        graph = random_connected_graph(9, rng=3)
        permuted = relabel(graph, rng.permutation(9))
        assert cache_key(graph, "m") == cache_key(permuted, "m")

    def test_model_key_separates_entries(self, triangle):
        assert cache_key(triangle, "a") != cache_key(triangle, "b")

    def test_lru_eviction(self):
        cache = PredictionCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now LRU
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.evictions_lru == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = PredictionCache(max_size=8, ttl_s=10.0, clock=lambda: now[0])
        cache.put("k", "v")
        now[0] = 5.0
        assert cache.get("k") == "v"
        now[0] = 11.0
        assert cache.get("k") is None
        assert cache.evictions_ttl == 1

    def test_purge_expired(self):
        now = [0.0]
        cache = PredictionCache(max_size=8, ttl_s=1.0, clock=lambda: now[0])
        cache.put("a", 1)
        cache.put("b", 2)
        now[0] = 2.0
        assert cache.purge_expired() == 2
        assert len(cache) == 0

    def test_stats_and_hit_rate(self):
        cache = PredictionCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_invalid_config_rejected(self):
        with pytest.raises(CacheError):
            PredictionCache(max_size=0)
        with pytest.raises(CacheError):
            PredictionCache(ttl_s=-1.0)


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_single_request_answered(self, model, triangle):
        with MicroBatcher(model.predict, max_wait_ms=1.0) as batcher:
            row = batcher.predict(triangle)
        assert row.shape == (2 * model.p,)

    def test_batched_bit_identical_to_single(self, model, rng):
        """The acceptance criterion: coalescing never changes a result."""
        graphs = [
            random_connected_graph(
                int(rng.integers(5, 12)), rng=int(rng.integers(0, 2**31))
            )
            for _ in range(12)
        ]
        singles = [model.predict([g])[0] for g in graphs]
        results = [None] * len(graphs)
        # Long wait so all submissions coalesce into one forward pass.
        with MicroBatcher(model.predict, max_wait_ms=200.0) as batcher:
            def worker(i):
                results[i] = batcher.predict(graphs[i])
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(graphs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = batcher.stats()
        assert stats["max_occupancy"] > 1  # actually coalesced
        for single, batched in zip(singles, results):
            np.testing.assert_array_equal(single, batched)

    def test_forward_error_fans_out(self, triangle):
        def broken(graphs):
            raise BatchingError("boom")

        with MicroBatcher(broken, max_wait_ms=1.0) as batcher:
            pending = batcher.submit(triangle)
            with pytest.raises(BatchingError, match="boom"):
                pending.result(timeout=5.0)

    def test_row_count_mismatch_detected(self, triangle):
        with MicroBatcher(
            lambda graphs: np.zeros((len(graphs) + 1, 2)), max_wait_ms=1.0
        ) as batcher:
            with pytest.raises(BatchingError, match="rows"):
                batcher.predict(triangle, timeout=5.0)

    def test_closed_batcher_rejects_work(self, model, triangle):
        batcher = MicroBatcher(model.predict)
        batcher.close()
        with pytest.raises(BatchingError, match="closed"):
            batcher.submit(triangle)

    def test_invalid_config_rejected(self, model):
        with pytest.raises(BatchingError):
            MicroBatcher(model.predict, max_batch_size=0)
        with pytest.raises(BatchingError):
            MicroBatcher(model.predict, max_wait_ms=-1.0)


# ----------------------------------------------------------------------
# Fallback chain
# ----------------------------------------------------------------------
class TestFallbackChain:
    def test_order_constant(self):
        assert FALLBACK_ORDER == (
            SOURCE_FIXED_ANGLE, SOURCE_ANALYTIC, SOURCE_RANDOM,
        )

    def test_regular_covered_degree_uses_fixed_angles(self, petersen_like):
        result = FallbackChain(p=1).resolve(petersen_like)
        assert result.source == SOURCE_FIXED_ANGLE
        assert len(result.gammas) == len(result.betas) == 1

    def test_irregular_graph_skips_to_analytic(self):
        chain = FallbackChain(p=1)
        star = Graph.star(6)  # irregular: no fixed-angle entry
        assert chain.try_fixed_angle(star) is None
        result = chain.resolve(star)
        assert result.source == SOURCE_ANALYTIC

    def test_uncovered_degree_skips_to_analytic(self):
        cycle = Graph.cycle(20)  # 2-regular: below the table's range
        result = FallbackChain(p=1).resolve(cycle)
        assert result.source == SOURCE_ANALYTIC

    def test_edgeless_graph_lands_on_random(self):
        lonely = Graph(4, ())
        chain = FallbackChain(p=1)
        assert chain.try_analytic(lonely) is None
        result = chain.resolve(lonely)
        assert result.source == SOURCE_RANDOM
        assert len(result.gammas) == 1

    def test_random_rung_reproducible_per_iso_class(self, rng):
        graph = random_connected_graph(8, rng=5)
        permuted = relabel(graph, rng.permutation(8))
        chain = FallbackChain(p=2)
        assert chain.random(graph) == chain.random(permuted)

    def test_deep_p_uses_linear_ramp(self):
        result = FallbackChain(p=3).resolve(Graph.star(6))
        assert result.source == SOURCE_ANALYTIC
        assert len(result.gammas) == 3
        # annealing-style ramp: gammas rise, betas fall
        assert result.gammas[0] < result.gammas[-1]
        assert result.betas[0] > result.betas[-1]

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            FallbackChain(p=0)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class TestPredictionService:
    def test_isomorphic_copy_is_cache_hit(self, model, rng):
        graph = random_connected_graph(9, rng=11)
        permuted = relabel(graph, rng.permutation(9))
        with PredictionService(model=model) as service:
            first = service.predict(graph)
            second = service.predict(permuted)
        assert first.source == SOURCE_MODEL
        assert not first.cached
        assert second.cached
        assert second.gammas == first.gammas
        assert second.betas == first.betas
        assert service.cache.hits == 1

    def test_batched_service_matches_direct_predict(self, model, rng):
        graph = random_connected_graph(10, rng=13)
        direct = model.predict([graph])[0]
        with PredictionService(model=model) as service:
            result = service.predict(graph)
        np.testing.assert_array_equal(
            np.concatenate([result.gammas, result.betas]), direct
        )

    def test_unbatched_config_matches_batched(self, model, rng):
        graph = random_connected_graph(10, rng=17)
        with PredictionService(model=model) as batched:
            a = batched.predict(graph)
        with PredictionService(
            model=model, config=ServingConfig(batching=False)
        ) as unbatched:
            b = unbatched.predict(graph)
        assert a.gammas == b.gammas
        assert a.betas == b.betas

    def test_oversized_graph_falls_back_without_error(self, model):
        too_big = Graph.cycle(model.in_dim + 5)
        with PredictionService(model=model) as service:
            result = service.predict(too_big)
        assert result.source in FALLBACK_ORDER

    def test_no_model_serves_fallbacks(self, petersen_like):
        with PredictionService(config=ServingConfig(default_p=1)) as service:
            result = service.predict(petersen_like)
        assert result.source == SOURCE_FIXED_ANGLE

    def test_model_failure_degrades_gracefully(self, model, monkeypatch):
        graph = random_regular_graph(8, 3, rng=2)

        def explode(graphs):
            raise ModelError("synthetic failure")

        monkeypatch.setattr(model, "predict", explode)
        with PredictionService(
            model=model, config=ServingConfig(batching=False)
        ) as service:
            result = service.predict(graph)
        assert result.source == SOURCE_FIXED_ANGLE

    def test_metrics_snapshot_shape(self, model, triangle):
        with PredictionService(model=model) as service:
            service.predict(triangle)
            service.predict(triangle)
            snapshot = service.metrics_snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["cache_hits"] == 1
        assert snapshot["sources"] == {SOURCE_MODEL: 2}
        assert snapshot["fallback_requests"] == 0
        assert snapshot["cache"]["hit_rate"] == 0.5
        assert "p50_ms" in snapshot["latency"]
        assert snapshot["models"][0]["arch"] == "gin"

    def test_retrained_model_invalidates_cache(self, triangle):
        a = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=16, rng=1)
        b = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=16, rng=2)
        a.eval()
        b.eval()
        with PredictionService(model=a) as service_a:
            first = service_a.predict(triangle)
        with PredictionService(model=b) as service_b:
            second = service_b.predict(triangle)
        assert first.cache_key != second.cache_key

    def test_concurrent_requests_coalesce(self, model, rng):
        graphs = [
            random_connected_graph(
                int(rng.integers(5, 12)), rng=int(rng.integers(0, 2**31))
            )
            for _ in range(8)
        ]
        config = ServingConfig(max_wait_ms=100.0)
        with PredictionService(model=model, config=config) as service:
            threads = [
                threading.Thread(target=service.predict, args=(g,))
                for g in graphs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snapshot = service.metrics_snapshot()
        assert snapshot["requests"] == 8
        assert snapshot["batcher"]["default"]["max_occupancy"] > 1
