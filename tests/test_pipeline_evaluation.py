"""Tests for the warm-start evaluator."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import random_regular_graph
from repro.pipeline.evaluation import (
    EvaluationResult,
    WarmStartComparison,
    WarmStartEvaluator,
)
from repro.qaoa.initialization import (
    ConstantInitialization,
    RandomInitialization,
)


@pytest.fixture(scope="module")
def test_graphs():
    return [random_regular_graph(8, 3, rng=i, name=f"t{i}") for i in range(6)]


class TestComparison:
    def test_improvement_sign(self):
        comparison = WarmStartComparison(
            graph_name="g",
            num_nodes=5,
            degree=2,
            random_ratio=0.7,
            strategy_ratio=0.8,
            random_initial_ratio=0.5,
            strategy_initial_ratio=0.6,
        )
        assert comparison.improvement == pytest.approx(10.0)


class TestEvaluationResult:
    def _result(self, improvements):
        result = EvaluationResult(strategy_name="x")
        for i, delta in enumerate(improvements):
            result.comparisons.append(
                WarmStartComparison(
                    graph_name=f"g{i}",
                    num_nodes=5,
                    degree=2,
                    random_ratio=0.7,
                    strategy_ratio=0.7 + delta / 100.0,
                    random_initial_ratio=0.5,
                    strategy_initial_ratio=0.5,
                )
            )
        return result

    def test_mean_std(self):
        result = self._result([10.0, -10.0, 10.0, 10.0])
        assert result.mean_improvement == pytest.approx(5.0)
        assert result.std_improvement == pytest.approx(np.std([10, -10, 10, 10]))

    def test_win_rate(self):
        result = self._result([10.0, -10.0, 0.0, 10.0])
        assert result.win_rate() == pytest.approx(0.75)

    def test_summary_keys(self):
        summary = self._result([1.0]).summary()
        assert set(summary) >= {
            "strategy",
            "mean_improvement",
            "std_improvement",
            "win_rate",
            "count",
        }

    def test_empty_result(self):
        result = EvaluationResult(strategy_name="x")
        assert result.mean_improvement == 0.0
        assert result.win_rate() == 0.0


class TestEvaluator:
    def test_paired_comparison_fields(self, test_graphs):
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=20, rng=0)
        result = evaluator.evaluate_strategy(
            test_graphs, ConstantInitialization(0.6, 0.4), "const"
        )
        assert result.strategy_name == "const"
        assert len(result.comparisons) == 6
        for comparison in result.comparisons:
            assert 0 <= comparison.random_ratio <= 1
            assert 0 <= comparison.strategy_ratio <= 1
            assert comparison.num_nodes == 8
            assert comparison.degree == 3

    def test_no_graphs_rejected(self):
        evaluator = WarmStartEvaluator(rng=0)
        with pytest.raises(DatasetError):
            evaluator.evaluate_strategy([], RandomInitialization())

    def test_good_warmstart_beats_random_on_tight_budget(self, test_graphs):
        # with a tiny optimization budget, starting at the closed-form
        # p=1 optimum must beat random starts on average
        from repro.qaoa.analytic import p1_optimal_angles_regular

        gamma, beta = p1_optimal_angles_regular(3)
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=5, rng=1)
        result = evaluator.evaluate_strategy(
            test_graphs, ConstantInitialization(gamma, beta), "oracle"
        )
        assert result.mean_improvement > 0

    def test_evaluate_model(self, test_graphs):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        model.eval()
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=10, rng=2)
        result = evaluator.evaluate_model(test_graphs, model)
        assert result.strategy_name == "gnn_gcn"
        assert len(result.comparisons) == len(test_graphs)

    def test_evaluate_models_dict(self, test_graphs):
        models = {
            "gcn": QAOAParameterPredictor(arch="gcn", p=1, rng=0),
            "gin": QAOAParameterPredictor(arch="gin", p=1, rng=1),
        }
        for model in models.values():
            model.eval()
        evaluator = WarmStartEvaluator(p=1, optimizer_iters=5, rng=3)
        results = evaluator.evaluate_models(test_graphs, models)
        assert set(results) == {"gcn", "gin"}

    def test_deterministic_given_seed(self, test_graphs):
        def run():
            evaluator = WarmStartEvaluator(p=1, optimizer_iters=10, rng=11)
            return evaluator.evaluate_strategy(
                test_graphs, ConstantInitialization(0.5, 0.3), "c"
            ).improvements

        assert run() == pytest.approx(run())
