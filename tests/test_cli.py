"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, load_model, main
from repro.data.dataset import QAOADataset
from repro.exceptions import ModelError


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.json"]
        )
        assert args.num_graphs == 150
        assert args.command == "generate"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_serve_and_predict_registered(self):
        parser = build_parser()
        assert parser.parse_args(["serve"]).command == "serve"
        assert parser.parse_args(["predict"]).command == "predict"


class TestEndToEnd:
    def test_generate_train_evaluate_roundtrip(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.json"
        model_path = tmp_path / "model.json"

        code = main(
            [
                "generate",
                "--num-graphs", "16",
                "--min-nodes", "4",
                "--max-nodes", "7",
                "--iters", "15",
                "--seed", "1",
                "--out", str(dataset_path),
            ]
        )
        assert code == 0
        assert dataset_path.exists()
        dataset = QAOADataset.load(dataset_path)
        assert len(dataset) == 16

        code = main(
            [
                "train",
                "--dataset", str(dataset_path),
                "--arch", "gcn",
                "--epochs", "3",
                "--seed", "1",
                "--out", str(model_path),
            ]
        )
        assert code == 0
        model = load_model(model_path)
        assert model.arch == "gcn"
        assert not model.training

        code = main(
            [
                "evaluate",
                "--dataset", str(dataset_path),
                "--model", str(model_path),
                "--test-size", "4",
                "--eval-iters", "3",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gcn" in out
        assert "Improvement" in out

    def test_saved_model_predictions_stable(self, tmp_path):
        dataset_path = tmp_path / "ds.json"
        model_path = tmp_path / "model.json"
        main(
            [
                "generate", "--num-graphs", "10", "--min-nodes", "4",
                "--max-nodes", "6", "--iters", "10", "--seed", "2",
                "--out", str(dataset_path),
            ]
        )
        main(
            [
                "train", "--dataset", str(dataset_path), "--arch", "gin",
                "--epochs", "2", "--seed", "2", "--out", str(model_path),
            ]
        )
        model_a = load_model(model_path)
        model_b = load_model(model_path)
        dataset = QAOADataset.load(dataset_path)
        graph = dataset[0].graph
        np.testing.assert_allclose(
            model_a.predict([graph]), model_b.predict([graph])
        )

    def test_predict_with_model(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.json"
        model_path = tmp_path / "model.json"
        main(
            [
                "generate", "--num-graphs", "8", "--min-nodes", "4",
                "--max-nodes", "6", "--iters", "8", "--seed", "5",
                "--out", str(dataset_path),
            ]
        )
        main(
            [
                "train", "--dataset", str(dataset_path), "--arch", "gin",
                "--epochs", "2", "--seed", "5", "--out", str(model_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "predict", "--model", str(model_path),
                "--edges", "0-1,1-2,2-3,3-0",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "model"
        assert len(payload["gammas"]) == 1

    def test_predict_without_model_uses_fallback(self, capsys):
        code = main(["predict", "--edges", "0-1,1-2,2-0"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] in ("fixed_angle", "analytic", "random")

    def test_evaluate_rejects_unversioned_checkpoint(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.json"
        model_path = tmp_path / "old-model.json"
        main(
            [
                "generate", "--num-graphs", "8", "--min-nodes", "4",
                "--max-nodes", "6", "--iters", "8", "--seed", "6",
                "--out", str(dataset_path),
            ]
        )
        # A pre-versioning checkpoint: valid JSON, no format_version.
        model_path.write_text(json.dumps({"arch": "gin", "p": 1}))
        with pytest.raises(ModelError, match="format_version"):
            main(
                [
                    "evaluate",
                    "--dataset", str(dataset_path),
                    "--model", str(model_path),
                    "--test-size", "2",
                    "--eval-iters", "2",
                ]
            )

    def test_reproduce_small(self, capsys):
        code = main(
            [
                "reproduce",
                "--num-graphs", "16",
                "--test-size", "4",
                "--epochs", "3",
                "--label-iters", "10",
                "--eval-iters", "3",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Improvement" in out


class TestTrainingFlags:
    def test_train_performance_flags_registered(self):
        base = ["train", "--dataset", "ds.json", "--out", "model.json"]
        args = build_parser().parse_args(
            base + ["--profile", "--no-batch-cache", "--fast-kernels"]
        )
        assert args.profile and args.no_batch_cache and args.fast_kernels
        defaults = build_parser().parse_args(base)
        assert not defaults.profile
        assert not defaults.no_batch_cache
        assert not defaults.fast_kernels

    def test_bench_training_flags_registered(self):
        args = build_parser().parse_args(
            [
                "bench", "--skip-training", "--training-graphs", "48",
                "--training-epochs", "4",
            ]
        )
        assert args.skip_training
        assert args.training_graphs == 48
        assert args.training_epochs == 4

    def test_train_profile_prints_report(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.json"
        model_path = tmp_path / "model.json"
        main(
            [
                "generate", "--num-graphs", "10", "--min-nodes", "4",
                "--max-nodes", "6", "--iters", "8", "--seed", "7",
                "--out", str(dataset_path),
            ]
        )
        code = main(
            [
                "train", "--dataset", str(dataset_path), "--arch", "gin",
                "--epochs", "2", "--seed", "7", "--profile",
                "--out", str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "training profile" in out
        assert "forward" in out
        assert "backward" in out

    def test_train_fast_kernels_roundtrip(self, tmp_path):
        dataset_path = tmp_path / "ds.json"
        model_path = tmp_path / "model.json"
        main(
            [
                "generate", "--num-graphs", "10", "--min-nodes", "4",
                "--max-nodes", "6", "--iters", "8", "--seed", "9",
                "--out", str(dataset_path),
            ]
        )
        code = main(
            [
                "train", "--dataset", str(dataset_path), "--arch", "gin",
                "--epochs", "2", "--seed", "9", "--fast-kernels",
                "--out", str(model_path),
            ]
        )
        assert code == 0
        assert load_model(model_path).arch == "gin"
