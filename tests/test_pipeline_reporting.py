"""Tests for markdown report generation."""

import pytest

from repro.pipeline.experiment import ExperimentReport
from repro.pipeline.reporting import render_markdown_report, write_markdown_report

from tests.test_analysis import make_result


@pytest.fixture
def report():
    return ExperimentReport(
        dataset_summary={
            "count": 50,
            "mean_ar": 0.85,
            "min_ar": 0.6,
            "max_ar": 1.0,
            "min_nodes": 4,
            "max_nodes": 12,
        },
        pruning_report=None,
        relabel_report=None,
        results={"gcn": make_result("gcn"), "gin": make_result("gin")},
        training_losses={"gcn": [1.0, 0.5, 0.2], "gin": [0.9, 0.4]},
    )


class TestRender:
    def test_contains_sections(self, report):
        text = render_markdown_report(report, title="My run")
        assert text.startswith("# My run")
        assert "## Dataset" in text
        assert "## Table 1" in text
        assert "## Training" in text
        assert "## Per-instance results" in text

    def test_table1_rows(self, report):
        text = render_markdown_report(report)
        assert "| gcn |" in text
        assert "3.65 ± 10.17" in text  # paper reference for gcn

    def test_training_curves(self, report):
        text = render_markdown_report(report)
        assert "1.0000 -> 0.2000 over 3 epochs" in text

    def test_per_instance_rows(self, report):
        text = render_markdown_report(report)
        assert "| g0 | 6 | 3 |" in text

    def test_repair_sections_when_present(self, report):
        from repro.data.pruning import PruningReport, RelabelReport

        report.pruning_report = PruningReport(
            kept=40, pruned=10, below_threshold=12, rescued=2,
            mean_ar_before=0.8, mean_ar_after=0.86,
        )
        report.relabel_report = RelabelReport(eligible=5, relabeled=2, total=50)
        text = render_markdown_report(report)
        assert "selective pruning: kept 40" in text
        assert "fixed-angle relabeling: 5/50" in text


class TestWrite:
    def test_writes_file(self, report, tmp_path):
        path = write_markdown_report(report, tmp_path / "sub" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("#")
