"""Tests for the parallel execution runtime."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.runtime import (
    BACKENDS,
    ParallelExecutor,
    TaskFailure,
    default_worker_count,
    derive_task_seeds,
    task_rng,
)
from repro.utils.rng import spawn_rng


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


class TestSeeding:
    def test_matches_spawn_rng_stream(self):
        parent_a = np.random.default_rng(42)
        parent_b = np.random.default_rng(42)
        seeds = derive_task_seeds(parent_a, 5)
        spawned = [spawn_rng(parent_b) for _ in range(5)]
        for seed, reference in zip(seeds, spawned):
            assert task_rng(seed).integers(0, 1 << 30) == reference.integers(
                0, 1 << 30
            )

    def test_deterministic(self):
        assert derive_task_seeds(7, 4) == derive_task_seeds(7, 4)

    def test_independent_of_task_count_prefix(self):
        assert derive_task_seeds(7, 8)[:4] == derive_task_seeds(7, 4)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            derive_task_seeds(0, -1)


class TestExecutorBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_order(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        assert executor.map(_square, list(range(20))) == [
            i * i for i in range(20)
        ]

    def test_empty_input(self):
        executor = ParallelExecutor()
        assert executor.map(_square, []) == []
        assert executor.last_report.total_tasks == 0

    @pytest.mark.parametrize("chunk_size", [1, 3, 50])
    def test_chunk_sizes(self, chunk_size):
        executor = ParallelExecutor(
            backend="thread", max_workers=3, chunk_size=chunk_size
        )
        assert executor.map(_square, list(range(10))) == [
            i * i for i in range(10)
        ]

    def test_report_populated(self):
        executor = ParallelExecutor()
        executor.map(_square, list(range(12)))
        report = executor.last_report
        assert report.total_tasks == 12
        assert report.completed == 12
        assert report.failed == 0
        assert report.tasks_per_second > 0
        assert set(report.as_dict()) == {
            "total_tasks",
            "completed",
            "failed",
            "retried",
            "timed_out",
            "wall_time",
            "tasks_per_second",
        }
        assert report.retried == 0
        assert report.timed_out == 0

    def test_on_progress_callback(self):
        seen = []
        executor = ParallelExecutor()
        executor.map(
            _square, [1, 2, 3], on_progress=lambda done, total: seen.append(
                (done, total)
            )
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_invalid_configuration(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(backend="gpu")
        with pytest.raises(ExecutionError):
            ParallelExecutor(error_mode="ignore")
        with pytest.raises(ExecutionError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ExecutionError):
            ParallelExecutor(chunk_size=0)
        with pytest.raises(ExecutionError):
            ParallelExecutor(retries=-1)

    def test_label_length_mismatch(self):
        executor = ParallelExecutor()
        with pytest.raises(ExecutionError):
            executor.map(_square, [1, 2], labels=["only-one"])

    def test_default_worker_count(self):
        assert default_worker_count("serial") == 1
        assert default_worker_count("process") >= 1


class TestErrorHandling:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_raise_mode_aggregates_with_labels(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        with pytest.raises(ExecutionError) as excinfo:
            executor.map(
                _fail_on_three,
                [1, 2, 3, 4],
                labels=["a", "b", "bad-task", "d"],
            )
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0].label == "bad-task"
        assert failures[0].index == 2
        assert "ValueError" in failures[0].error
        assert "bad-task" in str(excinfo.value)

    def test_collect_mode_returns_failures_in_place(self):
        executor = ParallelExecutor(error_mode="collect")
        results = executor.map(_fail_on_three, [1, 3, 5])
        assert results[0] == 1
        assert isinstance(results[1], TaskFailure)
        assert results[2] == 5
        assert executor.last_report.failed == 1
        assert executor.last_report.completed == 2

    def test_retries_recover_transient_failures(self):
        attempts = {}

        def flaky(x):
            attempts[x] = attempts.get(x, 0) + 1
            if attempts[x] == 1:
                raise RuntimeError("transient")
            return x

        executor = ParallelExecutor(retries=1)
        assert executor.map(flaky, [1, 2, 3]) == [1, 2, 3]
        assert all(count == 2 for count in attempts.values())

    def test_retries_exhausted_records_attempts(self):
        executor = ParallelExecutor(retries=2, error_mode="collect")
        results = executor.map(_fail_on_three, [3])
        assert isinstance(results[0], TaskFailure)
        assert results[0].attempts == 3


class TestProcessBackend:
    def test_map_matches_serial(self):
        serial = ParallelExecutor().map(_square, list(range(10)))
        parallel = ParallelExecutor(backend="process", max_workers=2).map(
            _square, list(range(10))
        )
        assert serial == parallel
