"""Tests for initialization strategies."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.graphs.graph import Graph
from repro.qaoa.initialization import (
    BETA_RANGE,
    GAMMA_RANGE,
    ConstantInitialization,
    FixedAngleInitialization,
    LinearRampInitialization,
    RandomInitialization,
    WarmStartInitialization,
)
from repro.qaoa.fixed_angles import FixedAngleTable


class TestRandom:
    def test_within_ranges(self, petersen_like):
        strategy = RandomInitialization()
        gammas, betas = strategy.initial_parameters(petersen_like, 3, rng=0)
        assert len(gammas) == len(betas) == 3
        assert ((gammas >= GAMMA_RANGE[0]) & (gammas < GAMMA_RANGE[1])).all()
        assert ((betas >= BETA_RANGE[0]) & (betas < BETA_RANGE[1])).all()

    def test_deterministic_with_seed(self, petersen_like):
        strategy = RandomInitialization()
        a = strategy.initial_parameters(petersen_like, 2, rng=9)
        b = strategy.initial_parameters(petersen_like, 2, rng=9)
        assert np.array_equal(a[0], b[0])

    def test_custom_ranges(self, petersen_like):
        strategy = RandomInitialization((0.0, 0.1), (0.0, 0.05))
        gammas, betas = strategy.initial_parameters(petersen_like, 5, rng=0)
        assert gammas.max() < 0.1
        assert betas.max() < 0.05

    def test_rejects_empty_range(self):
        with pytest.raises(OptimizationError):
            RandomInitialization((1.0, 1.0), (0.0, 1.0))


class TestConstantAndRamp:
    def test_constant(self, petersen_like):
        gammas, betas = ConstantInitialization(0.7, 0.3).initial_parameters(
            petersen_like, 4
        )
        assert np.allclose(gammas, 0.7)
        assert np.allclose(betas, 0.3)

    def test_linear_ramp_shapes(self, petersen_like):
        gammas, betas = LinearRampInitialization().initial_parameters(
            petersen_like, 4
        )
        assert (np.diff(gammas) > 0).all()  # gamma ramps up
        assert (np.diff(betas) < 0).all()  # beta ramps down


class TestFixedAngle:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedAngleTable(
            ensemble_size=2, ensemble_nodes=8, optimizer_iters=30, restarts=1,
            rng=2,
        )

    def test_uses_table_for_covered(self, petersen_like, table):
        strategy = FixedAngleInitialization(table)
        gammas, betas = strategy.initial_parameters(petersen_like, 1, rng=0)
        entry = table.lookup(3, 1)
        assert gammas[0] == pytest.approx(entry.gammas[0])
        assert betas[0] == pytest.approx(entry.betas[0])

    def test_falls_back_for_uncovered_degree(self, table):
        cycle = Graph.cycle(6)  # 2-regular: below coverage
        strategy = FixedAngleInitialization(table)
        gammas, betas = strategy.initial_parameters(cycle, 1, rng=0)
        assert len(gammas) == 1  # fallback random worked

    def test_falls_back_for_irregular(self, table):
        strategy = FixedAngleInitialization(table)
        gammas, _ = strategy.initial_parameters(Graph.star(5), 1, rng=0)
        assert len(gammas) == 1


class TestWarmStart:
    def test_wraps_callable(self, petersen_like):
        strategy = WarmStartInitialization(
            lambda graph, p: (np.full(p, 0.5), np.full(p, 0.25)), name="x"
        )
        gammas, betas = strategy.initial_parameters(petersen_like, 2)
        assert np.allclose(gammas, 0.5)
        assert strategy.name == "x"

    def test_depth_mismatch_raises(self, petersen_like):
        strategy = WarmStartInitialization(
            lambda graph, p: (np.zeros(1), np.zeros(1))
        )
        with pytest.raises(OptimizationError):
            strategy.initial_parameters(petersen_like, 2)
