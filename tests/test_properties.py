"""Cross-module property-based tests: the invariants that hold the
reproduction together, checked on randomized inputs with hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generation import canonicalize_angles
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.transforms import relabel
from repro.maxcut.problem import MaxCutProblem, all_cut_values
from repro.qaoa.analytic import p1_expectation
from repro.qaoa.simulator import QAOASimulator


graph_strategy = st.builds(
    lambda n, seed: erdos_renyi_graph(n, 0.5, rng=seed),
    st.integers(3, 9),
    st.integers(0, 10**6),
)


class TestCutInvariants:
    @given(graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_cut_values_bounded_by_total_weight(self, graph):
        values = all_cut_values(graph)
        assert values.min() >= 0.0
        assert values.max() <= graph.total_weight + 1e-9

    @given(graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_mean_cut_is_half_total_weight(self, graph):
        # E_z[cut(z)] over uniform z = w(G)/2 — each edge cut w.p. 1/2
        values = all_cut_values(graph)
        assert values.mean() == pytest.approx(graph.total_weight / 2.0)

    @given(graph_strategy, st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_maxcut_invariant_under_relabeling(self, graph, seed):
        permutation = np.random.default_rng(seed).permutation(
            graph.num_nodes
        )
        relabeled = relabel(graph, permutation)
        assert all_cut_values(relabeled).max() == pytest.approx(
            all_cut_values(graph).max()
        )


class TestQAOAInvariants:
    @given(
        graph_strategy,
        st.floats(-3.0, 3.0),
        st.floats(-1.5, 1.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_expectation_within_spectrum(self, graph, gamma, beta):
        if graph.num_edges == 0:
            return
        simulator = QAOASimulator(graph)
        value = simulator.expectation([gamma], [beta])
        values = all_cut_values(graph)
        assert values.min() - 1e-9 <= value <= values.max() + 1e-9

    @given(graph_strategy, st.floats(0.1, 3.0), st.floats(0.1, 1.4))
    @settings(max_examples=15, deadline=None)
    def test_state_stays_normalized(self, graph, gamma, beta):
        if graph.num_edges == 0:
            return
        state = QAOASimulator(graph).state([gamma, gamma / 2], [beta, beta / 3])
        assert state.norm() == pytest.approx(1.0)

    @given(
        st.integers(4, 10),
        st.integers(0, 10**6),
        st.floats(-2.0, 2.0),
        st.floats(-1.0, 1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_analytic_p1_matches_simulator(self, n, seed, gamma, beta):
        graph = erdos_renyi_graph(n, 0.4, rng=seed)
        expected = (
            QAOASimulator(graph).expectation([gamma], [beta])
            if graph.num_edges
            else 0.0
        )
        assert p1_expectation(graph, gamma, beta) == pytest.approx(
            expected, abs=1e-8
        )

    @given(
        graph_strategy,
        st.floats(-6.0, 6.0),
        st.floats(-3.0, 3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_canonicalization_preserves_expectation(self, graph, gamma, beta):
        if graph.num_edges == 0:
            return
        simulator = QAOASimulator(graph)
        canon_g, canon_b = canonicalize_angles([gamma], [beta])
        assert simulator.expectation([gamma], [beta]) == pytest.approx(
            simulator.expectation(canon_g, canon_b), abs=1e-9
        )
        assert 0 <= canon_g[0] <= np.pi
        assert 0 <= canon_b[0] < np.pi / 2

    @given(
        st.integers(4, 10),
        st.integers(0, 10**6),
        st.floats(0.1, 2.0),
        st.floats(0.05, 1.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_expectation_invariant_under_relabeling(
        self, n, seed, gamma, beta
    ):
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        if graph.num_edges == 0:
            return
        permutation = np.random.default_rng(seed).permutation(n)
        relabeled = relabel(graph, permutation)
        assert QAOASimulator(graph).expectation(
            [gamma], [beta]
        ) == pytest.approx(
            QAOASimulator(relabeled).expectation([gamma], [beta])
        )


class TestGradientInvariants:
    @given(st.integers(4, 8), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_gradient_vanishes_at_stationary_beta(self, n, seed):
        # beta = pi/4: U_B is a product of RX(pi/2)... not stationary in
        # general; but beta gradient at gamma=0 always vanishes because
        # |+> is a mixer eigenstate
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        if graph.num_edges == 0:
            return
        simulator = QAOASimulator(graph)
        rng = np.random.default_rng(seed)
        beta = rng.uniform(0, np.pi / 2)
        _, _, grad_beta = simulator.expectation_and_gradient([0.0], [beta])
        assert abs(grad_beta[0]) < 1e-10

    @given(st.integers(4, 8), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_gradient_antisymmetric_under_time_reversal(self, n, seed):
        # E(-g, -b) = E(g, b) implies grad(-g, -b) = -grad(g, b)
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        if graph.num_edges == 0:
            return
        simulator = QAOASimulator(graph)
        rng = np.random.default_rng(seed)
        gamma, beta = rng.uniform(0.1, 1.5), rng.uniform(0.1, 0.7)
        _, gg, gb = simulator.expectation_and_gradient([gamma], [beta])
        _, gg_neg, gb_neg = simulator.expectation_and_gradient(
            [-gamma], [-beta]
        )
        assert gg_neg[0] == pytest.approx(-gg[0], abs=1e-9)
        assert gb_neg[0] == pytest.approx(-gb[0], abs=1e-9)


class TestGNNInvariants:
    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_predictor_permutation_stability_structural_features(self, seed):
        # with permutation-invariant features, predictions are exactly
        # invariant under node relabeling
        from repro.gnn.batching import GraphBatch
        from repro.gnn.predictor import QAOAParameterPredictor
        from repro.nn.tensor import no_grad

        rng = np.random.default_rng(seed)
        graph = random_regular_graph(8, 3, rng=seed)
        permutation = rng.permutation(8)
        relabeled = relabel(graph, permutation)
        model = QAOAParameterPredictor(
            arch="gcn", p=1, in_dim=5, rng=seed
        )
        model.eval()
        with no_grad():
            out_a = model(
                GraphBatch.from_graphs([graph], feature_kind="structural")
            ).data
            out_b = model(
                GraphBatch.from_graphs([relabeled], feature_kind="structural")
            ).data
        np.testing.assert_allclose(out_a, out_b, atol=1e-9)
