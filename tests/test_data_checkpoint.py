"""Tests for labeling checkpoint/resume (`repro.data.checkpoint`).

The core property: a labeling run that is interrupted (here, by an
injector that fails a task harder than the retry budget) and then
resumed produces a dataset byte-identical to an uninterrupted run —
because shards commit atomically and per-task RNG streams are derived
up front.
"""

import json

import numpy as np
import pytest

from repro.data import (
    GenerationConfig,
    LabelingCheckpoint,
    QAOADataset,
    config_from_manifest,
    generate_dataset,
    record_from_payload,
    record_to_payload,
    sample_graphs,
)
from repro.exceptions import CheckpointError, DatasetError
from repro.runtime import FaultInjector


CONFIG = GenerationConfig(
    num_graphs=6,
    min_nodes=3,
    max_nodes=5,
    optimizer_iters=4,
    seed=11,
    checkpoint_every=2,
)


def dataset_bytes(dataset: QAOADataset, path) -> bytes:
    dataset.save(path)
    return path.read_bytes()


# ----------------------------------------------------------------------
# LabelingCheckpoint mechanics
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_initialize_and_reload(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        assert not ckpt.exists()
        ckpt.initialize({"seed": 1}, {"num_graphs": 4}, 4, 2)
        assert ckpt.exists()
        manifest = ckpt.load_manifest()
        assert manifest["fingerprint"] == {"seed": 1}
        assert manifest["total_tasks"] == 4
        assert manifest["shards"] == {}
        assert ckpt.completed_indices() == []

    def test_initialize_refuses_foreign_checkpoint(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        ckpt.initialize({"seed": 1}, {}, 4, 2)
        with pytest.raises(CheckpointError, match="different generation"):
            ckpt.initialize({"seed": 2}, {}, 4, 2)

    def test_same_fingerprint_reinit_keeps_shards(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        ckpt.initialize({"seed": 1}, {}, 4, 2)
        record = generate_dataset(
            GenerationConfig(
                num_graphs=1, min_nodes=3, max_nodes=3,
                optimizer_iters=2, seed=0,
            )
        ).records[0]
        ckpt.write_shard(0, [0, 1], [record_to_payload(record)] * 2)
        ckpt.initialize({"seed": 1}, {}, 4, 2)
        assert ckpt.completed_indices() == [0, 1]

    def test_validate_reports_mismatched_keys(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        ckpt.initialize({"seed": 1, "p": 1}, {}, 4, 2)
        with pytest.raises(CheckpointError, match=r"\['seed'\]"):
            ckpt.validate({"seed": 2, "p": 1}, 4)
        with pytest.raises(CheckpointError, match="tasks"):
            ckpt.validate({"seed": 1, "p": 1}, 9)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            LabelingCheckpoint(tmp_path / "nope").load_manifest()

    def test_corrupt_manifest_raises(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "manifest.json").write_text('{"format_version"')
        with pytest.raises(CheckpointError, match="corrupt"):
            LabelingCheckpoint(directory).load_manifest()

    def test_wrong_format_version_raises(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"format_version": 99})
        )
        with pytest.raises(CheckpointError, match="format_version"):
            LabelingCheckpoint(directory).load_manifest()

    def test_shard_index_payload_mismatch_raises(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        ckpt.initialize({"seed": 1}, {}, 4, 2)
        with pytest.raises(CheckpointError, match="indices"):
            ckpt.write_shard(0, [0, 1], [{}])

    def test_recommitting_shard_with_other_indices_raises(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        ckpt.initialize({"seed": 1}, {}, 8, 2)
        dataset = generate_dataset(
            GenerationConfig(
                num_graphs=2, min_nodes=3, max_nodes=3,
                optimizer_iters=2, seed=0,
            )
        )
        payloads = [record_to_payload(r) for r in dataset.records]
        ckpt.write_shard(0, [0, 1], payloads)
        with pytest.raises(CheckpointError, match="different indices"):
            ckpt.write_shard(0, [0, 1, 2], payloads + payloads[:1])

    def test_tampered_shard_detected_on_load(self, tmp_path):
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        ckpt.initialize({"seed": 1}, {}, 2, 2)
        dataset = generate_dataset(
            GenerationConfig(
                num_graphs=2, min_nodes=3, max_nodes=3,
                optimizer_iters=2, seed=0,
            )
        )
        ckpt.write_shard(
            0, [0, 1], [record_to_payload(r) for r in dataset.records]
        )
        shard_path = ckpt.shards_dir / "shard_00000.json"
        shard = json.loads(shard_path.read_text())
        shard["indices"] = [0, 7]
        shard_path.write_text(json.dumps(shard))
        with pytest.raises(CheckpointError, match="disagrees"):
            ckpt.load_records()


# ----------------------------------------------------------------------
# Record payload round-trip
# ----------------------------------------------------------------------
def test_record_payload_roundtrip_is_exact():
    dataset = generate_dataset(CONFIG)
    for record in dataset.records:
        clone = record_from_payload(record_to_payload(record))
        assert clone.gammas == record.gammas
        assert clone.betas == record.betas
        assert clone.expectation == record.expectation
        assert clone.graph.edges == record.graph.edges


# ----------------------------------------------------------------------
# generate_dataset with checkpoints
# ----------------------------------------------------------------------
class TestCheckpointedGeneration:
    def test_checkpointed_run_is_byte_identical_to_plain(self, tmp_path):
        plain = generate_dataset(CONFIG)
        checkpointed = generate_dataset(
            CONFIG, checkpoint=tmp_path / "ckpt"
        )
        assert dataset_bytes(plain, tmp_path / "a.json") == dataset_bytes(
            checkpointed, tmp_path / "b.json"
        )
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        assert ckpt.completed_indices() == list(range(CONFIG.num_graphs))

    def test_killed_run_resumes_byte_identical(self, tmp_path):
        uninterrupted = generate_dataset(CONFIG)
        # Simulate a mid-run crash: task 4 (third shard) fails harder
        # than the retry budget, so shards 0 and 1 are durably written
        # and the run dies before shard 2 commits.
        with pytest.raises(DatasetError, match="labeling failed"):
            generate_dataset(
                CONFIG,
                checkpoint=tmp_path / "ckpt",
                fault_injector=FaultInjector(fail_tasks={4: 99}),
            )
        ckpt = LabelingCheckpoint(tmp_path / "ckpt")
        assert ckpt.completed_indices() == [0, 1, 2, 3]
        resumed = generate_dataset(
            CONFIG, checkpoint=tmp_path / "ckpt", resume=True
        )
        assert dataset_bytes(
            uninterrupted, tmp_path / "a.json"
        ) == dataset_bytes(resumed, tmp_path / "b.json")

    def test_resume_skips_completed_shards(self, tmp_path):
        generate_dataset(CONFIG, checkpoint=tmp_path / "ckpt")
        # A resume over a complete checkpoint must label nothing: an
        # injector that would fail every task never fires.
        resumed = generate_dataset(
            CONFIG,
            checkpoint=tmp_path / "ckpt",
            resume=True,
            fault_injector=FaultInjector(failure_rate=1.0),
        )
        assert len(resumed) == CONFIG.num_graphs

    def test_resume_with_other_config_raises(self, tmp_path):
        generate_dataset(CONFIG, checkpoint=tmp_path / "ckpt")
        from dataclasses import replace

        other = replace(CONFIG, seed=99)
        with pytest.raises(CheckpointError, match="mismatched"):
            generate_dataset(
                other, checkpoint=tmp_path / "ckpt", resume=True
            )

    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            generate_dataset(
                CONFIG, checkpoint=tmp_path / "missing", resume=True
            )

    def test_config_from_manifest_roundtrip(self, tmp_path):
        generate_dataset(CONFIG, checkpoint=tmp_path / "ckpt")
        manifest = LabelingCheckpoint(tmp_path / "ckpt").load_manifest()
        assert config_from_manifest(manifest) == CONFIG

    def test_config_from_manifest_rejects_unknown_fields(self):
        with pytest.raises(DatasetError, match="unknown fields"):
            config_from_manifest(
                {"config": {"num_graphs": 2, "warp_factor": 9}}
            )


# ----------------------------------------------------------------------
# Acceptance: injected faults + retries across backends
# ----------------------------------------------------------------------
class TestFaultedLabeling:
    def test_one_failure_per_task_with_retry_matches_clean_serial(self):
        from dataclasses import replace

        clean = generate_dataset(CONFIG)
        for backend in ("serial", "thread"):
            config = replace(CONFIG, backend=backend, workers=2, retries=1)
            faulted = generate_dataset(
                config, fault_injector=FaultInjector(failure_rate=1.0)
            )
            np.testing.assert_array_equal(
                np.asarray(clean.targets()), np.asarray(faulted.targets())
            )

    def test_failure_without_retry_names_graphs(self):
        with pytest.raises(DatasetError, match="labeling failed"):
            generate_dataset(
                CONFIG, fault_injector=FaultInjector(fail_tasks={0: 1})
            )


# ----------------------------------------------------------------------
# Satellite: bounded resampling in sample_graphs
# ----------------------------------------------------------------------
class TestResampleCap:
    def test_infeasible_config_fails_loudly(self):
        config = GenerationConfig(
            num_graphs=1, min_nodes=2, max_nodes=2,
            max_resample_attempts=10, seed=0,
        )
        with pytest.raises(DatasetError, match="stalled"):
            sample_graphs(config)

    def test_cap_validation(self):
        config = GenerationConfig(num_graphs=1, max_resample_attempts=0)
        with pytest.raises(DatasetError, match="max_resample_attempts"):
            sample_graphs(config)

    def test_feasible_config_unaffected_by_cap(self):
        graphs = sample_graphs(CONFIG)
        assert len(graphs) == CONFIG.num_graphs
