"""Tests for the WL canonical hash (`repro.graphs.canonical`)."""

import numpy as np
import pytest

from repro.graphs.canonical import (
    WL_HASH_VERSION,
    wl_canonical_hash,
    wl_color_classes,
    wl_indistinguishable,
)
from repro.graphs.generators import (
    feasible_regular_degrees,
    random_connected_graph,
    random_regular_graph,
)
from repro.graphs.graph import Graph


def relabel(graph: Graph, perm) -> Graph:
    """Apply a node permutation (old label -> perm[old])."""
    edges = [(int(perm[u]), int(perm[v])) for u, v in graph.edges]
    return Graph.from_edges(graph.num_nodes, edges, graph.weights)


def final_colors(graph: Graph):
    """The stable (last-round) WL coloring."""
    return wl_color_classes(graph)[-1]


class TestColorClasses:
    def test_regular_graph_is_one_class(self, petersen_like):
        assert len(set(final_colors(petersen_like))) == 1

    def test_star_splits_hub_from_leaves(self):
        colors = final_colors(Graph.star(5))
        assert len(set(colors)) == 2
        # the hub is alone in its class
        hub_color = colors[0]
        assert sum(1 for c in colors if c == hub_color) == 1

    def test_path_symmetry(self):
        colors = final_colors(Graph.path(5))
        assert colors[0] == colors[4]
        assert colors[1] == colors[3]
        assert colors[0] != colors[2]

    def test_weights_refine_classes(self, triangle, weighted_triangle):
        assert len(set(final_colors(triangle))) == 1
        assert len(set(final_colors(weighted_triangle))) > 1


class TestHashInvariance:
    def test_relabel_invariant(self, rng):
        for _ in range(20):
            n = int(rng.integers(4, 13))
            graph = random_connected_graph(n, rng=int(rng.integers(0, 2**31)))
            permuted = relabel(graph, rng.permutation(n))
            assert wl_canonical_hash(graph) == wl_canonical_hash(permuted)
            assert wl_indistinguishable(graph, permuted)

    def test_relabel_invariant_weighted(self, rng):
        n = 6
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]
        weights = tuple(float(w) for w in rng.uniform(0.5, 2.0, len(edges)))
        graph = Graph.from_edges(n, edges, weights)
        perm = rng.permutation(n)
        assert wl_canonical_hash(graph) == wl_canonical_hash(
            relabel(graph, perm)
        )

    def test_deterministic_across_calls(self, triangle):
        assert wl_canonical_hash(triangle) == wl_canonical_hash(triangle)

    def test_hash_is_hex_digest(self, triangle):
        digest = wl_canonical_hash(triangle)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


class TestHashSensitivity:
    def test_edge_edit_changes_hash(self):
        square = Graph.cycle(4)
        with_chord = Graph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )
        assert wl_canonical_hash(square) != wl_canonical_hash(with_chord)

    def test_edge_removal_changes_hash(self, triangle):
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert wl_canonical_hash(triangle) != wl_canonical_hash(path)

    def test_weight_edit_changes_hash(self, triangle, weighted_triangle):
        assert wl_canonical_hash(triangle) != wl_canonical_hash(
            weighted_triangle
        )

    def test_node_count_changes_hash(self):
        assert wl_canonical_hash(Graph.cycle(5)) != wl_canonical_hash(
            Graph.cycle(6)
        )

    def test_version_in_preimage(self, triangle, monkeypatch):
        before = wl_canonical_hash(triangle)
        monkeypatch.setattr(
            "repro.graphs.canonical.WL_HASH_VERSION", WL_HASH_VERSION + 1
        )
        assert wl_canonical_hash(triangle) != before


class TestCollisionSmoke:
    def test_distinct_regular_classes_hash_distinctly(self):
        """Every (n, d) class over the generator's range gets its own hash.

        Same-(n, d) regular graphs intentionally collide (1-WL — exactly
        the GNN's expressiveness bound), but across classes the hash
        must separate.
        """
        digests = {}
        for n in range(4, 13):
            for d in feasible_regular_degrees(n):
                graph = random_regular_graph(n, d, rng=7)
                digest = wl_canonical_hash(graph)
                assert digest not in digests, (
                    f"({n},{d}) collides with {digests[digest]}"
                )
                digests[digest] = (n, d)
        assert len(digests) >= 30

    def test_same_class_regular_graphs_collide(self):
        """The documented 1-WL limit: same-(n, d) regular graphs collide."""
        a = random_regular_graph(10, 3, rng=0)
        b = random_regular_graph(10, 3, rng=1)
        assert wl_canonical_hash(a) == wl_canonical_hash(b)

    def test_random_connected_graphs_mostly_distinct(self, rng):
        digests = {
            wl_canonical_hash(
                random_connected_graph(
                    int(rng.integers(6, 13)), rng=int(rng.integers(0, 2**31))
                )
            )
            for _ in range(40)
        }
        assert len(digests) >= 35


class TestValidation:
    def test_rejects_non_graph(self):
        with pytest.raises(AttributeError):
            wl_canonical_hash(None)

    def test_single_node(self):
        digest = wl_canonical_hash(Graph(1, ()))
        assert len(digest) == 64
