"""End-to-end tests for the HTTP serving front-end."""

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ReproError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.graphs.io import graph_to_text
from repro.serving import (
    PredictionService,
    ServingConfig,
    ServingHTTPServer,
    graph_from_payload,
)


@pytest.fixture(scope="module")
def server():
    """A live server on an ephemeral port, shared across this module."""
    model = QAOAParameterPredictor(arch="gcn", p=1, hidden_dim=16, rng=3)
    model.eval()
    service = PredictionService(
        model=model, config=ServingConfig(max_wait_ms=1.0)
    )
    with ServingHTTPServer(service, port=0).start_background() as running:
        yield running


def get(server, route):
    url = f"http://127.0.0.1:{server.port}{route}"
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


def post(server, route, payload):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{route}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestGraphFromPayload:
    def test_edge_list_form(self):
        graph = graph_from_payload(
            {"num_nodes": 3, "edges": [[0, 1], [1, 2]]}
        )
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_weighted_edge_list(self):
        graph = graph_from_payload(
            {
                "num_nodes": 3,
                "edges": [[0, 1], [1, 2]],
                "weights": [2.0, 0.5],
            }
        )
        assert graph.weights == (2.0, 0.5)

    def test_text_form(self, triangle):
        graph = graph_from_payload({"graph": graph_to_text(triangle)})
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_missing_keys_raises_repro_error(self):
        with pytest.raises(ReproError, match="num_nodes"):
            graph_from_payload({"edges": [[0, 1]]})

    def test_malformed_edges_raise_repro_error(self):
        with pytest.raises(ReproError, match="malformed"):
            graph_from_payload({"num_nodes": 2, "edges": [["x", "y"]]})

    def test_non_object_raises_repro_error(self):
        with pytest.raises(ReproError, match="JSON object"):
            graph_from_payload([1, 2, 3])


class TestHTTPEndpoints:
    def test_predict_round_trip(self, server):
        status, body = post(
            server,
            "/predict",
            {"num_nodes": 4, "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]},
        )
        assert status == 200
        assert body["source"] == "model"
        assert len(body["gammas"]) == 1
        assert len(body["betas"]) == 1
        assert body["latency_ms"] >= 0

    def test_isomorphic_repeat_is_cached(self, server):
        edges = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 0], [0, 2]]
        _, first = post(server, "/predict", {"num_nodes": 5, "edges": edges})
        relabeled = [[(u + 2) % 5, (v + 2) % 5] for u, v in edges]
        _, second = post(
            server, "/predict", {"num_nodes": 5, "edges": relabeled}
        )
        assert second["cached"]
        assert second["gammas"] == first["gammas"]
        assert second["betas"] == first["betas"]

    def test_oversized_graph_falls_back(self, server):
        n = 25  # beyond the model's 15-node feature cap
        edges = [[i, (i + 1) % n] for i in range(n)]
        status, body = post(
            server, "/predict", {"num_nodes": n, "edges": edges}
        )
        assert status == 200
        assert body["source"] in ("fixed_angle", "analytic", "random")

    def test_bad_payload_is_400_with_message(self, server):
        status, body = post(server, "/predict", {"edges": [[0, 1]]})
        assert status == 400
        assert "num_nodes" in body["error"]

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/predict",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, server):
        status, body = post(server, "/frobnicate", {})
        assert status in (400, 404)

    def test_metrics_endpoint(self, server):
        post(server, "/predict", {"num_nodes": 3, "edges": [[0, 1], [1, 2]]})
        status, body = get(server, "/metrics")
        assert status == 200
        assert body["requests"] >= 1
        assert "latency" in body
        assert "cache" in body

    def test_healthz_endpoint(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["models"][0]["arch"] == "gcn"
        assert body["config"]["max_batch_size"] == 32

    def test_ephemeral_port_reported(self, server):
        assert server.port > 0


class TestCLIServePieces:
    def test_parse_edge_spec(self):
        from repro.cli import _parse_edge_spec

        graph = _parse_edge_spec("0-1,1-2,2-0", None)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        explicit = _parse_edge_spec("0-1", 5)
        assert explicit.num_nodes == 5

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.max_batch_size == 32
        assert args.cache_size == 4096

    def test_predict_requires_graph_or_edges(self):
        from repro.cli import build_parser, main

        args = build_parser().parse_args(["predict"])
        assert args.command == "predict"
        with pytest.raises(SystemExit):
            main(["predict"])


class TestClientDisconnects:
    """Satellite: a client hanging up mid-response must not crash the
    handler thread — the response is logged, counted, and dropped."""

    def _bare_handler(self, service, wfile):
        from repro.serving.http import _make_handler

        handler_cls = _make_handler(service)
        handler = object.__new__(handler_cls)
        handler.wfile = wfile
        handler.rfile = None
        handler.request_version = "HTTP/1.1"
        handler.requestline = "POST /predict HTTP/1.1"
        handler.command = "POST"
        handler.path = "/predict"
        handler.client_address = ("127.0.0.1", 1234)
        handler.close_connection = False
        return handler

    def test_broken_pipe_in_send_is_dropped_and_counted(self):
        service = PredictionService(config=ServingConfig())

        class BrokenWfile:
            def write(self, data):
                raise BrokenPipeError("client went away")

            def flush(self):
                pass

        handler = self._bare_handler(service, BrokenWfile())
        handler._send(200, {"ok": True})  # must not raise
        assert service.metrics.dropped_responses == 1
        assert handler.close_connection is True

    def test_connection_reset_in_send_is_dropped_and_counted(self):
        service = PredictionService(config=ServingConfig())

        class ResetWfile:
            def write(self, data):
                raise ConnectionResetError("reset by peer")

            def flush(self):
                pass

        handler = self._bare_handler(service, ResetWfile())
        handler._send(500, {"error": "x"})
        assert service.metrics.dropped_responses == 1

    def test_intact_pipe_still_writes(self):
        import io

        service = PredictionService(config=ServingConfig())
        buffer = io.BytesIO()
        handler = self._bare_handler(service, buffer)
        handler._send(200, {"ok": True})
        written = buffer.getvalue()
        assert b"200" in written
        assert b'{"ok": true}' in written
        assert service.metrics.dropped_responses == 0

    def test_dropped_responses_surface_in_metrics_snapshot(self):
        service = PredictionService(config=ServingConfig())
        service.metrics.record_dropped_response()
        snapshot = service.metrics_snapshot()
        assert snapshot["fault_tolerance"]["dropped_responses"] == 1
