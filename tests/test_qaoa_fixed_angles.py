"""Tests for the fixed-angle table."""

import numpy as np
import pytest

from repro.exceptions import FixedAngleLookupError
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.fixed_angles import (
    MAX_COVERED_DEGREE,
    MIN_COVERED_DEGREE,
    FixedAngleTable,
    fixed_angles_for_graph,
    lookup_fixed_angles,
)
from repro.qaoa.simulator import QAOASimulator


@pytest.fixture(scope="module")
def table():
    # small ensembles keep the transfer-angle optimization fast in tests
    return FixedAngleTable(
        ensemble_size=3, ensemble_nodes=8, optimizer_iters=60, restarts=2, rng=1
    )


class TestCoverage:
    def test_window(self, table):
        assert table.covers(3)
        assert table.covers(11)
        assert not table.covers(2)
        assert not table.covers(12)

    def test_lookup_outside_raises(self, table):
        with pytest.raises(FixedAngleLookupError):
            table.lookup(2)
        with pytest.raises(FixedAngleLookupError):
            table.lookup(14)

    def test_constants_match_paper_statement(self):
        assert MIN_COVERED_DEGREE == 3
        assert MAX_COVERED_DEGREE == 11


class TestP1Entries:
    def test_p1_matches_closed_form(self, table):
        entry = table.lookup(3, p=1)
        gamma, beta = p1_optimal_angles_regular(3)
        assert entry.gammas[0] == pytest.approx(gamma)
        assert entry.betas[0] == pytest.approx(beta)

    def test_p1_mean_ratio_reasonable(self, table):
        entry = table.lookup(3, p=1)
        # fixed-angle conjecture: cubic graphs achieve ~0.69+ at p=1
        assert entry.mean_ratio > 0.6

    def test_cached(self, table):
        assert table.lookup(3, p=1) is table.lookup(3, p=1)


class TestTransferAngles:
    def test_p2_beats_p1_on_ensemble(self, table):
        p1 = table.lookup(3, p=1)
        p2 = table.lookup(3, p=2)
        assert p2.mean_ratio >= p1.mean_ratio - 0.02
        assert len(p2.gammas) == 2

    def test_transfer_angles_generalize(self, table):
        # angles optimized on the ensemble should beat random angles on a
        # fresh graph of the same degree
        entry = table.lookup(3, p=2)
        graph = random_regular_graph(10, 3, rng=77)
        simulator = QAOASimulator(graph)
        fixed = simulator.approximation_ratio(
            np.asarray(entry.gammas), np.asarray(entry.betas)
        )
        rng = np.random.default_rng(5)
        random_ratios = [
            simulator.approximation_ratio(
                rng.uniform(0, 2 * np.pi, 2), rng.uniform(0, np.pi, 2)
            )
            for _ in range(10)
        ]
        assert fixed > np.mean(random_ratios)


class TestGraphLookup:
    def test_for_regular_graph(self, petersen_like):
        entry = fixed_angles_for_graph(petersen_like, p=1)
        assert entry.degree == 3

    def test_rejects_irregular(self):
        with pytest.raises(FixedAngleLookupError, match="regular"):
            fixed_angles_for_graph(Graph.star(5), p=1)

    def test_module_level_lookup(self):
        entry = lookup_fixed_angles(3, p=1)
        assert entry.p == 1
