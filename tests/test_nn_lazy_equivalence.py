"""Bitwise eager-vs-lazy equivalence fuzzing for the tensor engine.

The lazy engine's contract is not "numerically close" — it is **the
same bits**: every fused kernel replays the exact numpy call sequence
the eager path performs. These tests enforce that contract with seeded
random op-DAGs (mixed shapes, broadcasts, reductions, views, indexing,
segment ops) whose forward values and leaf gradients are compared with
``assert_array_equal`` between the two engines, in both the normal and
``batch_invariant()`` modes.

Every DAG is generated deterministically from its seed, so a failure
reproduces from the seed alone.
"""

import contextlib

import numpy as np
import pytest

from repro.nn import Tensor, concat, eager, huber_loss, stack, where
from repro.nn.segment import (
    SegmentPlan,
    gather,
    reference_scatter,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn.tensor import batch_invariant


def _random_dag(seed: int, n_ops: int = 24):
    """Build a random op-DAG, backprop, and return (loss, leaf grads).

    All pool tensors stay 2-D; binary operands are broadcast-aligned by
    reducing the second operand to a row vector when shapes differ.
    """
    rng = np.random.default_rng(seed)
    leaves = [
        Tensor(rng.normal(size=shape), requires_grad=True)
        for shape in [(4, 5), (4, 5), (1, 5)]
    ]
    pool = list(leaves)

    def pick():
        return pool[int(rng.integers(0, len(pool)))]

    def aligned_pair():
        t1 = pick()
        candidates = [t for t in pool if t.shape[1] == t1.shape[1]]
        t2 = candidates[int(rng.integers(0, len(candidates)))]
        if t1.shape != t2.shape:
            t2 = t2.mean(axis=0, keepdims=True)
        return t1, t2

    for _ in range(n_ops):
        roll = int(rng.integers(0, 16))
        t = pick()
        if roll == 0:
            out = t.tanh()
        elif roll == 1:
            out = t.sigmoid()
        elif roll == 2:
            out = t.relu()
        elif roll == 3:
            out = t.leaky_relu(0.1)
        elif roll == 4:
            out = t.tanh().exp()
        elif roll == 5:
            out = (t.abs() + 1.0).log()
        elif roll == 6:
            out = (t.abs() + 0.5).sqrt()
        elif roll == 7:
            exponent = [2, 0.5, 3.0, -1.0][int(rng.integers(0, 4))]
            out = (t.abs() + 0.5) ** exponent
        elif roll == 8:
            t1, t2 = aligned_pair()
            out = [
                t1 + t2,
                t1 - t2,
                t1 * t2,
                t1 / (t2.abs() + 1.0),
            ][int(rng.integers(0, 4))]
        elif roll == 9:
            out = [t * 1.7, t + 0.3, 2.0 - t, 1.0 / (t.abs() + 1.0)][
                int(rng.integers(0, 4))
            ]
        elif roll == 10:
            weight = Tensor(
                rng.normal(size=(t.shape[1], int(rng.integers(2, 6)))),
                requires_grad=True,
            )
            leaves.append(weight)
            out = t @ weight
        elif roll == 11:
            axis = [None, 0, 1][int(rng.integers(0, 3))]
            reduce = [Tensor.sum, Tensor.mean, Tensor.max][
                int(rng.integers(0, 3))
            ]
            out = reduce(t, axis=axis, keepdims=True)
        elif roll == 12:
            out = t.T.T if t.shape[0] != t.shape[1] else t.T
        elif roll == 13:
            rows = t.shape[0]
            if int(rng.integers(0, 2)):
                out = t[0 : max(1, rows - 1), :]
            else:
                idx = rng.integers(0, rows, size=rows + 1)
                out = t[np.asarray(idx)]
        elif roll == 14:
            t1, t2 = aligned_pair()
            out = where(t1 > 0.0, t1, t2 * 0.5)
        else:
            t2 = pick()
            if t2.shape == t.shape:
                stacked = stack([t, t2], axis=0)
                out = stacked.reshape(2 * t.shape[0], t.shape[1])
            else:
                out = concat([t, t * -1.0], axis=0)
        pool.append(out)

    loss = None
    for t in pool[-5:]:
        term = t.mean()
        loss = term if loss is None else loss + term
    loss.backward()
    grads = [leaf.grad.copy() if leaf.grad is not None else None
             for leaf in leaves]
    return loss.item(), grads


def _segment_dag(seed: int, use_plan: bool, use_reference: bool):
    rng = np.random.default_rng(seed)
    n_items, n_segments, features = 14, 5, 3
    index = rng.integers(0, n_segments, size=n_items).astype(np.int64)
    x = Tensor(rng.normal(size=(n_items, features)), requires_grad=True)
    scores = Tensor(rng.normal(size=(n_items, 1)), requires_grad=True)
    plan = SegmentPlan(index, n_segments) if use_plan else None
    scatter_ctx = reference_scatter() if use_reference else (
        contextlib.nullcontext()
    )
    with scatter_ctx:
        pooled = segment_sum(x, index, n_segments, plan=plan)
        mixed = (
            pooled
            + segment_mean(x, index, n_segments, plan=plan)
            + segment_max(x * 0.5, index, n_segments, plan=plan)
        )
        attn = segment_softmax(scores, index, n_segments, plan=plan)
        spread = gather(mixed, index, plan=plan) * attn
        loss = (spread * spread).mean() + huber_loss(
            spread, np.zeros(spread.shape)
        )
        loss.backward()
    return loss.item(), x.grad.copy(), scores.grad.copy()


def _run_both(build, *args):
    lazy = build(*args)
    with eager():
        ref = build(*args)
    return lazy, ref


def _assert_results_equal(lazy, ref):
    for got, want in zip(lazy, ref):
        if isinstance(want, (list, tuple)):
            _assert_results_equal(got, want)
        elif want is None:
            assert got is None
        else:
            np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("seed", range(12))
def test_random_dag_bitwise(seed):
    lazy, ref = _run_both(_random_dag, seed)
    _assert_results_equal(lazy, ref)


@pytest.mark.parametrize("seed", range(4))
def test_random_dag_bitwise_batch_invariant(seed):
    def build(s):
        with batch_invariant():
            return _random_dag(s)

    lazy, ref = _run_both(build, seed)
    _assert_results_equal(lazy, ref)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("use_plan", [False, True])
def test_segment_dag_bitwise(seed, use_plan):
    lazy, ref = _run_both(_segment_dag, seed, use_plan, False)
    _assert_results_equal(lazy, ref)


@pytest.mark.parametrize("seed", range(3))
def test_segment_dag_bitwise_reference_scatter(seed):
    lazy, ref = _run_both(_segment_dag, seed, False, True)
    _assert_results_equal(lazy, ref)


def test_training_step_bitwise():
    """Full train steps (forward, backward, Adam) match bit for bit."""
    from repro.nn import Adam
    from repro.nn.layers import MLP

    def run():
        rng = np.random.default_rng(0)
        model = MLP([6, 16, 2], rng=np.random.default_rng(7))
        optimizer = Adam(model.parameters(), learning_rate=1e-2)
        x = rng.normal(size=(12, 6))
        y = rng.normal(size=(12, 2))
        losses = []
        for _ in range(4):
            loss = huber_loss(model(Tensor(x)), Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        return losses, [p.data.copy() for p in model.parameters()]

    lazy_losses, lazy_params = run()
    with eager():
        ref_losses, ref_params = run()
    assert lazy_losses == ref_losses
    for got, want in zip(lazy_params, ref_params):
        np.testing.assert_array_equal(got, want)


def test_batch_invariant_captured_at_record_time():
    """Realizing after the context exits keeps the recorded kernel."""

    def run():
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(5, 4)))
        b = Tensor(rng.normal(size=(4, 3)))
        with batch_invariant():
            out = (a @ b).tanh()
        return out.data.copy()  # realized outside the context

    lazy = run()
    with eager():
        ref = run()
    np.testing.assert_array_equal(lazy, ref)
