"""TrainingProfiler accounting, report schema, and the null profiler."""

from __future__ import annotations

import pytest

from repro.profiling import (
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    TrainingProfiler,
)


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def profiler(clock):
    return TrainingProfiler(clock=clock)


class TestAccumulation:
    def test_phase_accumulates_across_calls(self, profiler, clock):
        for _ in range(3):
            with profiler.phase("forward"):
                clock.advance(0.5)
        stats = profiler.report()["phases"]["forward"]
        assert stats["total_s"] == pytest.approx(1.5)
        assert stats["calls"] == 3
        assert stats["mean_s"] == pytest.approx(0.5)

    def test_phase_records_even_on_exception(self, profiler, clock):
        with pytest.raises(RuntimeError):
            with profiler.phase("backward"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        stats = profiler.report()["phases"]["backward"]
        assert stats["total_s"] == pytest.approx(1.0)
        assert stats["calls"] == 1

    def test_add_records_premeasured_time(self, profiler):
        profiler.add("compile", 0.25)
        profiler.add("compile", 0.75)
        stats = profiler.report()["phases"]["compile"]
        assert stats["total_s"] == pytest.approx(1.0)
        assert stats["calls"] == 2

    def test_phases_report_in_first_use_order(self, profiler, clock):
        for name in ("compile", "forward", "backward", "forward"):
            with profiler.phase(name):
                clock.advance(0.1)
        assert list(profiler.report()["phases"]) == [
            "compile",
            "forward",
            "backward",
        ]


class TestReportSchema:
    def test_schema_and_totals(self, profiler, clock):
        with profiler.phase("forward"):
            clock.advance(2.0)
        clock.advance(1.0)  # unaccounted wall time
        report = profiler.report()
        assert report["schema"] == PROFILE_SCHEMA_VERSION
        assert report["total_s"] == pytest.approx(3.0)
        assert report["accounted_s"] == pytest.approx(2.0)

    def test_shares_sum_to_one(self, profiler, clock):
        for name, seconds in (("a", 1.0), ("b", 3.0)):
            with profiler.phase(name):
                clock.advance(seconds)
        phases = profiler.report()["phases"]
        assert phases["a"]["share"] == pytest.approx(0.25)
        assert phases["b"]["share"] == pytest.approx(0.75)
        assert sum(s["share"] for s in phases.values()) == pytest.approx(1.0)

    def test_empty_profiler_report(self, profiler):
        report = profiler.report()
        assert report["phases"] == {}
        assert report["accounted_s"] == 0.0

    def test_enabled_flag(self, profiler):
        assert profiler.enabled is True
        assert NULL_PROFILER.enabled is False


class TestFormatReport:
    def test_contains_phase_rows(self, profiler, clock):
        with profiler.phase("optimizer"):
            clock.advance(0.004)
        text = profiler.format_report()
        assert "training profile" in text
        assert "optimizer" in text
        assert "4.0ms" in text

    def test_null_profiler_format(self):
        assert NULL_PROFILER.format_report() == "profiling disabled"


class TestNullProfiler:
    def test_noop_interface(self):
        with NULL_PROFILER.phase("anything"):
            pass
        NULL_PROFILER.add("anything", 1.0)
        assert NULL_PROFILER.report() is None
