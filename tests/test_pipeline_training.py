"""Tests for the model training loop."""

import numpy as np
import pytest

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.training import Trainer, TrainingConfig, train_predictor

from tests.test_data_dataset import make_record


class TestTrainer:
    def test_loss_decreases(self, tiny_dataset):
        model = QAOAParameterPredictor(arch="gcn", p=1, dropout=0.0, rng=0)
        trainer = Trainer(model, TrainingConfig(epochs=25, seed=0))
        history = trainer.fit(tiny_dataset)
        assert len(history.losses) == 25
        assert history.losses[-1] < history.losses[0]

    def test_history_tracks_learning_rate(self, tiny_dataset):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        trainer = Trainer(model, TrainingConfig(epochs=5, seed=0))
        history = trainer.fit(tiny_dataset)
        assert len(history.learning_rates) == 5
        assert history.learning_rates[0] == pytest.approx(1e-3)

    def test_validation_losses_recorded(self, tiny_dataset):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        trainer = Trainer(model, TrainingConfig(epochs=3, seed=0))
        history = trainer.fit(tiny_dataset, validation=tiny_dataset[:5])
        assert len(history.validation_losses) == 3

    def test_callback_invoked(self, tiny_dataset):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        trainer = Trainer(model, TrainingConfig(epochs=4, seed=0))
        seen = []
        trainer.fit(tiny_dataset, callback=lambda e, l: seen.append(e))
        assert seen == [0, 1, 2, 3]

    def test_empty_dataset_rejected(self):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        trainer = Trainer(model)
        with pytest.raises(DatasetError):
            trainer.fit(QAOADataset())

    def test_depth_mismatch_rejected(self):
        model = QAOAParameterPredictor(arch="gcn", p=2, rng=0)
        trainer = Trainer(model)
        with pytest.raises(DatasetError, match="depth"):
            trainer.fit(QAOADataset([make_record(p=1)]))

    def test_scheduler_reduces_on_plateau(self):
        # identical graphs with conflicting targets: the loss has an
        # irreducible floor, so it must plateau and the LR must drop
        conflicting = [make_record(ratio=0.9) for _ in range(4)]
        conflicting += [
            r.with_label([2.0], [1.0], r.expectation, r.approximation_ratio,
                         "optimized")
            for r in conflicting
        ]
        dataset = QAOADataset(conflicting)
        model = QAOAParameterPredictor(arch="gcn", p=1, dropout=0.0, rng=0)
        config = TrainingConfig(epochs=80, scheduler_patience=3, seed=0)
        trainer = Trainer(model, config)
        history = trainer.fit(dataset)
        assert history.learning_rates[-1] < history.learning_rates[0]

    def test_min_lr_respected(self, tiny_dataset):
        model = QAOAParameterPredictor(arch="gcn", p=1, rng=0)
        config = TrainingConfig(epochs=40, scheduler_patience=0, seed=0)
        trainer = Trainer(model, config)
        history = trainer.fit(tiny_dataset)
        assert history.learning_rates[-1] >= config.scheduler_min_lr - 1e-12

    def test_evaluate_loss_eval_mode(self, tiny_dataset):
        model = QAOAParameterPredictor(arch="gcn", p=1, dropout=0.5, rng=0)
        trainer = Trainer(model, TrainingConfig(epochs=1, seed=0))
        a = trainer.evaluate_loss(tiny_dataset)
        b = trainer.evaluate_loss(tiny_dataset)
        assert a == pytest.approx(b)  # dropout off -> deterministic

    def test_deterministic_training(self, tiny_dataset):
        def run():
            model = QAOAParameterPredictor(arch="gcn", p=1, rng=3)
            trainer = Trainer(model, TrainingConfig(epochs=5, seed=3))
            return trainer.fit(tiny_dataset).losses

        assert run() == pytest.approx(run())


class TestTrainPredictor:
    def test_one_call_convenience(self, tiny_dataset):
        model = train_predictor(
            tiny_dataset,
            arch="sage",
            config=TrainingConfig(epochs=5, seed=0),
            rng=0,
        )
        assert model.arch == "sage"
        assert not model.training  # returned in eval mode
        gammas, betas = model.predict_angles(tiny_dataset[0].graph)
        assert gammas.shape == (1,)

    def test_depth_inferred_from_dataset(self):
        dataset = QAOADataset([make_record(p=2) for _ in range(6)])
        model = train_predictor(
            dataset, arch="gcn", config=TrainingConfig(epochs=2, seed=0), rng=0
        )
        assert model.p == 2
