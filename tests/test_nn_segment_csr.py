"""CSR segment kernels vs the scatter reference, bit for bit or in ulp.

The contract under test (see ``repro.nn.segment``):

- the default bincount scatter is **bitwise identical** to the seed
  ``np.add.at`` kernel (same accumulation order);
- ``SegmentPlan`` reductions (``reduceat``) match the reference within
  float tolerance for sums and **bitwise** for maxima;
- both hold through the backward pass and under ``batch_invariant()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.segment import (
    SegmentPlan,
    _scatter_add,
    gather,
    reference_scatter,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn.tensor import Tensor, batch_invariant


def _random_case(seed, items, segments, features=4):
    rng = np.random.default_rng(seed)
    index = rng.integers(0, segments, size=items).astype(np.int64)
    data = rng.normal(size=(items, features))
    return index, data


def _run_op(op, data, index, segments, plan):
    x = Tensor(data, requires_grad=True)
    out = op(x, index, segments, plan=plan)
    upstream = np.cos(np.arange(out.data.size, dtype=np.float64)).reshape(
        out.data.shape
    )
    (out * Tensor(upstream)).sum().backward()
    return out.data, x.grad


INDEX_CASES = [
    (0, 40, 7),     # random many-to-few
    (1, 40, 60),    # guaranteed empty segments
    (2, 1, 3),      # single item
    (3, 12, 1),     # single segment (single-node-graph pooling)
]


class TestBincountScatter:
    @pytest.mark.parametrize("seed,items,segments", INDEX_CASES)
    def test_bitwise_identical_to_add_at(self, seed, items, segments):
        index, data = _random_case(seed, items, segments)
        shape = (segments, data.shape[1])
        fast = _scatter_add(shape, index, data, plan=None)
        with reference_scatter():
            ref = _scatter_add(shape, index, data, plan=None)
        assert np.array_equal(fast, ref)

    def test_bitwise_identical_1d(self):
        index, data = _random_case(5, 30, 6, features=1)
        values = data[:, 0]
        fast = _scatter_add((6,), index, values, plan=None)
        with reference_scatter():
            ref = _scatter_add((6,), index, values, plan=None)
        assert np.array_equal(fast, ref)

    def test_zero_items(self):
        out = _scatter_add(
            (4, 3), np.zeros(0, dtype=np.int64), np.zeros((0, 3)), plan=None
        )
        assert np.array_equal(out, np.zeros((4, 3)))


class TestSegmentPlan:
    def test_sorted_index_skips_permutation(self):
        plan = SegmentPlan(np.array([0, 0, 1, 2, 2, 2]), 4)
        assert plan.is_sorted and plan.perm is None
        assert list(plan.counts) == [2, 1, 3, 0]

    def test_unsorted_index_gets_stable_perm(self):
        index = np.array([2, 0, 1, 0, 2])
        plan = SegmentPlan(index, 3)
        assert not plan.is_sorted
        assert np.array_equal(index[plan.perm], np.sort(index))

    def test_validation(self):
        with pytest.raises(ModelError):
            SegmentPlan(np.array([[0, 1]]), 2)  # not 1-D
        with pytest.raises(ModelError):
            SegmentPlan(np.array([-1, 0]), 2)  # negative
        with pytest.raises(ModelError):
            SegmentPlan(np.array([0, 5]), 2)  # out of range

    def test_mismatched_plan_rejected_at_call_site(self):
        plan = SegmentPlan(np.array([0, 1, 1]), 2)
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        with pytest.raises(ModelError):
            segment_sum(x, np.array([0, 1, 1, 0]), 2, plan=plan)

    def test_empty_index(self):
        plan = SegmentPlan(np.zeros(0, dtype=np.int64), 3)
        out = plan.sum_into(np.zeros((0, 2)))
        assert np.array_equal(out, np.zeros((3, 2)))


class TestCsrEquivalence:
    """Plan path vs reference path, forward and backward."""

    @pytest.mark.parametrize("seed,items,segments", INDEX_CASES)
    @pytest.mark.parametrize("op", [segment_sum, segment_mean])
    def test_sum_ops(self, op, seed, items, segments):
        index, data = _random_case(seed, items, segments)
        plan = SegmentPlan(index, segments)
        out_csr, grad_csr = _run_op(op, data, index, segments, plan)
        with reference_scatter():
            out_ref, grad_ref = _run_op(op, data, index, segments, None)
        np.testing.assert_allclose(out_csr, out_ref, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(grad_csr, grad_ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("seed,items,segments", INDEX_CASES)
    def test_segment_max_bitwise(self, seed, items, segments):
        index, data = _random_case(seed, items, segments)
        plan = SegmentPlan(index, segments)
        out_csr, grad_csr = _run_op(segment_max, data, index, segments, plan)
        with reference_scatter():
            out_ref, grad_ref = _run_op(
                segment_max, data, index, segments, None
            )
        # Max is exact arithmetic: the CSR path must match bit for bit.
        assert np.array_equal(out_csr, out_ref)
        assert np.array_equal(grad_csr, grad_ref)

    @pytest.mark.parametrize("seed,items,segments", INDEX_CASES)
    def test_segment_softmax(self, seed, items, segments):
        index, data = _random_case(seed, items, segments, features=2)
        plan = SegmentPlan(index, segments)
        out_csr, grad_csr = _run_op(
            segment_softmax, data, index, segments, plan
        )
        with reference_scatter():
            out_ref, grad_ref = _run_op(
                segment_softmax, data, index, segments, None
            )
        np.testing.assert_allclose(out_csr, out_ref, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(grad_csr, grad_ref, rtol=1e-12, atol=1e-12)

    def test_gather_backward_uses_plan(self):
        index, data = _random_case(9, 20, 8)
        node_x = np.random.default_rng(9).normal(size=(8, 4))
        plan = SegmentPlan(index, 8)

        def run(use_plan):
            x = Tensor(node_x, requires_grad=True)
            out = gather(x, index, plan=plan if use_plan else None)
            (out * Tensor(data)).sum().backward()
            return x.grad

        np.testing.assert_allclose(
            run(True), run(False), rtol=1e-12, atol=1e-12
        )

    def test_zero_edge_graph(self):
        """Zero-edge graphs: empty index, all segments empty."""
        index = np.zeros(0, dtype=np.int64)
        plan = SegmentPlan(index, 5)
        x = Tensor(np.zeros((0, 3)), requires_grad=True)
        out = segment_sum(x, index, 5, plan=plan)
        assert np.array_equal(out.data, np.zeros((5, 3)))
        out2 = segment_max(Tensor(np.zeros((0, 3))), index, 5, plan=plan)
        assert np.array_equal(out2.data, np.zeros((5, 3)))

    def test_single_node_graph(self):
        """One node, one self-ish edge: degenerate but valid."""
        index = np.zeros(1, dtype=np.int64)
        data = np.array([[2.5, -1.0]])
        plan = SegmentPlan(index, 1)
        out = segment_mean(Tensor(data), index, 1, plan=plan)
        with reference_scatter():
            ref = segment_mean(Tensor(data), index, 1)
        assert np.array_equal(out.data, ref.data)

    def test_composes_with_batch_invariant(self):
        index, data = _random_case(11, 30, 6)
        plan = SegmentPlan(index, 6)
        with batch_invariant():
            out_csr, grad_csr = _run_op(
                segment_sum, data, index, 6, plan
            )
            with reference_scatter():
                out_ref, grad_ref = _run_op(
                    segment_sum, data, index, 6, None
                )
        np.testing.assert_allclose(out_csr, out_ref, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(grad_csr, grad_ref, rtol=1e-12, atol=1e-12)
