"""Tests for the message-passing layers.

Alongside shape/gradient checks, each layer is tested against a
straightforward dense-matrix reference implementation of its defining
equation on a small graph.
"""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.gnn.batching import GraphBatch
from repro.gnn.layers import GATConv, GCNConv, GINConv, MeanConv, SAGEConv
from repro.graphs.graph import Graph
from repro.nn.tensor import Tensor


@pytest.fixture
def path3_batch():
    """P3 (0-1-2) with simple 2-dim features."""
    graph = Graph.path(3)
    feats = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    return GraphBatch.from_graphs([graph], features=[feats])


def _all_layers(in_dim=2, out_dim=4, rng=0):
    return [
        GCNConv(in_dim, out_dim, rng=rng),
        GATConv(in_dim, out_dim, rng=rng),
        GINConv(in_dim, out_dim, rng=rng),
        SAGEConv(in_dim, out_dim, rng=rng),
        MeanConv(in_dim, out_dim, rng=rng),
    ]


class TestCommonBehavior:
    def test_output_shapes(self, path3_batch):
        for layer in _all_layers():
            out = layer(path3_batch.x, path3_batch)
            assert out.shape == (3, 4), type(layer).__name__

    def test_gradients_reach_all_parameters(self, path3_batch):
        for layer in _all_layers():
            loss = (layer(path3_batch.x, path3_batch) ** 2.0).sum()
            loss.backward()
            for name, param in layer.named_parameters():
                assert param.grad is not None, (type(layer).__name__, name)

    def test_permutation_equivariance(self):
        # relabeling nodes permutes outputs identically
        graph = Graph(4, ((0, 1), (1, 2), (2, 3), (0, 3)))
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(4, 2))
        perm = np.array([2, 0, 3, 1])  # new position of each node
        inverse = np.argsort(perm)
        permuted_edges = tuple(
            (min(perm[u], perm[v]), max(perm[u], perm[v]))
            for u, v in graph.edges
        )
        permuted_graph = Graph(4, permuted_edges)
        permuted_feats = feats[inverse]
        for layer in _all_layers():
            batch_a = GraphBatch.from_graphs([graph], features=[feats])
            batch_b = GraphBatch.from_graphs(
                [permuted_graph], features=[permuted_feats]
            )
            out_a = layer(batch_a.x, batch_a).data
            out_b = layer(batch_b.x, batch_b).data
            np.testing.assert_allclose(
                out_a, out_b[perm][np.argsort(np.arange(4))], atol=1e-10,
                err_msg=type(layer).__name__,
            )

    def test_batch_equals_individual(self, triangle, square):
        # running a batch of two graphs == running each alone
        rng = np.random.default_rng(1)
        feats_a = rng.normal(size=(3, 2))
        feats_b = rng.normal(size=(4, 2))
        for layer in _all_layers():
            combined = GraphBatch.from_graphs(
                [triangle, square], features=[feats_a, feats_b]
            )
            alone_a = GraphBatch.from_graphs([triangle], features=[feats_a])
            alone_b = GraphBatch.from_graphs([square], features=[feats_b])
            out_combined = layer(combined.x, combined).data
            out_a = layer(alone_a.x, alone_a).data
            out_b = layer(alone_b.x, alone_b).data
            np.testing.assert_allclose(
                out_combined, np.vstack([out_a, out_b]), atol=1e-10,
                err_msg=type(layer).__name__,
            )


class TestGCNReference:
    def test_matches_spectral_form(self, path3_batch):
        layer = GCNConv(2, 4, rng=3)
        out = layer(path3_batch.x, path3_batch).data
        # dense reference: D~^-1/2 A~ D~^-1/2 X W + b
        adj = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        a_tilde = adj + np.eye(3)
        d_inv_sqrt = np.diag(1.0 / np.sqrt(a_tilde.sum(axis=1)))
        reference = (
            d_inv_sqrt @ a_tilde @ d_inv_sqrt @ path3_batch.x.data
            @ layer.linear.weight.data
            + layer.linear.bias.data
        )
        np.testing.assert_allclose(out, reference, atol=1e-10)

    def test_weighted_edges_used(self):
        graph = Graph(2, ((0, 1),), (3.0,))
        feats = np.array([[1.0], [0.0]])
        batch = GraphBatch.from_graphs([graph], features=[feats])
        layer = GCNConv(1, 1, rng=0)
        out_weighted = layer(batch.x, batch).data
        unweighted = GraphBatch.from_graphs(
            [Graph(2, ((0, 1),))], features=[feats]
        )
        out_unweighted = layer(unweighted.x, unweighted).data
        assert not np.allclose(out_weighted, out_unweighted)


class TestGATReference:
    def test_attention_rows_normalized(self, path3_batch):
        # indirect check: with identical features everywhere, GAT output
        # equals the transform of that feature (convex combination)
        graph = Graph.complete(4)
        feats = np.tile(np.array([[1.0, 2.0]]), (4, 1))
        batch = GraphBatch.from_graphs([graph], features=[feats])
        layer = GATConv(2, 4, rng=5)
        out = layer(batch.x, batch).data
        transformed = feats @ layer.linear.weight.data + layer.bias.data
        np.testing.assert_allclose(out, transformed, atol=1e-10)

    def test_multihead_shape_and_divisibility(self, path3_batch):
        layer = GATConv(2, 4, num_heads=2, rng=0)
        assert layer(path3_batch.x, path3_batch).shape == (3, 4)
        with pytest.raises(ModelError):
            GATConv(2, 5, num_heads=2)

    def test_self_loops_included(self):
        # isolated node still produces output through its self loop
        graph = Graph(2, ((0, 1),))
        three = Graph(3, ((0, 1),))  # node 2 isolated
        feats = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        batch = GraphBatch.from_graphs([three], features=[feats])
        layer = GATConv(2, 4, rng=1)
        out = layer(batch.x, batch).data
        transformed = feats[2] @ layer.linear.weight.data + layer.bias.data
        np.testing.assert_allclose(out[2], transformed, atol=1e-10)


class TestGINReference:
    def test_matches_equation(self, path3_batch):
        layer = GINConv(2, 4, rng=7)
        out = layer(path3_batch.x, path3_batch).data
        x = path3_batch.x.data
        eps = layer.eps.data[0]
        neighbor_sums = np.array([x[1], x[0] + x[2], x[1]])
        combined = (1 + eps) * x + neighbor_sums
        hidden = np.maximum(
            combined @ layer.lin1.weight.data + layer.lin1.bias.data, 0
        )
        reference = hidden @ layer.lin2.weight.data + layer.lin2.bias.data
        np.testing.assert_allclose(out, reference, atol=1e-10)

    def test_eps_learnable_by_default(self):
        layer = GINConv(2, 4, rng=0)
        names = [name for name, _ in layer.named_parameters()]
        assert any("eps" in name for name in names)

    def test_eps_can_be_fixed(self, path3_batch):
        layer = GINConv(2, 4, learn_eps=False, rng=0)
        assert layer.eps is None
        assert layer(path3_batch.x, path3_batch).shape == (3, 4)


class TestSAGEReference:
    def test_matches_maxpool_equation(self, path3_batch):
        layer = SAGEConv(2, 4, rng=9)
        out = layer(path3_batch.x, path3_batch).data
        x = path3_batch.x.data
        pooled = np.maximum(x @ layer.pool.weight.data + layer.pool.bias.data, 0)
        agg = np.array(
            [pooled[1], np.maximum(pooled[0], pooled[2]), pooled[1]]
        )
        reference = (
            np.hstack([x, agg]) @ layer.combine.weight.data
            + layer.combine.bias.data
        )
        np.testing.assert_allclose(out, reference, atol=1e-10)


class TestMeanConvReference:
    def test_matches_mean_aggregation(self, path3_batch):
        layer = MeanConv(2, 4, rng=11)
        out = layer(path3_batch.x, path3_batch).data
        x = path3_batch.x.data
        agg = np.array([x[1], (x[0] + x[2]) / 2.0, x[1]])
        reference = (
            np.hstack([x, agg]) @ layer.linear.weight.data
            + layer.linear.bias.data
        )
        np.testing.assert_allclose(out, reference, atol=1e-10)
