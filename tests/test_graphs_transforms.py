"""Tests for graph transforms."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.transforms import (
    complement,
    disjoint_union,
    line_graph,
    line_graph_features,
    relabel,
)
from repro.maxcut.bruteforce import brute_force_maxcut


class TestLineGraph:
    def test_triangle_line_graph_is_triangle(self, triangle):
        lg = line_graph(triangle)
        assert lg.num_nodes == 3
        assert lg.num_edges == 3  # K3 again

    def test_path_line_graph_is_shorter_path(self):
        lg = line_graph(Graph.path(4))  # P4 has 3 edges -> L = P3
        assert lg.num_nodes == 3
        assert lg.num_edges == 2

    def test_star_line_graph_is_complete(self):
        lg = line_graph(Graph.star(5))  # K1,4 -> L = K4
        assert lg.num_nodes == 4
        assert lg.num_edges == 6

    def test_edge_count_formula(self, petersen_like):
        # |E(L(G))| = sum_v C(deg v, 2)
        lg = line_graph(petersen_like)
        degrees = petersen_like.degrees()
        expected = int(sum(d * (d - 1) // 2 for d in degrees))
        assert lg.num_edges == expected

    def test_edgeless_rejected(self):
        with pytest.raises(GraphError):
            line_graph(Graph(3, ()))

    def test_features_shape_and_content(self, weighted_triangle):
        feats = line_graph_features(weighted_triangle)
        assert feats.shape == (3, 3)
        assert feats[0, 0] == 1.0  # weight of edge (0,1)
        assert feats[1, 0] == 2.0

    def test_name_propagated(self, triangle):
        assert line_graph(triangle).name == "L(triangle)"


class TestComplement:
    def test_complete_complement_empty(self):
        assert complement(Graph.complete(5)).num_edges == 0

    def test_double_complement_identity(self, petersen_like):
        back = complement(complement(petersen_like))
        assert set(back.edges) == set(petersen_like.edges)

    def test_edge_counts_sum(self, petersen_like):
        n = petersen_like.num_nodes
        co = complement(petersen_like)
        assert petersen_like.num_edges + co.num_edges == n * (n - 1) // 2


class TestDisjointUnion:
    def test_counts(self, triangle, square):
        union = disjoint_union([triangle, square])
        assert union.num_nodes == 7
        assert union.num_edges == 7

    def test_weights_preserved(self, weighted_triangle, square):
        union = disjoint_union([weighted_triangle, square])
        assert union.weights[:3] == (1.0, 2.0, 3.0)

    def test_maxcut_additive(self, triangle, square):
        union = disjoint_union([triangle, square])
        assert brute_force_maxcut(union).value == (
            brute_force_maxcut(triangle).value
            + brute_force_maxcut(square).value
        )

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            disjoint_union([])


class TestRelabel:
    def test_degree_sequence_invariant(self, petersen_like):
        perm = np.random.default_rng(0).permutation(10)
        relabeled = relabel(petersen_like, perm)
        assert sorted(relabeled.degrees()) == sorted(petersen_like.degrees())

    def test_maxcut_invariant(self, petersen_like):
        perm = np.random.default_rng(1).permutation(10)
        relabeled = relabel(petersen_like, perm)
        assert brute_force_maxcut(relabeled).value == (
            brute_force_maxcut(petersen_like).value
        )

    def test_identity_permutation(self, square):
        assert relabel(square, [0, 1, 2, 3]).edges == square.edges

    def test_rejects_non_permutation(self, square):
        with pytest.raises(GraphError):
            relabel(square, [0, 0, 1, 2])
