"""Tests for random graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.generators import (
    erdos_renyi_graph,
    feasible_regular_degrees,
    fully_connected_weighted_graph,
    random_connected_graph,
    random_regular_graph,
    random_weighted_graph,
    regular_graph_family,
    sample_dataset_graph,
)


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(4, 2), (6, 3), (8, 3), (10, 4), (15, 2)])
    def test_regularity(self, n, d):
        graph = random_regular_graph(n, d, rng=0)
        assert graph.num_nodes == n
        assert graph.regular_degree() == d
        assert graph.num_edges == n * d // 2

    def test_zero_degree(self):
        graph = random_regular_graph(5, 0, rng=0)
        assert graph.num_edges == 0

    def test_rejects_odd_stub_count(self):
        with pytest.raises(GraphError, match="odd stub"):
            random_regular_graph(5, 3, rng=0)

    def test_rejects_degree_too_large(self):
        with pytest.raises(GraphError, match="impossible"):
            random_regular_graph(4, 4, rng=0)

    def test_rejects_negative_degree(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, -1, rng=0)

    def test_deterministic_with_seed(self):
        a = random_regular_graph(10, 3, rng=5)
        b = random_regular_graph(10, 3, rng=5)
        assert a.edges == b.edges

    def test_complete_graph_case(self):
        graph = random_regular_graph(4, 3, rng=1)
        assert graph.num_edges == 6

    @given(st.integers(4, 14), st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_simple_regular(self, n, data):
        degrees = feasible_regular_degrees(n)
        if not degrees:
            return
        d = data.draw(st.sampled_from(degrees))
        graph = random_regular_graph(n, d, rng=7)
        # simple: canonical edges with no duplicates is enforced by Graph
        assert graph.regular_degree() == d


class TestFeasibleDegrees:
    def test_even_nodes_all_degrees(self):
        assert feasible_regular_degrees(6) == [2, 3, 4, 5]

    def test_odd_nodes_even_degrees_only(self):
        assert feasible_regular_degrees(7) == [2, 4, 6]

    def test_tiny(self):
        assert feasible_regular_degrees(2) == []
        assert feasible_regular_degrees(3) == [2]


class TestOtherGenerators:
    def test_erdos_renyi_bounds(self):
        empty = erdos_renyi_graph(10, 0.0, rng=0)
        full = erdos_renyi_graph(10, 1.0, rng=0)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_erdos_renyi_bad_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5, rng=0)

    def test_random_connected_is_connected(self):
        for seed in range(5):
            graph = random_connected_graph(12, 0.1, rng=seed)
            assert graph.is_connected()

    def test_random_weighted_weights_in_range(self):
        graph = random_weighted_graph(8, 0.8, (0.5, 1.5), rng=0)
        assert all(0.5 <= w <= 1.5 for w in graph.weights)

    def test_random_weighted_inverted_range(self):
        with pytest.raises(GraphError):
            random_weighted_graph(5, 0.5, (2.0, 1.0), rng=0)

    def test_fully_connected_weighted(self):
        graph = fully_connected_weighted_graph(6, rng=0)
        assert graph.num_edges == 15
        assert graph.is_weighted or all(w <= 1.0 for w in graph.weights)

    def test_sample_dataset_graph_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            graph = sample_dataset_graph(rng, min_nodes=3, max_nodes=15)
            assert 3 <= graph.num_nodes <= 15
            assert graph.is_regular()
            assert graph.regular_degree() >= 2

    def test_regular_family_skips_infeasible(self):
        graphs = regular_graph_family([4, 5, 6], degree=3, rng=0)
        # 5 nodes cannot host a 3-regular graph (odd stubs)
        assert {g.num_nodes for g in graphs} == {4, 6}

    def test_regular_family_count(self):
        graphs = regular_graph_family([6, 8], degree=3, count_per_size=3, rng=0)
        assert len(graphs) == 6
        assert all(g.name for g in graphs)
