"""Tests for the QAOA runner and the gate-level ansatz utilities."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.qaoa.ansatz import build_qaoa_circuit, qaoa_resource_counts
from repro.qaoa.initialization import ConstantInitialization, RandomInitialization
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.runner import QAOARunner


class TestAnsatz:
    def test_gate_counts(self, petersen_like):
        p = 2
        circuit = build_qaoa_circuit(
            petersen_like, np.full(p, 0.1), np.full(p, 0.2)
        )
        counts = circuit.gate_counts()
        assert counts["h"] == 10
        assert counts["rzz"] == p * petersen_like.num_edges
        assert counts["rx"] == p * 10

    def test_resource_counts(self, petersen_like):
        resources = qaoa_resource_counts(petersen_like, p=3)
        assert resources["num_qubits"] == 10
        assert resources["rzz_gates"] == 3 * petersen_like.num_edges
        assert resources["cnot_equivalent"] == 2 * resources["rzz_gates"]
        assert resources["depth"] >= 3

    def test_resource_counts_bad_depth(self, petersen_like):
        with pytest.raises(CircuitError):
            qaoa_resource_counts(petersen_like, p=0)

    def test_mismatched_params(self, triangle):
        with pytest.raises(CircuitError):
            build_qaoa_circuit(triangle, [0.1, 0.2], [0.3])


class TestRunner:
    def test_outcome_fields(self, petersen_like):
        runner = QAOARunner(p=1, max_iters=40)
        outcome = runner.run(petersen_like, rng=0)
        assert outcome.p == 1
        assert 0.0 <= outcome.approximation_ratio <= 1.0
        assert outcome.optimal_value > 0
        assert outcome.iterations == 40
        assert len(outcome.history) == 40
        assert outcome.graph_name == "cubic10"

    def test_optimization_improves_over_initial(self, petersen_like):
        runner = QAOARunner(p=1, max_iters=80)
        outcome = runner.run(petersen_like, rng=1)
        assert outcome.approximation_ratio >= outcome.initial_approximation_ratio

    def test_constant_init_recorded(self, petersen_like):
        runner = QAOARunner(p=1, max_iters=5)
        outcome = runner.run(
            petersen_like, ConstantInitialization(0.7, 0.3), rng=0
        )
        assert outcome.initial_gammas[0] == pytest.approx(0.7)
        assert outcome.initial_betas[0] == pytest.approx(0.3)

    def test_shots_sampling(self, petersen_like):
        runner = QAOARunner(p=1, max_iters=30, shots=256)
        outcome = runner.run(petersen_like, rng=0)
        assert outcome.best_sampled_cut is not None
        assert outcome.best_sampled_cut <= outcome.optimal_value

    def test_no_shots_by_default(self, petersen_like):
        outcome = QAOARunner(p=1, max_iters=5).run(petersen_like, rng=0)
        assert outcome.best_sampled_cut is None

    def test_run_many(self, petersen_like, square):
        runner = QAOARunner(p=1, max_iters=10)
        outcomes = runner.run_many([petersen_like, square], rng=0)
        assert len(outcomes) == 2
        assert outcomes[1].optimal_value == 4.0

    def test_custom_optimizer(self, petersen_like):
        runner = QAOARunner(
            p=1, optimizer=AdamOptimizer(learning_rate=0.1), max_iters=30
        )
        outcome = runner.run(petersen_like, RandomInitialization(), rng=2)
        assert outcome.expectation > 0

    def test_deterministic_given_seed(self, petersen_like):
        runner = QAOARunner(p=1, max_iters=20)
        a = runner.run(petersen_like, rng=5)
        b = runner.run(petersen_like, rng=5)
        assert a.approximation_ratio == pytest.approx(b.approximation_ratio)
        assert np.allclose(a.gammas, b.gammas)
