"""Tests for permutation augmentation."""

import numpy as np
import pytest

from repro.data.augmentation import augment_by_permutation, permute_record
from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError
from repro.maxcut.bruteforce import brute_force_maxcut
from repro.qaoa.simulator import QAOASimulator

from tests.test_data_dataset import make_record


def _with_name(record):
    from dataclasses import replace

    return replace(record, graph=record.graph.with_name("g"))


class TestPermuteRecord:
    def test_label_invariant(self):
        record = make_record(num_nodes=6)
        permuted = permute_record(record, rng=0)
        assert permuted.gammas == record.gammas
        assert permuted.betas == record.betas
        assert permuted.approximation_ratio == record.approximation_ratio

    def test_graph_isomorphic(self):
        record = make_record(num_nodes=6)
        permuted = permute_record(record, rng=0)
        assert permuted.graph.num_edges == record.graph.num_edges
        assert sorted(permuted.graph.degrees()) == sorted(
            record.graph.degrees()
        )
        assert brute_force_maxcut(permuted.graph).value == (
            brute_force_maxcut(record.graph).value
        )

    def test_expectation_truly_invariant(self):
        # the physical check: QAOA expectation at the label angles is
        # identical on the permuted graph
        record = make_record(num_nodes=6)
        permuted = permute_record(record, rng=1)
        original = QAOASimulator(record.graph).expectation(
            np.asarray(record.gammas), np.asarray(record.betas)
        )
        relabeled = QAOASimulator(permuted.graph).expectation(
            np.asarray(permuted.gammas), np.asarray(permuted.betas)
        )
        assert original == pytest.approx(relabeled)

    def test_name_suffix(self):
        record = make_record()
        named = permute_record(
            record if record.graph.name else _with_name(record), rng=0
        )
        assert named.graph.name.endswith("_perm")


class TestAugment:
    def test_counts(self):
        dataset = QAOADataset([make_record(), make_record()])
        augmented = augment_by_permutation(dataset, copies=2, rng=0)
        assert len(augmented) == 6  # 2 originals + 4 replicas

    def test_drop_originals(self):
        dataset = QAOADataset([_with_name(make_record())])
        augmented = augment_by_permutation(
            dataset, copies=3, keep_original=False, rng=0
        )
        assert len(augmented) == 3
        assert all(r.graph.name.endswith("_perm") for r in augmented)

    def test_invalid_copies(self):
        with pytest.raises(DatasetError):
            augment_by_permutation(QAOADataset([make_record()]), copies=0)

    def test_deterministic(self):
        dataset = QAOADataset([make_record(num_nodes=7)])
        a = augment_by_permutation(dataset, copies=1, rng=5)
        b = augment_by_permutation(dataset, copies=1, rng=5)
        assert a[1].graph.edges == b[1].graph.edges
