"""Tests for the Max-Cut substrate: problem, brute force, heuristics, GW."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.maxcut.problem import (
    MaxCutProblem,
    all_cut_values,
    assignment_to_bits,
    cut_value,
)
from repro.maxcut.bruteforce import (
    brute_force_maxcut,
    brute_force_maxcut_chunked,
    count_optimal_cuts,
)
from repro.maxcut.greedy import greedy_maxcut, local_search_maxcut, random_cut
from repro.maxcut.goemans_williamson import (
    goemans_williamson,
    round_embedding,
    solve_lowrank_sdp,
)


class TestAssignments:
    def test_int_to_bits(self):
        assert list(assignment_to_bits(5, 4)) == [1, 0, 1, 0]

    def test_vector_passthrough(self):
        assert list(assignment_to_bits([0, 1, 1], 3)) == [0, 1, 1]

    def test_int_out_of_range(self):
        with pytest.raises(GraphError):
            assignment_to_bits(8, 3)

    def test_vector_wrong_shape(self):
        with pytest.raises(GraphError):
            assignment_to_bits([0, 1], 3)

    def test_vector_non_binary(self):
        with pytest.raises(GraphError):
            assignment_to_bits([0, 2, 1], 3)


class TestCutValue:
    def test_triangle_cuts(self, triangle):
        assert cut_value(triangle, 0) == 0.0
        assert cut_value(triangle, 1) == 2.0  # one node vs two
        assert cut_value(triangle, 7) == 0.0  # all same side

    def test_square_bipartition(self, square):
        assert cut_value(square, 0b0101) == 4.0

    def test_weighted(self, weighted_triangle):
        # node 0 alone: edges (0,1) w=1 and (0,2) w=3 crossing
        assert cut_value(weighted_triangle, 1) == 4.0

    def test_edgeless(self):
        assert cut_value(Graph(3, ()), 5) == 0.0

    def test_complement_symmetry(self, petersen_like):
        n = petersen_like.num_nodes
        for z in (1, 37, 500):
            complement = (~z) & ((1 << n) - 1)
            assert cut_value(petersen_like, z) == cut_value(
                petersen_like, complement
            )


class TestAllCutValues:
    def test_length(self, triangle):
        assert all_cut_values(triangle).shape == (8,)

    def test_matches_scalar(self, petersen_like):
        values = all_cut_values(petersen_like)
        rng = np.random.default_rng(0)
        for z in rng.integers(0, 1 << 10, size=20):
            assert values[z] == cut_value(petersen_like, int(z))

    def test_refuses_huge(self):
        with pytest.raises(GraphError):
            all_cut_values(Graph(27, ()))

    @given(st.integers(2, 10), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_complement_symmetric(self, n, seed):
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        values = all_cut_values(graph)
        indices = np.arange(1 << n)
        complements = (~indices) & ((1 << n) - 1)
        assert np.array_equal(values, values[complements])


class TestBruteForce:
    def test_triangle_optimum(self, triangle):
        solution = brute_force_maxcut(triangle)
        assert solution.value == 2.0
        assert solution.optimal

    def test_square_optimum(self, square):
        assert brute_force_maxcut(square).value == 4.0

    def test_bipartite_cuts_everything(self):
        # C6 is bipartite: optimal cut = all 6 edges
        assert brute_force_maxcut(Graph.cycle(6)).value == 6.0

    def test_odd_cycle(self):
        # C5: best cut = 4
        assert brute_force_maxcut(Graph.cycle(5)).value == 4.0

    def test_complete_graph(self):
        # K4: best cut = 2*2 = 4
        assert brute_force_maxcut(Graph.complete(4)).value == 4.0

    def test_weighted(self, weighted_triangle):
        # best: separate nodes to cut weights 2+3=5
        assert brute_force_maxcut(weighted_triangle).value == 5.0

    def test_chunked_matches_dense(self, petersen_like):
        dense = brute_force_maxcut(petersen_like)
        chunked = brute_force_maxcut_chunked(petersen_like, chunk_bits=6)
        assert dense.value == chunked.value

    def test_assignment_achieves_value(self, petersen_like):
        solution = brute_force_maxcut(petersen_like)
        assert cut_value(petersen_like, solution.assignment) == solution.value

    def test_optimal_cut_count_even(self, petersen_like):
        assert count_optimal_cuts(petersen_like) % 2 == 0

    @given(st.integers(3, 9), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_brute_force_at_least_half_edges(self, n, seed):
        graph = erdos_renyi_graph(n, 0.6, rng=seed)
        # max cut >= m/2 for any graph (probabilistic argument)
        assert brute_force_maxcut(graph).value >= graph.total_weight / 2.0


class TestMaxCutProblem:
    def test_caches_optimum(self, petersen_like):
        problem = MaxCutProblem(petersen_like)
        first = problem.optimum()
        assert problem.optimum() is first

    def test_approximation_ratio(self, square):
        problem = MaxCutProblem(square)
        assert problem.approximation_ratio(2.0) == 0.5
        assert problem.approximation_ratio(4.0) == 1.0

    def test_edgeless_ratio_is_one(self):
        problem = MaxCutProblem(Graph(3, ()))
        assert problem.approximation_ratio(0.0) == 1.0

    def test_cost_diagonal_cached(self, triangle):
        problem = MaxCutProblem(triangle)
        assert problem.cost_diagonal() is problem.cost_diagonal()


class TestHeuristics:
    def test_greedy_reasonable(self, petersen_like):
        solution = greedy_maxcut(petersen_like)
        optimum = brute_force_maxcut(petersen_like).value
        assert solution.value >= petersen_like.total_weight / 2.0
        assert solution.value <= optimum

    def test_local_search_half_guarantee(self):
        for seed in range(5):
            graph = erdos_renyi_graph(10, 0.5, rng=seed)
            solution = local_search_maxcut(graph, rng=seed)
            assert solution.value >= graph.total_weight / 2.0

    def test_local_search_from_given_start(self, square):
        solution = local_search_maxcut(square, start=np.array([0, 0, 0, 0]))
        assert solution.value == 4.0  # flips to the bipartition

    def test_random_cut_valid(self, petersen_like):
        solution = random_cut(petersen_like, rng=0)
        assert 0 <= solution.value <= brute_force_maxcut(petersen_like).value

    def test_greedy_achieves_claimed_value(self, petersen_like):
        solution = greedy_maxcut(petersen_like)
        assert cut_value(petersen_like, solution.assignment) == solution.value


class TestGoemansWilliamson:
    def test_sdp_upper_bounds_optimum(self, petersen_like):
        result = goemans_williamson(petersen_like, rng=0)
        optimum = brute_force_maxcut(petersen_like).value
        assert result.sdp_value >= optimum - 1e-6

    def test_rounding_878_guarantee_loose(self, petersen_like):
        result = goemans_williamson(petersen_like, num_rounds=100, rng=0)
        optimum = brute_force_maxcut(petersen_like).value
        # best-of-100 rounding should comfortably exceed 0.8 opt here
        assert result.solution.value >= 0.8 * optimum

    def test_embedding_rows_unit(self, square):
        embedding = solve_lowrank_sdp(square, rng=0)
        norms = np.linalg.norm(embedding, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_bipartite_sdp_tight(self, square):
        # for bipartite graphs the SDP is tight: value = m
        result = goemans_williamson(square, rng=0)
        assert result.sdp_value >= 4.0 - 1e-4
        assert result.solution.value == 4.0

    def test_round_embedding_with_antipodal_vectors(self, square):
        # a perfect embedding: opposite vectors for the two sides
        embedding = np.array(
            [[1.0, 0.0], [-1.0, 0.0], [1.0, 0.0], [-1.0, 0.0]]
        )
        solution = round_embedding(square, embedding, num_rounds=5, rng=0)
        assert solution.value == 4.0

    def test_weighted_graph(self, weighted_triangle):
        result = goemans_williamson(weighted_triangle, rng=0)
        assert result.solution.value <= 5.0 + 1e-9
        assert result.sdp_value >= result.solution.value - 1e-6
