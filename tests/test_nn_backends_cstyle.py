"""Tests for the compiled kernel backends (`repro.nn.backends.cstyle`).

The compiled backends promise the *same bits* as the numpy reference,
not merely close ones — every comparison here is ``tobytes()``
equality. Three contracts are covered:

1. **Bitwise equivalence** across op mixes, shapes, reduce axes, view
   inputs, and batch-invariant matmul, including fuzzed random chains.
2. **Kernel cache** behaviour: on-disk reuse counts a hit, a changed
   source (or ABI/flags/compiler, via the cache key) recompiles.
3. **Silent fallback**: with ``CC=/bin/false`` selecting ``cstyle`` or
   ``threaded`` quietly resolves to numpy and everything still runs.
"""

import numpy as np
import pytest

from repro.nn import lazyir as ir
from repro.nn import realize as rz
from repro.nn.backends import ctoolchain, cstyle, set_backend

HAVE_TOOLCHAIN = ctoolchain.available()

needs_toolchain = pytest.mark.skipif(
    not HAVE_TOOLCHAIN, reason="no C toolchain; compiled backends fall back"
)


@pytest.fixture(autouse=True)
def numpy_backend_after():
    """Every test leaves the process on the numpy backend."""
    yield
    set_backend("numpy")
    rz.clear_plan_cache()


def realize_with(backend: str, build_targets):
    """Build + realize ``build_targets()`` under ``backend``; copy out."""
    set_backend(backend)
    rz.clear_plan_cache()
    targets = build_targets()
    rz.realize(targets)
    return [t.buffer.copy() for t in targets]


def assert_bitwise(build_targets, backends=("cstyle", "threaded")):
    reference = realize_with("numpy", build_targets)
    for backend in backends:
        got = realize_with(backend, build_targets)
        for position, (want, have) in enumerate(zip(reference, got)):
            assert want.tobytes() == have.tobytes(), (
                f"{backend} target {position} diverges: "
                f"max |delta| = {np.max(np.abs(want - have))}"
            )


class TestBitwiseEquivalence:
    @needs_toolchain
    def test_mixed_op_targets(self):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((33, 17))
        Y = rng.standard_normal((33, 17))
        W = rng.standard_normal((17, 9))
        IDX = rng.integers(0, 33, size=51).astype(np.int64)
        SEG = rng.integers(0, 12, size=33).astype(np.int64)
        BIG = rng.standard_normal((600, 130))

        def build():
            a = ir.buffer(X.copy())
            b = ir.buffer(Y.copy())
            w = ir.buffer(W.copy())
            big = ir.buffer(BIG.copy())
            targets = []
            chain = ir.alu("mul", ir.alu("add", a, b), ir.alu("sub", a, 0.5))
            targets.append(ir.alu1("tanh", chain))
            gate = ir._node("gt0", (a,), None, a.shape, np.dtype("|b1"))
            targets.append(ir.where_node(gate, ir.alu("mul", a, 2.0), 0.0))
            targets.append(
                ir.reduce_node("sum", ir.alu("mul", a, a), None, False)
            )
            targets.append(ir.reduce_node("sum", ir.alu("add", a, b), 1, False))
            targets.append(
                ir.reduce_node("mean", ir.alu("mul", a, 1.5), 0, False)
            )
            targets.append(ir.reduce_node("max", ir.alu("sub", a, b), None, False))
            targets.append(ir.reduce_node("max", ir.alu("mul", big, 1.1), 1, False))
            targets.append(ir.alu1("exp", ir.alu("mul", big, 0.01)))
            targets.append(ir.matmul_node(a, w, True))  # batch-invariant
            targets.append(ir.gather_node(ir.alu("add", a, 1.0), IDX))
            targets.append(ir.scatter_add_node(a, SEG, (12, 17), "ref"))
            targets.append(ir.segment_max_raw_node(a, SEG, (12, 17), "ref"))
            targets.append(ir.putadd_node(a, SEG, (12, 17)))
            rowsum = ir.reduce_node("sum", a, 0, True)
            targets.append(
                ir.alu("mul", a, ir.expand_node(rowsum, (1, 17), (33, 17)))
            )
            flipped = ir.transpose_node(a)
            targets.append(ir.reduce_node("mean", flipped, 0, False))
            targets.append(ir.reduce_node("sum", flipped, 1, False))
            targets.append(ir.reduce_node("max", flipped, 0, False))
            targets.append(ir.reduce_node("sum", flipped, None, False))
            return targets

        assert_bitwise(build)

    @needs_toolchain
    @pytest.mark.parametrize("seed", range(10))
    def test_fuzzed_chains(self, seed):
        """Random op chains over random shapes stay bit-identical."""
        rng = np.random.default_rng(1000 + seed)
        shape = [(7, 5), (33, 17), (1, 9), (48, 31), (170,)][seed % 5]
        base = rng.standard_normal(shape)
        other = rng.standard_normal(shape)
        binary_ops = ["add", "sub", "mul", "div", "maximum"]
        unary_ops = ["tanh", "abs", "sign", "exp", "sqrt"]

        def build():
            node = ir.buffer(base.copy())
            second = ir.buffer(other.copy())
            for _ in range(int(rng.integers(2, 7))):
                if rng.random() < 0.35:
                    op = unary_ops[int(rng.integers(len(unary_ops)))]
                    if op == "sqrt":
                        node = ir.alu1("sqrt", ir.alu1("abs", node))
                    elif op == "exp":
                        node = ir.alu1("exp", ir.alu("mul", node, 0.01))
                    else:
                        node = ir.alu1(op, node)
                else:
                    op = binary_ops[int(rng.integers(len(binary_ops)))]
                    if rng.random() < 0.5:
                        node = ir.alu(op, node, float(rng.normal()) + 1.7)
                    else:
                        node = ir.alu(op, node, second)
            terminal = rng.random()
            if terminal < 0.6:
                axis_choices = [None, 0] + ([1] if len(shape) == 2 else [])
                axis = axis_choices[int(rng.integers(len(axis_choices)))]
                kind = ["sum", "mean", "max"][int(rng.integers(3))]
                node = ir.reduce_node(kind, node, axis, False)
            return [node]

        # Same rng stream must drive every realization identically.
        state = rng.bit_generator.state
        reference = realize_with("numpy", build)
        for backend in ("cstyle", "threaded"):
            rng.bit_generator.state = state
            got = realize_with(backend, build)
            assert reference[0].tobytes() == got[0].tobytes(), (
                f"{backend} diverges on seed {seed}"
            )

    @needs_toolchain
    def test_batch_invariant_matmul(self):
        """batch_invariant mode keeps its bits under compiled backends."""
        rng = np.random.default_rng(11)
        A = rng.standard_normal((40, 13))
        W = rng.standard_normal((13, 6))

        def build():
            a = ir.buffer(A.copy())
            w = ir.buffer(W.copy())
            full = ir.matmul_node(a, w, True)
            head = ir.matmul_node(ir.buffer(A[:5].copy()), w, True)
            return [full, head, ir.alu1("tanh", full)]

        reference = realize_with("numpy", build)
        full, head, _ = reference
        # Rows 0..4 of the full-batch product equal the 5-row product
        # exactly: that is what batch invariance means.
        assert np.ascontiguousarray(full[:5]).tobytes() == head.tobytes()
        assert_bitwise(build)


class TestKernelCache:
    @needs_toolchain
    def test_disk_reuse_counts_a_hit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        source = (
            "void cache_probe_fn(double *x) { x[0] = x[0] * 2.0 + 1.0; }\n"
        )
        decls = ["void cache_probe_fn(double *);"]
        counters = rz.counters
        before = counters.snapshot()
        assert ctoolchain.load(source, decls) is not None
        mid = counters.snapshot()
        assert mid["kernel_cache_misses"] == before["kernel_cache_misses"] + 1
        # Drop the in-process handle: the on-disk object must satisfy
        # the reload without invoking the compiler.
        ctoolchain._LOADED.clear()
        assert ctoolchain.load(source, decls) is not None
        after = counters.snapshot()
        assert after["kernel_cache_hits"] == mid["kernel_cache_hits"] + 1
        assert after["kernel_cache_misses"] == mid["kernel_cache_misses"]

    @needs_toolchain
    def test_changed_source_recompiles(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        decls = ["void cache_probe_fn2(double *);"]
        first = "void cache_probe_fn2(double *x) { x[0] += 1.0; }\n"
        second = "void cache_probe_fn2(double *x) { x[0] += 2.0; }\n"
        counters = rz.counters
        before = counters.snapshot()
        assert ctoolchain.load(first, decls) is not None
        assert ctoolchain.load(second, decls) is not None
        after = counters.snapshot()
        assert (
            after["kernel_cache_misses"] == before["kernel_cache_misses"] + 2
        )

    def test_cache_key_binds_abi_flags_and_compiler(self, monkeypatch):
        source = "int f(void) { return 1; }\n"
        base = ctoolchain.source_key(source)
        monkeypatch.setattr(ctoolchain, "ABI_VERSION", 9999)
        assert ctoolchain.source_key(source) != base
        monkeypatch.undo()
        monkeypatch.setattr(ctoolchain, "CFLAGS", ("-O0",))
        assert ctoolchain.source_key(source) != base
        monkeypatch.undo()
        monkeypatch.setenv("CC", "some-other-cc")
        assert ctoolchain.source_key(source) != base


class TestNoToolchainFallback:
    @pytest.fixture()
    def broken_toolchain(self, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        ctoolchain.reset_probe_cache()
        cstyle.reset_caps_cache()
        yield
        monkeypatch.undo()
        ctoolchain.reset_probe_cache()
        cstyle.reset_caps_cache()

    def test_selection_silently_resolves_to_numpy(self, broken_toolchain):
        assert set_backend("cstyle") == "numpy"
        assert set_backend("threaded") == "numpy"

    def test_realize_still_works_and_matches(self, broken_toolchain):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((9, 4))

        def build():
            a = ir.buffer(X.copy())
            return [
                ir.reduce_node("sum", ir.alu1("tanh", ir.alu("mul", a, a)),
                               1, False)
            ]

        got = realize_with("cstyle", build)  # resolves to numpy
        want = np.tanh(X * X).sum(axis=1)
        assert got[0].tobytes() == want.tobytes()
