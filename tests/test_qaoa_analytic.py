"""Tests for the closed-form p=1 expectation oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.qaoa.analytic import (
    p1_edge_expectation,
    p1_expectation,
    p1_optimal_angles_regular,
    p1_regular_triangle_free_expectation,
)
from repro.qaoa.simulator import QAOASimulator


class TestClosedForm:
    @given(
        st.floats(-2.0, 2.0),
        st.floats(-1.5, 1.5),
        st.integers(2, 10),
        st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_simulator(self, gamma, beta, n, seed):
        graph = erdos_renyi_graph(n, 0.5, rng=seed)
        simulated = QAOASimulator(graph).expectation([gamma], [beta]) if graph.num_edges else 0.0
        analytic = p1_expectation(graph, gamma, beta)
        assert analytic == pytest.approx(simulated, abs=1e-9)

    def test_triangle_graph(self, triangle):
        gamma, beta = 0.7, 0.3
        assert p1_expectation(triangle, gamma, beta) == pytest.approx(
            QAOASimulator(triangle).expectation([gamma], [beta])
        )

    def test_rejects_weighted(self, weighted_triangle):
        with pytest.raises(GraphError):
            p1_expectation(weighted_triangle, 0.3, 0.2)

    def test_zero_angles_half(self, petersen_like):
        assert p1_expectation(petersen_like, 0.0, 0.0) == pytest.approx(
            petersen_like.num_edges / 2.0
        )

    def test_edge_expectation_range(self):
        # expectation of a single edge operator lies in [0, 1]
        for gamma in np.linspace(0, 2 * np.pi, 7):
            for beta in np.linspace(0, np.pi, 5):
                value = p1_edge_expectation(gamma, beta, 3, 3, 1)
                assert -1e-9 <= value <= 1.0 + 1e-9

    def test_invalid_degrees(self):
        with pytest.raises(GraphError):
            p1_edge_expectation(0.1, 0.1, 0, 3, 0)


class TestRegularTriangleFree:
    def test_matches_general_formula(self):
        graph = Graph.cycle(6)  # 2-regular, triangle-free
        gamma, beta = 0.5, 0.25
        total = p1_regular_triangle_free_expectation(gamma, beta, 2, 6)
        assert total == pytest.approx(p1_expectation(graph, gamma, beta))

    def test_optimal_angles_are_stationary(self):
        # the closed-form optimum should beat nearby angles on a
        # triangle-free regular graph
        degree = 3
        graph = random_regular_graph(12, degree, rng=3)
        # ensure triangle-free assumption approximately holds: use the
        # closed-form per-edge value directly instead
        gamma_star, beta_star = p1_optimal_angles_regular(degree)
        best = p1_edge_expectation(gamma_star, beta_star, degree, degree, 0)
        for d_gamma in (-0.05, 0.05):
            for d_beta in (-0.05, 0.05):
                other = p1_edge_expectation(
                    gamma_star + d_gamma, beta_star + d_beta, degree, degree, 0
                )
                assert other <= best + 1e-12

    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 8, 11])
    def test_optimal_value_formula(self, degree):
        # at the optimum: 1/2 + 1/(2 sqrt(...)): known d-regular p=1 value
        gamma, beta = p1_optimal_angles_regular(degree)
        value = p1_edge_expectation(gamma, beta, degree, degree, 0)
        d = degree - 1
        expected = 0.5 + 0.5 * np.sqrt(1.0 / d) * (d / (d + 1)) ** ((d + 1) / 2) if d > 0 else 1.0
        assert value == pytest.approx(expected, rel=1e-9)

    def test_degree_one(self):
        gamma, beta = p1_optimal_angles_regular(1)
        # single edge: optimum cuts it with certainty at p=1
        assert p1_edge_expectation(gamma, beta, 1, 1, 0) == pytest.approx(1.0)

    def test_rejects_degree_zero(self):
        with pytest.raises(GraphError):
            p1_optimal_angles_regular(0)
