"""Tests for the NISQ noise models."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.graphs.generators import random_regular_graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.simulator import QAOASimulator
from repro.quantum.noise import (
    GlobalDepolarizingModel,
    NoiseSpec,
    NoisyQAOASimulator,
    PauliTrajectoryModel,
    apply_readout_error,
)


@pytest.fixture
def simulator(petersen_like):
    return QAOASimulator(petersen_like)


class TestNoiseSpec:
    def test_defaults_noiseless(self):
        spec = NoiseSpec()
        assert spec.layer_fidelity == 1.0
        assert spec.readout_error == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"layer_fidelity": 1.5},
            {"layer_fidelity": -0.1},
            {"qubit_error_rate": 2.0},
            {"readout_error": 0.6},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CircuitError):
            NoiseSpec(**kwargs)


class TestGlobalDepolarizing:
    def test_perfect_fidelity_is_ideal(self, simulator):
        model = GlobalDepolarizingModel(simulator, 1.0)
        gammas, betas = [0.5], [0.3]
        assert model.expectation(gammas, betas) == pytest.approx(
            simulator.expectation(gammas, betas)
        )

    def test_zero_fidelity_gives_mixed_value(self, simulator, petersen_like):
        model = GlobalDepolarizingModel(simulator, 0.0)
        mixed = petersen_like.num_edges / 2.0  # mean cut over all strings
        assert model.expectation([0.5], [0.3]) == pytest.approx(mixed)

    def test_contraction_monotone_in_fidelity(self, simulator):
        gammas, betas = [0.6], [0.35]
        ideal = simulator.expectation(gammas, betas)
        mixed = float(simulator.problem.cost_diagonal().mean())
        values = [
            GlobalDepolarizingModel(simulator, f).expectation(gammas, betas)
            for f in (0.5, 0.8, 0.95)
        ]
        if ideal > mixed:
            assert values[0] < values[1] < values[2] <= ideal + 1e-12

    def test_depth_compounds(self, simulator):
        # same angles replicated at p=2 decay by F^2 toward mixed
        model = GlobalDepolarizingModel(simulator, 0.9)
        mixed = float(simulator.problem.cost_diagonal().mean())
        ideal_p2 = simulator.expectation([0.4, 0.4], [0.2, 0.2])
        expected = 0.81 * ideal_p2 + 0.19 * mixed
        assert model.expectation([0.4, 0.4], [0.2, 0.2]) == pytest.approx(
            expected
        )

    def test_invalid_fidelity(self, simulator):
        with pytest.raises(CircuitError):
            GlobalDepolarizingModel(simulator, 1.2)


class TestPauliTrajectory:
    def test_zero_rate_exact(self, simulator):
        model = PauliTrajectoryModel(simulator, 0.0, trajectories=4, rng=0)
        gammas, betas = [0.5], [0.3]
        assert model.expectation(gammas, betas) == pytest.approx(
            simulator.expectation(gammas, betas)
        )

    def test_noise_degrades_good_angles(self, simulator):
        # at well-optimized angles noise should pull toward the mixed value
        from repro.qaoa.analytic import p1_optimal_angles_regular

        gamma, beta = p1_optimal_angles_regular(3)
        ideal = simulator.expectation([gamma], [beta])
        model = PauliTrajectoryModel(
            simulator, 0.2, trajectories=200, rng=1
        )
        noisy = model.expectation([gamma], [beta])
        assert noisy < ideal

    def test_trajectory_average_matches_analytic_ballpark(self, simulator):
        # single-qubit depolarizing with rate r per qubit behaves like a
        # global fidelity of roughly (1 - r)^n for small r; check the
        # trajectory model lands in a loose band around the analytic model
        rate = 0.05
        gammas, betas = [0.6], [0.35]
        trajectory = PauliTrajectoryModel(
            simulator, rate, trajectories=400, rng=2
        ).expectation(gammas, betas)
        analytic = GlobalDepolarizingModel(
            simulator, (1 - rate) ** simulator.num_qubits
        ).expectation(gammas, betas)
        ideal = simulator.expectation(gammas, betas)
        mixed = float(simulator.problem.cost_diagonal().mean())
        assert min(analytic, mixed) - 0.5 <= trajectory <= ideal + 0.1

    def test_validation(self, simulator):
        with pytest.raises(CircuitError):
            PauliTrajectoryModel(simulator, 1.5)
        with pytest.raises(CircuitError):
            PauliTrajectoryModel(simulator, 0.1, trajectories=0)

    def test_deterministic_with_seed(self, simulator):
        a = PauliTrajectoryModel(simulator, 0.1, trajectories=20, rng=3)
        b = PauliTrajectoryModel(simulator, 0.1, trajectories=20, rng=3)
        assert a.expectation([0.5], [0.3]) == pytest.approx(
            b.expectation([0.5], [0.3])
        )


class TestReadoutError:
    def test_zero_probability_identity(self):
        samples = np.array([0, 5, 7])
        out = apply_readout_error(samples, 3, 0.0, rng=0)
        assert np.array_equal(out, samples)

    def test_flips_bounded_by_qubits(self):
        samples = np.zeros(1000, dtype=np.int64)
        out = apply_readout_error(samples, 4, 0.5, rng=0)
        assert out.max() < 16

    def test_flip_rate_statistics(self):
        samples = np.zeros(4000, dtype=np.int64)
        out = apply_readout_error(samples, 1, 0.25, rng=1)
        assert abs((out == 1).mean() - 0.25) < 0.05

    def test_validation(self):
        with pytest.raises(CircuitError):
            apply_readout_error(np.zeros(1, dtype=np.int64), 1, 0.9)

    def test_does_not_mutate_input(self):
        samples = np.array([0, 0, 0])
        apply_readout_error(samples, 2, 0.5, rng=0)
        assert samples.sum() == 0


class TestNoisyQAOASimulator:
    def test_noiseless_spec_matches_ideal(self, petersen_like):
        noisy = NoisyQAOASimulator(petersen_like, NoiseSpec(), rng=0)
        ideal = QAOASimulator(petersen_like)
        assert noisy.expectation([0.5], [0.3]) == pytest.approx(
            ideal.expectation([0.5], [0.3])
        )

    def test_gradient_scaled_by_survival(self, petersen_like):
        spec = NoiseSpec(layer_fidelity=0.8)
        noisy = NoisyQAOASimulator(petersen_like, spec, rng=0)
        ideal = QAOASimulator(petersen_like)
        _, ng, nb = noisy.expectation_and_gradient([0.5], [0.3])
        _, ig, ib = ideal.expectation_and_gradient([0.5], [0.3])
        assert ng == pytest.approx(0.8 * ig)
        assert nb == pytest.approx(0.8 * ib)

    def test_gradient_consistent_with_expectation(self, petersen_like):
        spec = NoiseSpec(layer_fidelity=0.85)
        noisy = NoisyQAOASimulator(petersen_like, spec, rng=0)
        value, _, _ = noisy.expectation_and_gradient([0.5], [0.3])
        assert value == pytest.approx(noisy.expectation([0.5], [0.3]))

    def test_optimizable_under_noise(self, petersen_like):
        # the noisy simulator plugs into the standard optimizer
        from repro.qaoa.optimizers import AdamOptimizer

        spec = NoiseSpec(layer_fidelity=0.9)
        noisy = NoisyQAOASimulator(petersen_like, spec, rng=0)
        start = noisy.expectation([0.3], [0.2])
        result = AdamOptimizer().run(
            noisy, np.array([0.3]), np.array([0.2]), max_iters=60
        )
        assert result.expectation > start

    def test_sample_cut_with_readout_noise(self, petersen_like):
        spec = NoiseSpec(readout_error=0.2)
        noisy = NoisyQAOASimulator(petersen_like, spec, rng=0)
        bitstring, value = noisy.sample_cut([0.5], [0.3], shots=128, rng=1)
        problem = MaxCutProblem(petersen_like)
        assert value <= problem.max_cut_value()
        assert 0 <= bitstring < (1 << 10)
