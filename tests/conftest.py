"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import QAOADataset
from repro.data.generation import GenerationConfig, generate_dataset
from repro.graphs.graph import Graph
from repro.graphs.generators import random_regular_graph


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle():
    """K3 — the smallest graph with a triangle."""
    return Graph(3, ((0, 1), (1, 2), (0, 2)), name="triangle")


@pytest.fixture
def square():
    """C4 — bipartite, max cut = 4."""
    return Graph.cycle(4, name="square")


@pytest.fixture
def petersen_like():
    """A 3-regular graph on 10 nodes."""
    return random_regular_graph(10, 3, rng=42, name="cubic10")


@pytest.fixture
def weighted_triangle():
    """K3 with distinct weights."""
    return Graph(3, ((0, 1), (1, 2), (0, 2)), (1.0, 2.0, 3.0), name="wk3")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 24-graph labeled dataset shared across pipeline tests."""
    config = GenerationConfig(
        num_graphs=24, min_nodes=4, max_nodes=8, optimizer_iters=30, seed=99
    )
    return generate_dataset(config)
