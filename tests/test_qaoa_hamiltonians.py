"""Tests for Ising / QUBO diagonal Hamiltonians."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators import random_weighted_graph
from repro.maxcut.problem import MaxCutProblem, all_cut_values
from repro.qaoa.hamiltonians import (
    DiagonalProblem,
    IsingModel,
    QUBO,
    ising_to_maxcut,
    maxcut_to_ising,
)
from repro.qaoa.simulator import QAOASimulator


class TestIsingModel:
    def test_single_spin_field(self):
        model = IsingModel(1, (2.0,), ())
        # state 0 -> spin +1 -> value +2; state 1 -> spin -1 -> value -2
        assert model.value(0) == 2.0
        assert model.value(1) == -2.0

    def test_coupling_sign(self):
        model = IsingModel(2, (0.0, 0.0), ((0, 1, 1.0),))
        assert model.value(0b00) == 1.0  # aligned spins
        assert model.value(0b01) == -1.0  # anti-aligned

    def test_diagonal_matches_value(self):
        model = IsingModel(
            3, (0.5, -1.0, 0.2), ((0, 1, 1.0), (1, 2, -0.7)), offset=0.3
        )
        diagonal = model.diagonal()
        for z in range(8):
            assert diagonal[z] == pytest.approx(model.value(z))

    def test_from_arrays(self):
        h = np.array([1.0, 0.0])
        J = np.array([[0.0, 0.5], [0.5, 0.0]])
        model = IsingModel.from_arrays(h, J)
        assert model.couplings == ((0, 1, 0.5),)

    def test_from_arrays_rejects_asymmetric(self):
        with pytest.raises(GraphError):
            IsingModel.from_arrays(
                np.zeros(2), np.array([[0.0, 1.0], [0.0, 0.0]])
            )

    def test_validation(self):
        with pytest.raises(GraphError):
            IsingModel(2, (0.0,), ())
        with pytest.raises(GraphError):
            IsingModel(2, (0.0, 0.0), ((0, 0, 1.0),))
        with pytest.raises(GraphError):
            IsingModel(2, (0.0, 0.0), ((0, 1, 1.0), (1, 0, 2.0)))

    def test_optimum(self):
        model = IsingModel(2, (0.0, 0.0), ((0, 1, -1.0),))
        solution = model.optimum()
        assert solution.value == 1.0  # anti-aligned wins
        assert solution.optimal


class TestQUBO:
    def test_value(self):
        qubo = QUBO.from_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        # symmetrized: Q = [[1,1],[1,3]]
        assert qubo.value(0b00) == 0.0
        assert qubo.value(0b01) == 1.0  # x0 = 1
        assert qubo.value(0b10) == 3.0
        assert qubo.value(0b11) == pytest.approx(1 + 3 + 2 * 1)

    def test_diagonal_matches_value(self):
        rng = np.random.default_rng(0)
        qubo = QUBO.from_matrix(rng.normal(size=(4, 4)))
        diagonal = qubo.diagonal()
        for z in range(16):
            assert diagonal[z] == pytest.approx(qubo.value(z))

    def test_rejects_nonsquare(self):
        with pytest.raises(GraphError):
            QUBO.from_matrix(np.ones((2, 3)))

    @given(st.integers(0, 10**6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_qubo_ising_equivalence(self, seed, n):
        rng = np.random.default_rng(seed)
        qubo = QUBO.from_matrix(rng.normal(size=(n, n)))
        ising = qubo.to_ising()
        np.testing.assert_allclose(
            qubo.diagonal(), ising.diagonal(), atol=1e-10
        )

    def test_optimum_consistency(self):
        rng = np.random.default_rng(5)
        qubo = QUBO.from_matrix(rng.normal(size=(5, 5)))
        assert qubo.optimum().value == pytest.approx(
            qubo.to_ising().optimum().value
        )


class TestConversions:
    def test_maxcut_to_ising_exact(self, petersen_like):
        model = maxcut_to_ising(petersen_like)
        np.testing.assert_allclose(
            model.diagonal(), all_cut_values(petersen_like), atol=1e-10
        )

    def test_maxcut_to_ising_weighted(self):
        graph = random_weighted_graph(6, 0.6, rng=1)
        model = maxcut_to_ising(graph)
        np.testing.assert_allclose(
            model.diagonal(), all_cut_values(graph), atol=1e-10
        )

    def test_ising_to_maxcut_roundtrip(self):
        model = IsingModel(
            4, (0.0,) * 4, ((0, 1, 0.5), (1, 2, -1.0), (2, 3, 0.25))
        )
        graph, scale, shift = ising_to_maxcut(model)
        cuts = all_cut_values(graph)
        np.testing.assert_allclose(
            model.diagonal(), shift + scale * cuts, atol=1e-10
        )

    def test_ising_to_maxcut_rejects_fields(self):
        model = IsingModel(2, (1.0, 0.0), ((0, 1, 1.0),))
        with pytest.raises(GraphError):
            ising_to_maxcut(model)


class TestDiagonalProblem:
    def test_simulator_accepts_ising(self):
        model = IsingModel(
            4, (0.3, -0.2, 0.0, 0.1), ((0, 1, 1.0), (2, 3, -0.5))
        )
        problem = DiagonalProblem.from_ising(model)
        simulator = QAOASimulator(problem)
        value = simulator.expectation([0.4], [0.3])
        assert model.diagonal().min() - 1e-9 <= value <= (
            model.diagonal().max() + 1e-9
        )

    def test_simulator_gradients_on_ising(self):
        model = IsingModel(4, (0.3, -0.2, 0.0, 0.1), ((0, 1, 1.0),))
        simulator = QAOASimulator(DiagonalProblem.from_ising(model))
        gammas, betas = np.array([0.5]), np.array([0.3])
        _, gg, gb = simulator.expectation_and_gradient(gammas, betas)
        fg, fb = simulator.gradient_finite_difference(gammas, betas)
        np.testing.assert_allclose(gg, fg, atol=1e-6)
        np.testing.assert_allclose(gb, fb, atol=1e-6)

    def test_optimization_on_qubo(self):
        from repro.qaoa.optimizers import AdamOptimizer

        rng = np.random.default_rng(2)
        qubo = QUBO.from_matrix(rng.normal(size=(5, 5)))
        problem = DiagonalProblem.from_qubo(qubo)
        simulator = QAOASimulator(problem)
        start = simulator.expectation([0.1], [0.1])
        result = AdamOptimizer().run(
            simulator, np.array([0.1]), np.array([0.1]), max_iters=80
        )
        assert result.expectation >= start

    def test_normalized_ratio(self):
        problem = DiagonalProblem(np.array([-2.0, 0.0, 6.0, 2.0]), 2)
        assert problem.approximation_ratio(6.0) == pytest.approx(1.0)
        assert problem.approximation_ratio(-2.0) == pytest.approx(0.0)
        assert problem.approximation_ratio(2.0) == pytest.approx(0.5)

    def test_rejects_bad_length(self):
        with pytest.raises(GraphError):
            DiagonalProblem(np.zeros(5))

    def test_matches_maxcut_problem(self, petersen_like):
        # DiagonalProblem wrapping the cut diagonal == MaxCutProblem path
        maxcut = MaxCutProblem(petersen_like)
        diag = DiagonalProblem(all_cut_values(petersen_like))
        sim_a = QAOASimulator(maxcut)
        sim_b = QAOASimulator(diag)
        assert sim_a.expectation([0.5], [0.3]) == pytest.approx(
            sim_b.expectation([0.5], [0.3])
        )
