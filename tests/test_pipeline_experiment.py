"""Tests for the end-to-end experiment runner."""

import pytest

from repro.data.generation import GenerationConfig
from repro.pipeline.experiment import ExperimentConfig, run_experiment
from repro.pipeline.training import TrainingConfig


@pytest.fixture(scope="module")
def small_report():
    config = ExperimentConfig(
        generation=GenerationConfig(
            num_graphs=24, min_nodes=4, max_nodes=8, optimizer_iters=25
        ),
        training=TrainingConfig(epochs=8),
        architectures=("gcn", "gin"),
        test_size=6,
        eval_optimizer_iters=20,
        prune_threshold=0.6,
        selective_rate=0.5,
        apply_fixed_angle_relabel=False,
        seed=42,
    )
    return run_experiment(config)


class TestRunExperiment:
    def test_report_structure(self, small_report):
        assert set(small_report.results) == {"gcn", "gin"}
        assert set(small_report.training_losses) == {"gcn", "gin"}
        assert small_report.dataset_summary["count"] == 24

    def test_each_result_covers_test_set(self, small_report):
        for result in small_report.results.values():
            assert len(result.comparisons) == 6

    def test_models_returned_in_eval_mode(self, small_report):
        for model in small_report.models.values():
            assert not model.training

    def test_table1_rows(self, small_report):
        table = small_report.table1()
        for arch, row in table.items():
            assert row["count"] == 6
            assert "mean_improvement" in row
            assert -100.0 <= row["mean_improvement"] <= 100.0

    def test_pruning_report_present(self, small_report):
        assert small_report.pruning_report is not None
        assert small_report.pruning_report.kept == 24 - small_report.pruning_report.pruned

    def test_relabel_skipped_when_disabled(self, small_report):
        assert small_report.relabel_report is None

    def test_paper_scale_config(self):
        config = ExperimentConfig.paper_scale()
        assert config.generation.num_graphs == 9598
        assert config.test_size == 100
        assert config.training.epochs == 100
        assert set(config.architectures) == {"gat", "gcn", "gin", "sage"}
