"""Tests for Selective Data Pruning and fixed-angle relabeling."""

import numpy as np
import pytest

from repro.data.dataset import QAOADataset
from repro.data.pruning import fixed_angle_relabel, selective_data_pruning
from repro.exceptions import DatasetError
from repro.qaoa.fixed_angles import FixedAngleTable

from tests.test_data_dataset import make_record


@pytest.fixture
def mixed_dataset():
    """10 good (AR 0.9) + 10 bad (AR 0.5) records."""
    return QAOADataset(
        [make_record(0.9) for _ in range(10)]
        + [make_record(0.5) for _ in range(10)]
    )


class TestSelectiveDataPruning:
    def test_hard_threshold(self, mixed_dataset):
        pruned, report = selective_data_pruning(
            mixed_dataset, threshold=0.7, selective_rate=0.0, rng=0
        )
        assert len(pruned) == 10
        assert report.pruned == 10
        assert report.below_threshold == 10
        assert report.rescued == 0
        assert report.mean_ar_after > report.mean_ar_before

    def test_selective_rate_one_keeps_everything(self, mixed_dataset):
        pruned, report = selective_data_pruning(
            mixed_dataset, threshold=0.7, selective_rate=1.0, rng=0
        )
        assert len(pruned) == 20
        assert report.rescued == 10

    def test_selective_rate_partial(self, mixed_dataset):
        pruned, report = selective_data_pruning(
            mixed_dataset, threshold=0.7, selective_rate=0.5, rng=1
        )
        assert 10 <= len(pruned) <= 20
        assert report.rescued == len(pruned) - 10
        # statistical sanity over many seeds: about half rescued
        rescued = [
            selective_data_pruning(mixed_dataset, 0.7, 0.5, rng=s)[1].rescued
            for s in range(40)
        ]
        assert 3 <= np.mean(rescued) <= 7

    def test_threshold_zero_keeps_all(self, mixed_dataset):
        pruned, report = selective_data_pruning(mixed_dataset, threshold=0.0)
        assert len(pruned) == 20
        assert report.below_threshold == 0

    def test_invalid_arguments(self, mixed_dataset):
        with pytest.raises(DatasetError):
            selective_data_pruning(mixed_dataset, threshold=1.5)
        with pytest.raises(DatasetError):
            selective_data_pruning(mixed_dataset, selective_rate=-0.1)

    def test_deterministic_with_seed(self, mixed_dataset):
        a, _ = selective_data_pruning(mixed_dataset, 0.7, 0.5, rng=9)
        b, _ = selective_data_pruning(mixed_dataset, 0.7, 0.5, rng=9)
        assert len(a) == len(b)

    def test_boundary_record_kept(self):
        dataset = QAOADataset([make_record(0.7)])
        pruned, _ = selective_data_pruning(dataset, threshold=0.7)
        assert len(pruned) == 1  # >= threshold is kept


class TestFixedAngleRelabel:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedAngleTable(
            ensemble_size=2, ensemble_nodes=8, optimizer_iters=30, restarts=1,
            rng=4,
        )

    def test_relabels_bad_covered_records(self, table):
        from repro.graphs.generators import random_regular_graph
        from repro.data.dataset import QAOARecord
        from repro.maxcut.problem import MaxCutProblem

        graph = random_regular_graph(8, 3, rng=0)
        optimum = MaxCutProblem(graph).max_cut_value()
        bad = QAOARecord(
            graph=graph,
            p=1,
            gammas=(0.01,),
            betas=(0.01,),
            expectation=optimum * 0.5,
            optimal_value=optimum,
            approximation_ratio=0.5,
        )
        relabeled, report = fixed_angle_relabel(QAOADataset([bad]), table)
        assert report.eligible == 1
        assert report.relabeled == 1
        assert relabeled[0].source == "fixed_angle"
        assert relabeled[0].approximation_ratio > 0.5

    def test_keeps_good_labels(self, table):
        from repro.graphs.generators import random_regular_graph
        from repro.data.dataset import QAOARecord
        from repro.maxcut.problem import MaxCutProblem

        graph = random_regular_graph(8, 3, rng=1)
        optimum = MaxCutProblem(graph).max_cut_value()
        good = QAOARecord(
            graph=graph,
            p=1,
            gammas=(0.6,),
            betas=(0.4,),
            expectation=optimum * 0.99,
            optimal_value=optimum,
            approximation_ratio=0.99,
        )
        relabeled, report = fixed_angle_relabel(QAOADataset([good]), table)
        assert report.relabeled == 0
        assert relabeled[0].source == "optimized"

    def test_uncovered_degree_skipped(self, table):
        record = make_record()  # C4: 2-regular, below coverage window
        relabeled, report = fixed_angle_relabel(QAOADataset([record]), table)
        assert report.eligible == 0
        assert relabeled[0].source == "optimized"

    def test_coverage_fraction(self, table):
        from repro.graphs.generators import random_regular_graph
        from repro.data.dataset import QAOARecord
        from repro.maxcut.problem import MaxCutProblem

        covered_graph = random_regular_graph(8, 3, rng=2)
        optimum = MaxCutProblem(covered_graph).max_cut_value()
        covered = QAOARecord(
            graph=covered_graph,
            p=1,
            gammas=(0.1,),
            betas=(0.1,),
            expectation=optimum * 0.5,
            optimal_value=optimum,
            approximation_ratio=0.5,
        )
        uncovered = make_record()
        _, report = fixed_angle_relabel(
            QAOADataset([covered, uncovered, uncovered]), table
        )
        assert report.coverage_fraction == pytest.approx(1 / 3)

    def test_empty_dataset(self, table):
        relabeled, report = fixed_angle_relabel(QAOADataset(), table)
        assert len(relabeled) == 0
        assert report.coverage_fraction == 0.0
