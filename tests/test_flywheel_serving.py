"""Serving-side flywheel satellites: cache invalidation, hot-swap,
and the ``flywheel`` metrics section."""

import json

import pytest

from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.serving import (
    SOURCE_MODEL,
    PredictionService,
    ServingConfig,
    cache_key,
)
from repro.serving.cache import PredictionCache
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import model_fingerprint


def make_model(seed: int) -> QAOAParameterPredictor:
    model = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=8, rng=seed)
    model.eval()
    return model


class TestCacheInvalidation:
    def test_invalidate_model_removes_only_matching_prefix(self):
        cache = PredictionCache(max_size=16)
        for graph_hash in ("aaa", "bbb"):
            cache.put(f"old:{graph_hash}", 1)
            cache.put(f"new:{graph_hash}", 2)
        removed = cache.invalidate_model("old")
        assert removed == 2
        assert len(cache) == 2
        assert cache.get("new:aaa") == 2
        assert cache.get("old:aaa") is None

    def test_prefix_match_is_exact_on_model_key(self):
        """'old' must not sweep away 'older:...' entries."""
        cache = PredictionCache(max_size=16)
        cache.put("old:aaa", 1)
        cache.put("older:aaa", 2)
        assert cache.invalidate_model("old") == 1
        assert cache.get("older:aaa") == 2

    def test_swap_evictions_counted_in_stats(self):
        cache = PredictionCache(max_size=16)
        cache.put("fp:one", 1)
        cache.invalidate_model("fp")
        stats = cache.stats()
        assert stats["evictions_swap"] == 1
        assert cache.invalidate_model("fp") == 0  # idempotent


class TestHotSwap:
    @pytest.fixture
    def service(self):
        service = PredictionService(
            model=make_model(1),
            config=ServingConfig(default_p=1, batching=False),
        )
        yield service
        service.close()

    def test_swap_invalidates_old_cache_and_keeps_serving(self, service):
        graph = Graph.cycle(5)
        old_fp = service.registry.get().fingerprint
        first = service.predict(graph)
        assert first.source == SOURCE_MODEL
        assert service.cache.get(cache_key(graph, old_fp)) is not None

        new_model = make_model(2)
        summary = service.swap_model(new_model, version=7)
        assert summary["old_fingerprint"] == old_fp
        assert summary["new_fingerprint"] == model_fingerprint(new_model)
        assert summary["invalidated_cache_entries"] == 1
        assert summary["version"] == 7
        assert service.cache.get(cache_key(graph, old_fp)) is None

        # The new model answers immediately, and its answer differs.
        after = service.predict(graph)
        assert after.source == SOURCE_MODEL
        assert after.cache_key.startswith(summary["new_fingerprint"] + ":")
        assert (after.gammas, after.betas) != (first.gammas, first.betas)

    def test_swap_same_weights_invalidates_nothing(self, service):
        graph = Graph.cycle(4)
        service.predict(graph)
        summary = service.swap_model(make_model(1))  # identical weights
        assert summary["old_fingerprint"] == summary["new_fingerprint"]
        assert summary["invalidated_cache_entries"] == 0
        assert service.predict(graph).cached is True

    def test_swap_replaces_batcher(self):
        service = PredictionService(
            model=make_model(1),
            config=ServingConfig(
                default_p=1, batching=True, max_batch_size=2, max_wait_ms=1.0
            ),
        )
        try:
            first = service.predict(Graph.cycle(5))
            assert first.source == SOURCE_MODEL
            service.swap_model(make_model(2))
            after = service.predict(Graph.cycle(6))
            assert after.source == SOURCE_MODEL
            fingerprint = service.registry.get().fingerprint
            assert after.cache_key.startswith(fingerprint + ":")
        finally:
            service.close()

    def test_swap_metrics_recorded(self, service):
        service.swap_model(make_model(2), version=3)
        service.swap_model(make_model(3))
        flywheel = service.metrics_snapshot()["flywheel"]
        assert flywheel["hot_swaps"] == 2
        # Last promoted version sticks even when a later swap has none.
        assert flywheel["promotion_version"] == 3


class TestMetricsSection:
    def test_snapshot_flywheel_section_json_safe(self):
        service = PredictionService(
            config=ServingConfig(default_p=1, batching=False)
        )
        service.predict(Graph.cycle(4))
        snapshot = service.metrics_snapshot()
        payload = json.loads(json.dumps(snapshot))
        flywheel = payload["flywheel"]
        assert flywheel["replay_logged"] == 0
        assert flywheel["replay_drops"] == 0
        assert flywheel["hot_swaps"] == 0
        assert flywheel["promotion_version"] is None
        assert "replay_log" not in flywheel  # no log attached
        service.close()

    def test_empty_window_percentiles_are_null(self):
        metrics = ServingMetrics()
        percentiles = metrics.latency_percentiles()
        assert percentiles == {
            "p50_ms": None,
            "p90_ms": None,
            "p99_ms": None,
            "max_ms": None,
        }
        # And the snapshot stays JSON-serializable (null, not NaN).
        assert "NaN" not in json.dumps(metrics.snapshot())

    def test_replay_stats_embedded_when_log_attached(self, tmp_path):
        from repro.flywheel.replay import ReplayLog

        service = PredictionService(
            config=ServingConfig(default_p=1, batching=False),
            replay_log=ReplayLog(tmp_path / "replay"),
        )
        service.predict(Graph.cycle(4))
        flywheel = service.metrics_snapshot()["flywheel"]
        assert flywheel["replay_logged"] == 1
        assert flywheel["replay_log"]["logged"] == 1
        service.close()
