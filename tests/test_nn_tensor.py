"""Tests for the autograd Tensor: every op gradient-checked.

The property tests compare reverse-mode gradients against central finite
differences on random inputs — the standard oracle for autograd
correctness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.nn.tensor import Tensor, concat, no_grad, stack, where


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Assert autograd gradient == numeric gradient for scalar build(x)."""
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=shape)

    tensor = Tensor(x_data.copy(), requires_grad=True)
    out = build(tensor)
    out.backward()

    numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), x_data)
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestBasicOps:
    def test_add(self):
        check_gradient(lambda x: (x + 2.0).sum(), (3, 4))

    def test_radd(self):
        check_gradient(lambda x: (2.0 + x).sum(), (3,))

    def test_sub_rsub(self):
        check_gradient(lambda x: (x - 1.0).sum(), (3,))
        check_gradient(lambda x: (1.0 - x).sum(), (3,))

    def test_mul(self):
        check_gradient(lambda x: (x * x).sum(), (4,))

    def test_div(self):
        check_gradient(lambda x: (1.0 / (x * x + 2.0)).sum(), (4,))

    def test_neg(self):
        check_gradient(lambda x: (-x).sum(), (3,))

    def test_pow(self):
        check_gradient(lambda x: ((x * x + 1.0) ** 1.5).sum(), (3,))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_pow_rejects_bool_and_array_exponents(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** True
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([2.0])

    def test_pow_accepts_integer_and_0d_exponents(self):
        base = np.array([1.5, 2.0, 3.0])
        expected = base**2
        for exponent in (2, np.int64(2), np.float64(2.0), np.array(2.0)):
            np.testing.assert_array_equal(
                (Tensor(base) ** exponent).data, expected
            )

    def test_matmul(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(4, 2))
        check_gradient(lambda x: (x @ Tensor(other)).sum(), (3, 4))

    def test_matmul_second_arg_grad(self):
        rng = np.random.default_rng(2)
        a_data = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = (Tensor(a_data) @ b).sum()
        out.backward()
        numeric = numeric_gradient(
            lambda arr: float((a_data @ arr).sum()), b.data.copy()
        )
        np.testing.assert_allclose(b.grad, numeric, atol=1e-5)

    def test_matmul_requires_2d(self):
        with pytest.raises(ModelError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_broadcasting_add(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        ((x + b) * 2.0).sum().backward()
        assert x.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 6.0)


class TestActivations:
    def test_exp(self):
        check_gradient(lambda x: x.exp().sum(), (4,))

    def test_log(self):
        check_gradient(lambda x: (x * x + 1.0).log().sum(), (4,))

    def test_sqrt(self):
        check_gradient(lambda x: (x * x + 1.0).sqrt().sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), (4,))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), (4,))

    def test_relu(self):
        # avoid the kink: shift inputs away from 0
        check_gradient(lambda x: (x + 5.0).relu().sum(), (4,))
        check_gradient(lambda x: (x - 5.0).relu().sum(), (4,))

    def test_leaky_relu(self):
        check_gradient(lambda x: (x + 5.0).leaky_relu(0.1).sum(), (4,))
        check_gradient(lambda x: (x - 5.0).leaky_relu(0.1).sum(), (4,))

    def test_abs(self):
        check_gradient(lambda x: (x + 5.0).abs().sum(), (4,))


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(), (3, 4))

    def test_mean_axis(self):
        check_gradient(lambda x: (x.mean(axis=1) ** 2.0).sum(), (3, 4))

    def test_max_all(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.permutation(12).astype(float).reshape(3, 4),
                   requires_grad=True)
        x.max().backward()
        assert x.grad.sum() == pytest.approx(1.0)
        assert x.grad.reshape(-1)[np.argmax(x.data)] == pytest.approx(1.0)

    def test_max_axis(self):
        rng = np.random.default_rng(1)
        data = rng.permutation(12).astype(float).reshape(3, 4)
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        assert x.grad.sum() == pytest.approx(3.0)

    def test_max_tie_splitting(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(2, 6) ** 2.0).sum(), (3, 4))

    def test_reshape_varargs_matches_tuple(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == x.reshape((2, 3)).shape

    def test_transpose(self):
        rng = np.random.default_rng(3)
        other = rng.normal(size=(3, 2))
        check_gradient(lambda x: (x.T @ Tensor(other)).sum(), (3, 4))

    def test_transpose_requires_2d(self):
        with pytest.raises(ModelError):
            Tensor(np.ones(3)).transpose()

    def test_getitem(self):
        check_gradient(lambda x: (x[np.array([0, 2, 2])] ** 2.0).sum(), (4, 3))

    def test_getitem_slice(self):
        check_gradient(lambda x: (x[1:3] ** 2.0).sum(), (4, 3))

    def test_concat(self):
        rng = np.random.default_rng(4)
        b_data = rng.normal(size=(2, 3))
        check_gradient(
            lambda x: (concat([x, Tensor(b_data)], axis=0) ** 2.0).sum(),
            (2, 3),
        )

    def test_concat_axis1(self):
        rng = np.random.default_rng(5)
        b_data = rng.normal(size=(2, 2))
        check_gradient(
            lambda x: (concat([x, Tensor(b_data)], axis=1) ** 2.0).sum(),
            (2, 3),
        )

    def test_stack(self):
        check_gradient(lambda x: (stack([x, x * 2.0]) ** 2.0).sum(), (3,))

    def test_where(self):
        mask = np.array([True, False, True])
        check_gradient(
            lambda x: where(mask, x * 2.0, x * 3.0).sum(), (3,)
        )


class TestBackwardMechanics:
    def test_requires_scalar_for_default_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError, match="scalar"):
            x.backward()

    def test_explicit_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_explicit_gradient_shape_checked(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError):
            (x * 2.0).backward(np.ones(4))

    def test_backward_without_requires_grad(self):
        with pytest.raises(ModelError):
            Tensor(np.ones(1)).sum().backward()

    def test_gradient_accumulation(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 5.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x used twice: gradient must sum both paths
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x  # path 1 and 2 share x
        (y + x).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])  # 2x + 1

    def test_detach_blocks_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * 2.0 + x).sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2.0).sum()
        assert not y.requires_grad

    def test_item(self):
        assert Tensor(np.array([3.5])).item() == 3.5
        with pytest.raises(ModelError):
            Tensor(np.ones(3)).item()

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_chain_rule_random_composite(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(3, 3))

        def build(x):
            return ((x @ x.T).tanh().sum(axis=0) ** 2.0).mean()

        x = Tensor(data.copy(), requires_grad=True)
        build(x).backward()
        numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-4)
