"""Tests for the serving replay log (`repro.flywheel.replay`)."""

import json
import threading

import pytest

from repro.exceptions import ReplayLogError
from repro.flywheel.replay import ReplayLog, ReplayRecord
from repro.graphs.graph import Graph
from repro.serving import PredictionService, ServingConfig, cache_key


def make_record(index: int = 0, source: str = "random") -> ReplayRecord:
    graph = Graph.cycle(4 + (index % 3), name=f"g{index}")
    return ReplayRecord(
        graph=graph,
        wl_hash=f"hash{index:04d}",
        p=1,
        gammas=(0.1 * (index + 1),),
        betas=(0.2 * (index + 1),),
        source=source,
        model_key="abc123",
        cached=False,
        latency_ms=1.5,
    )


class TestRoundTrip:
    def test_append_and_load(self, tmp_path):
        log = ReplayLog(tmp_path / "replay")
        for i in range(5):
            assert log.append(make_record(i)) is True
        log.close()
        records = log.load()
        assert len(records) == 5
        assert [r.wl_hash for r in records] == [f"hash{i:04d}" for i in range(5)]
        assert records[0].gammas == (0.1,)
        assert records[0].source == "random"
        assert records[0].model_key == "abc123"

    def test_payload_roundtrip_preserves_graph(self, tmp_path):
        record = make_record(2)
        clone = ReplayRecord.from_payload(record.to_payload())
        assert clone.graph.num_nodes == record.graph.num_nodes
        assert clone.graph.edges == record.graph.edges
        assert clone.gammas == record.gammas
        assert clone.latency_ms == record.latency_ms

    def test_malformed_payload_raises(self):
        with pytest.raises(ReplayLogError):
            ReplayRecord.from_payload({"wl_hash": "x"})

    def test_bad_config_rejected(self, tmp_path):
        with pytest.raises(ReplayLogError):
            ReplayLog(tmp_path, max_bytes=0)
        with pytest.raises(ReplayLogError):
            ReplayLog(tmp_path, sample_rate=1.5)


class TestConcurrency:
    def test_concurrent_appends_all_survive(self, tmp_path):
        """Threaded serving workers appending must never interleave lines."""
        log = ReplayLog(tmp_path / "replay")
        per_thread = 25
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    log.append(make_record(base + i)) for i in range(per_thread)
                ]
            )
            for base in range(0, 200, per_thread)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        records = log.load()
        assert len(records) == 200
        # Every line is complete JSON (no torn interleaving).
        assert log.recovered_lines == 0
        assert {r.wl_hash for r in records} == {
            f"hash{i:04d}" for i in range(200)
        }


class TestRotation:
    def test_rotates_at_size_limit(self, tmp_path):
        log = ReplayLog(tmp_path / "replay", max_bytes=512)
        for i in range(30):
            log.append(make_record(i))
        log.close()
        segments = log.segment_paths()
        assert len(segments) >= 2
        assert segments[0].name == "replay_00000.jsonl"
        # Order preserved across segments + active file.
        records = log.load()
        assert [r.wl_hash for r in records] == [
            f"hash{i:04d}" for i in range(30)
        ]
        assert log.rotations == len(segments)

    def test_rotation_survives_reopen(self, tmp_path):
        log = ReplayLog(tmp_path / "replay", max_bytes=512)
        for i in range(15):
            log.append(make_record(i))
        log.close()
        # A fresh process continues the segment numbering.
        log2 = ReplayLog(tmp_path / "replay", max_bytes=512)
        for i in range(15, 30):
            log2.append(make_record(i))
        log2.close()
        assert len(log2.load()) == 30


class TestCorruptionRecovery:
    def test_corrupt_trailing_line_recovered_on_load(self, tmp_path):
        log = ReplayLog(tmp_path / "replay")
        for i in range(3):
            log.append(make_record(i))
        log.close()
        # Simulated kill mid-append: a torn, non-JSON trailing line.
        with open(log.active_path, "ab") as handle:
            handle.write(b'{"graph": "torn')
        records = log.load()
        assert len(records) == 3
        assert log.recovered_lines == 1

    def test_interior_corrupt_line_skipped_not_fatal(self, tmp_path):
        log = ReplayLog(tmp_path / "replay")
        log.append(make_record(0))
        with open(log.active_path, "ab") as handle:
            handle.write(b"not json at all\n")
        log.close()
        log2 = ReplayLog(tmp_path / "replay")
        log2.append(make_record(1))
        log2.close()
        records = log2.load()
        assert [r.wl_hash for r in records] == ["hash0000", "hash0001"]
        assert log2.recovered_lines == 1

    def test_torn_tail_repaired_on_reopen(self, tmp_path):
        """A restarted writer truncates the torn tail before appending."""
        log = ReplayLog(tmp_path / "replay")
        for i in range(2):
            log.append(make_record(i))
        log.close()
        data = log.active_path.read_bytes()
        # Kill mid-write: last line half-flushed.
        log.active_path.write_bytes(data + b'{"wl_hash": "h')
        log2 = ReplayLog(tmp_path / "replay")
        log2.append(make_record(2))
        log2.close()
        # The torn bytes are gone; every surviving line parses.
        lines = log2.active_path.read_bytes().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)
        assert log2.recovered_lines == 1

    def test_atomicity_kill_loses_at_most_last_record(self, tmp_path):
        """Truncating at any byte boundary loses at most one record."""
        log = ReplayLog(tmp_path / "replay")
        for i in range(4):
            log.append(make_record(i))
        log.close()
        data = log.active_path.read_bytes()
        for cut in (len(data) - 1, len(data) - 10, len(data) // 2):
            log.active_path.write_bytes(data[:cut])
            reader = ReplayLog(tmp_path / "replay")
            records = reader.load()
            complete = data[:cut].count(b"\n")
            # Every fully terminated line survives; at most the one
            # torn line is lost (it may still parse when only the
            # newline itself was cut).
            assert complete <= len(records) <= complete + 1
            assert [r.wl_hash for r in records] == [
                f"hash{i:04d}" for i in range(len(records))
            ]
        log.active_path.write_bytes(data)


class TestSampling:
    def test_sampling_deterministic_across_instances(self, tmp_path):
        a = ReplayLog(tmp_path / "a", sample_rate=0.5, seed=3)
        b = ReplayLog(tmp_path / "b", sample_rate=0.5, seed=3)
        outcomes_a = [a.append(make_record(i)) for i in range(40)]
        outcomes_b = [b.append(make_record(i)) for i in range(40)]
        a.close()
        b.close()
        assert outcomes_a == outcomes_b
        assert 0 < a.logged < 40
        assert a.logged + a.sampled_out == 40

    def test_zero_rate_logs_nothing(self, tmp_path):
        log = ReplayLog(tmp_path / "replay", sample_rate=0.0)
        assert log.append(make_record(0)) is None
        assert not log.active_path.exists()


class TestServiceWiring:
    def test_predict_logs_one_record_per_request(self, tmp_path):
        log = ReplayLog(tmp_path / "replay")
        service = PredictionService(
            config=ServingConfig(default_p=1, batching=False),
            replay_log=log,
        )
        graph = Graph.cycle(5, name="c5")
        result = service.predict(graph)
        service.predict(graph)  # cache hit is logged too
        service.close()
        records = log.load()
        assert len(records) == 2
        assert records[0].cached is False
        assert records[1].cached is True
        # The WL hash matches the cache key's graph half.
        assert cache_key(graph, "").endswith(records[0].wl_hash)
        assert records[0].gammas == result.gammas
        assert records[0].source == result.source
        assert service.metrics.replay_logged == 2

    def test_broken_log_never_breaks_serving(self, tmp_path):
        # Directory path occupied by a file: every append fails.
        blocker = tmp_path / "replay"
        blocker.write_text("not a directory")
        log = ReplayLog(blocker)
        service = PredictionService(
            config=ServingConfig(default_p=1, batching=False),
            replay_log=log,
        )
        result = service.predict(Graph.cycle(4))
        assert len(result.gammas) == 1
        assert service.metrics.replay_drops == 1
        assert log.dropped == 1

    def test_stats_snapshot(self, tmp_path):
        log = ReplayLog(tmp_path / "replay", sample_rate=0.9, seed=1)
        log.append(make_record(0))
        stats = log.stats()
        assert stats["logged"] + stats["sampled_out"] == 1
        assert stats["sample_rate"] == 0.9


class TestCompaction:
    @staticmethod
    def _record(cls: int, source: str, gamma: float) -> ReplayRecord:
        # Same graph per class: duplicate WL hashes describe the same
        # instance, as they do in real traffic.
        return ReplayRecord(
            graph=Graph.cycle(5 + cls, name=f"class{cls}"),
            wl_hash=f"class{cls}",
            p=1,
            gammas=(gamma,),
            betas=(gamma,),
            source=source,
        )

    def _rotate_with(self, tmp_path, sequence):
        """Append ``sequence``, forcing rotation (and compaction) on the
        last append so every record lands in one sealed segment."""
        log = ReplayLog(tmp_path / "replay", max_bytes=1 << 20)
        for cls, source, gamma in sequence[:-1]:
            assert log.append(self._record(cls, source, gamma)) is True
        log.max_bytes = 1
        assert log.append(self._record(*sequence[-1])) is True
        log.close()
        return log

    def test_rotation_dedupes_by_wl_class_keeping_latest(self, tmp_path):
        sequence = [
            (0, "random", 0.1),
            (1, "model", 0.2),
            (0, "model", 0.3),
            (2, "fixed_angle", 0.4),
            (0, "fixed_angle", 0.5),
        ]
        log = self._rotate_with(tmp_path, sequence)
        assert log.compactions == 1
        assert log.compacted_records == 2
        records = log.load()
        # Survivors keep serving order of their *latest* occurrence.
        assert [r.wl_hash for r in records] == ["class1", "class2", "class0"]
        merged = records[-1]
        assert merged.gammas == (0.5,)  # latest served params win
        assert merged.weight == 3
        assert merged.source_counts == {
            "random": 1, "model": 1, "fixed_angle": 1,
        }
        # Untouched classes stay weight-1 with a compact line.
        assert records[0].weight == 1
        stats = log.stats()
        assert stats["compactions"] == 1
        assert stats["compacted_records"] == 2

    def test_selector_signals_survive_compaction(self, tmp_path):
        from repro.flywheel.selector import SelectionConfig, select_candidates

        sequence = [
            (0, "random", 0.1),
            (0, "model", 0.2),
            (1, "fixed_angle", 0.3),
            (0, "analytic", 0.4),
        ]
        raw = [self._record(*item) for item in sequence]
        log = self._rotate_with(tmp_path, sequence)
        compacted = log.load()
        assert len(compacted) == 2  # two classes survive

        config = SelectionConfig(max_evaluations=0)
        signature = lambda cands: [  # noqa: E731 - local shorthand
            (c.wl_hash, c.requests, c.fallback_requests, dict(c.sources))
            for c in cands
        ]
        assert signature(select_candidates(raw, config=config)) == signature(
            select_candidates(compacted, config=config)
        )

    def test_double_compaction_is_stable(self, tmp_path):
        # Re-compacting already-compacted records (e.g. a weighted
        # record duplicated again in a later segment) keeps summing
        # weights instead of resetting them.
        log = ReplayLog(tmp_path / "replay", max_bytes=1 << 20)
        weighted = self._record(0, "model", 0.7)
        weighted.weight = 4
        weighted.source_counts = {"model": 3, "random": 1}
        assert log.append(weighted) is True
        log.max_bytes = 1
        assert log.append(self._record(0, "random", 0.9)) is True
        log.close()
        records = log.load()
        assert len(records) == 1
        assert records[0].weight == 5
        assert records[0].source_counts == {"model": 3, "random": 2}
        assert records[0].gammas == (0.9,)
