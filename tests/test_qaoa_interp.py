"""Tests for INTERP / FOURIER depth-extension heuristics."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.graphs.generators import random_regular_graph
from repro.qaoa.interp import (
    fourier_coefficients,
    fourier_extend,
    fourier_schedule,
    interp_extend,
    interp_to_depth,
)
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator


class TestInterp:
    def test_depth_increases_by_one(self):
        gammas, betas = interp_extend([0.5], [0.3])
        assert len(gammas) == 2
        assert len(betas) == 2

    def test_p1_to_p2_values(self):
        # p=1: theta' = [(0*0 + 1*t), (1*t + 0*0)] = [t, t]
        gammas, betas = interp_extend([0.6], [0.2])
        np.testing.assert_allclose(gammas, [0.6, 0.6])
        np.testing.assert_allclose(betas, [0.2, 0.2])

    def test_monotone_ramp_preserved(self):
        # an increasing schedule stays (weakly) increasing under INTERP
        gammas, betas = interp_extend([0.2, 0.4, 0.6], [0.6, 0.4, 0.2])
        assert (np.diff(gammas) >= -1e-12).all()
        assert (np.diff(betas) <= 1e-12).all()

    def test_interp_to_depth(self):
        gammas, betas = interp_to_depth([0.5], [0.3], target_p=4)
        assert len(gammas) == 4

    def test_interp_to_depth_noop(self):
        gammas, betas = interp_to_depth([0.5, 0.6], [0.3, 0.1], target_p=2)
        np.testing.assert_allclose(gammas, [0.5, 0.6])

    def test_cannot_shrink(self):
        with pytest.raises(OptimizationError):
            interp_to_depth([0.5, 0.6], [0.3, 0.1], target_p=1)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            interp_extend([0.5, 0.6], [0.3])

    def test_extension_keeps_quality(self):
        # INTERP from optimized p=2 should start p=3 above the p=2 value
        # ... at least not catastrophically below it
        graph = random_regular_graph(10, 3, rng=4)
        simulator = QAOASimulator(graph)
        optimized = AdamOptimizer().run(
            simulator,
            np.array([0.4, 0.7]),
            np.array([0.4, 0.2]),
            max_iters=150,
        )
        gammas3, betas3 = interp_extend(optimized.gammas, optimized.betas)
        extended_value = simulator.expectation(gammas3, betas3)
        assert extended_value >= 0.9 * optimized.expectation

    def test_interp_beats_random_p3_start(self):
        graph = random_regular_graph(10, 3, rng=5)
        simulator = QAOASimulator(graph)
        optimized = AdamOptimizer().run(
            simulator, np.array([0.5]), np.array([0.3]), max_iters=100
        )
        gammas3, betas3 = interp_to_depth(
            optimized.gammas, optimized.betas, 3
        )
        interp_value = simulator.expectation(gammas3, betas3)
        rng = np.random.default_rng(0)
        random_values = [
            simulator.expectation(
                rng.uniform(0, 2 * np.pi, 3), rng.uniform(0, np.pi / 2, 3)
            )
            for _ in range(10)
        ]
        assert interp_value > np.mean(random_values)


class TestFourier:
    def test_roundtrip_exact(self):
        gammas = np.array([0.2, 0.5, 0.7])
        betas = np.array([0.6, 0.4, 0.1])
        u, v = fourier_coefficients(gammas, betas)
        back_g, back_b = fourier_schedule(u, v, 3)
        np.testing.assert_allclose(back_g, gammas, atol=1e-10)
        np.testing.assert_allclose(back_b, betas, atol=1e-10)

    def test_extend_shape(self):
        gammas, betas = fourier_extend([0.3, 0.5], [0.4, 0.2], target_p=5)
        assert len(gammas) == 5
        assert len(betas) == 5

    def test_extend_smooth_schedule(self):
        # a linear-ramp-like schedule stays smooth after extension
        gammas, betas = fourier_extend(
            [0.2, 0.4, 0.6], [0.6, 0.4, 0.2], target_p=6
        )
        assert np.abs(np.diff(gammas, 2)).max() < 0.5

    def test_validation(self):
        with pytest.raises(OptimizationError):
            fourier_schedule([0.1], [0.2, 0.3], 2)
        with pytest.raises(OptimizationError):
            fourier_schedule([0.1], [0.2], 0)

    def test_extension_keeps_quality(self):
        graph = random_regular_graph(8, 3, rng=6)
        simulator = QAOASimulator(graph)
        optimized = AdamOptimizer().run(
            simulator,
            np.array([0.4, 0.7]),
            np.array([0.4, 0.2]),
            max_iters=150,
        )
        gammas3, betas3 = fourier_extend(
            optimized.gammas, optimized.betas, 3
        )
        assert simulator.expectation(gammas3, betas3) >= (
            0.85 * optimized.expectation
        )
