"""Library-wide exception hierarchy.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch one base class at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph structure or graph arguments."""


class GraphFormatError(GraphError):
    """Malformed graph text-file content."""


class CircuitError(ReproError):
    """Invalid quantum circuit construction or simulation request."""


class OptimizationError(ReproError):
    """A classical optimizer failed or was configured inconsistently."""


class DatasetError(ReproError):
    """Dataset generation, storage or filtering failure."""


class ModelError(ReproError):
    """Neural-network construction or shape mismatch."""


class FixedAngleLookupError(ReproError):
    """No fixed-angle entry exists for the requested (degree, depth)."""


class ExecutionError(ReproError):
    """One or more tasks failed inside the parallel execution runtime.

    Carries the list of :class:`repro.runtime.executor.TaskFailure`
    records on ``failures`` so callers can surface the offending task
    labels in domain-specific errors.
    """

    def __init__(self, message: str, failures=None):
        super().__init__(message)
        self.failures = list(failures) if failures is not None else []


class TaskTimeout(ReproError):
    """A single task exceeded its per-task wall-clock budget."""


class DeadlineExceeded(ReproError):
    """Work was cut short because the run's overall deadline expired."""


class InjectedFault(ReproError):
    """A failure raised on purpose by the deterministic fault injector.

    Only the test/validation machinery
    (:class:`repro.runtime.faults.FaultInjector`) raises this; seeing it
    outside a fault-injection run is itself a bug.
    """


class CheckpointError(DatasetError):
    """A labeling checkpoint directory is missing, corrupt, or belongs
    to a different generation configuration."""


class FlywheelError(ReproError):
    """A data-flywheel cycle step failed or was configured inconsistently."""


class ReplayLogError(FlywheelError):
    """The serving replay log is corrupt or misconfigured."""
