"""Command-line interface.

Five subcommands mirror the pipeline stages so the reproduction can be
driven without writing Python:

- ``repro generate`` — sample + label a dataset, save it to JSON
  (``--backend process --workers N`` parallelizes labeling with
  bit-identical output).
- ``repro train`` — train one architecture on a saved dataset, save the
  model state.
- ``repro evaluate`` — warm-start evaluation of a saved model against
  random initialization on a saved dataset's held-out split.
- ``repro reproduce`` — the whole experiment (Table 1) in one shot.
- ``repro bench`` — run the kernel / labeling benchmarks and append an
  entry to the ``BENCH_*.json`` trajectory.

Example::

    python -m repro.cli generate --num-graphs 100 --out dataset.json
    python -m repro.cli generate --num-graphs 1000 --backend process \\
        --workers 8 --out dataset.json
    python -m repro.cli reproduce --num-graphs 100 --test-size 20
    python -m repro.cli bench --out BENCH_1.json --graphs 200
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.tables import format_table1
from repro.data.dataset import QAOADataset
from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.splits import stratified_split
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.experiment import ExperimentConfig, run_experiment
from repro.pipeline.training import Trainer, TrainingConfig
from repro.utils.serialization import load_json, save_json


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser("generate", help="sample + label a dataset")
    parser.add_argument("--num-graphs", type=int, default=150)
    parser.add_argument("--min-nodes", type=int, default=4)
    parser.add_argument("--max-nodes", type=int, default=12)
    parser.add_argument("--p", type=int, default=1)
    parser.add_argument("--iters", type=int, default=100)
    parser.add_argument("--restarts", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="labeling fan-out backend (output is identical across backends)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for parallel backends (default: all cores)",
    )
    parser.add_argument("--out", type=Path, required=True)
    parser.set_defaults(func=_cmd_generate)


def _cmd_generate(args) -> int:
    config = GenerationConfig(
        num_graphs=args.num_graphs,
        min_nodes=args.min_nodes,
        max_nodes=args.max_nodes,
        p=args.p,
        optimizer_iters=args.iters,
        restarts=args.restarts,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
    )
    dataset = generate_dataset(config)
    dataset.save(args.out)
    summary = dataset.summary()
    print(
        f"wrote {summary['count']} records to {args.out} "
        f"(mean AR {summary['mean_ar']:.3f})"
    )
    return 0


def _add_train(subparsers) -> None:
    parser = subparsers.add_parser("train", help="train a predictor")
    parser.add_argument("--dataset", type=Path, required=True)
    parser.add_argument(
        "--arch", choices=("gat", "gcn", "gin", "sage", "mean"), default="gin"
    )
    parser.add_argument("--epochs", type=int, default=100)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--dropout", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, required=True)
    parser.set_defaults(func=_cmd_train)


def _cmd_train(args) -> int:
    dataset = QAOADataset.load(args.dataset)
    model = QAOAParameterPredictor(
        arch=args.arch,
        p=dataset.depth(),
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
        dropout=args.dropout,
        rng=args.seed,
    )
    trainer = Trainer(
        model, TrainingConfig(epochs=args.epochs, seed=args.seed)
    )
    history = trainer.fit(dataset)
    state = {
        "arch": args.arch,
        "p": model.p,
        "hidden_dim": args.hidden_dim,
        "num_layers": args.num_layers,
        "dropout": args.dropout,
        "final_loss": history.final_loss,
        "state": {k: v.tolist() for k, v in model.state_dict().items()},
    }
    save_json(state, args.out)
    print(f"trained {args.arch}: final loss {history.final_loss:.5f} -> {args.out}")
    return 0


def load_model(path) -> QAOAParameterPredictor:
    """Rebuild a predictor saved by ``repro train``."""
    state = load_json(path)
    model = QAOAParameterPredictor(
        arch=state["arch"],
        p=int(state["p"]),
        hidden_dim=int(state["hidden_dim"]),
        num_layers=int(state["num_layers"]),
        dropout=float(state["dropout"]),
        rng=0,
    )
    model.load_state_dict(
        {k: np.asarray(v) for k, v in state["state"].items()}
    )
    model.eval()
    return model


def _add_evaluate(subparsers) -> None:
    parser = subparsers.add_parser(
        "evaluate", help="warm-start evaluation of a saved model"
    )
    parser.add_argument("--dataset", type=Path, required=True)
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--test-size", type=int, default=30)
    parser.add_argument("--eval-iters", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(func=_cmd_evaluate)


def _cmd_evaluate(args) -> int:
    dataset = QAOADataset.load(args.dataset)
    model = load_model(args.model)
    _, test = stratified_split(dataset, args.test_size, args.seed)
    evaluator = WarmStartEvaluator(
        p=model.p, optimizer_iters=args.eval_iters, rng=args.seed
    )
    result = evaluator.evaluate_model(test.graphs(), model)
    print(format_table1({model.arch: result}))
    return 0


def _add_reproduce(subparsers) -> None:
    parser = subparsers.add_parser(
        "reproduce", help="full experiment (Table 1) in one shot"
    )
    parser.add_argument("--num-graphs", type=int, default=150)
    parser.add_argument("--test-size", type=int, default=30)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--label-iters", type=int, default=100)
    parser.add_argument("--eval-iters", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--paper-scale", action="store_true")
    parser.set_defaults(func=_cmd_reproduce)


def _cmd_reproduce(args) -> int:
    if args.paper_scale:
        config = ExperimentConfig.paper_scale()
    else:
        config = ExperimentConfig(
            generation=GenerationConfig(
                num_graphs=args.num_graphs,
                min_nodes=4,
                max_nodes=12,
                optimizer_iters=args.label_iters,
            ),
            training=TrainingConfig(epochs=args.epochs),
            test_size=args.test_size,
            eval_optimizer_iters=args.eval_iters,
            seed=args.seed,
        )
    report = run_experiment(config)
    print(format_table1(report.results))
    return 0


def _add_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="run kernel/labeling benchmarks, append to a BENCH_*.json",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_1.json"))
    parser.add_argument(
        "--graphs", type=int, default=200,
        help="dataset size for the labeling benchmark",
    )
    parser.add_argument(
        "--backends", type=str, default="serial,process",
        help="comma-separated backends for the labeling benchmark",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--kernel-repeats", type=int, default=10)
    parser.add_argument(
        "--skip-labeling", action="store_true",
        help="only run the (fast) kernel benchmarks",
    )
    parser.set_defaults(func=_cmd_bench)


def _cmd_bench(args) -> int:
    from repro.benchmarking import format_entry, run_benchmarks

    entry = run_benchmarks(
        path=args.out,
        labeling_graphs=args.graphs,
        backends=tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        ),
        workers=args.workers,
        kernel_repeats=args.kernel_repeats,
        skip_labeling=args.skip_labeling,
    )
    print(format_entry(entry))
    print(f"appended run {entry['run']} to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNN warm starts for QAOA (DAC 2024 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_train(subparsers)
    _add_evaluate(subparsers)
    _add_reproduce(subparsers)
    _add_bench(subparsers)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
