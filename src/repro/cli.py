"""Command-line interface.

Seven subcommands cover the offline pipeline and the online service:

- ``repro generate`` — sample + label a dataset, save it to JSON
  (``--backend process --workers N`` parallelizes labeling with
  bit-identical output; ``--checkpoint DIR`` makes progress durable and
  ``--resume DIR`` restarts an interrupted run, still bit-identical;
  ``--retries/--backoff-base/--task-timeout/--deadline`` tolerate flaky
  or hung workers).
- ``repro train`` — train one architecture on a saved dataset, save a
  versioned model checkpoint (``--profile`` prints the per-phase
  wall-time report; ``--no-batch-cache`` / ``--fast-kernels`` toggle
  the cached-batch and CSR-kernel paths; ``--backend cstyle|threaded``
  runs fused groups as compiled C kernels, bit-identical to numpy).
- ``repro evaluate`` — warm-start evaluation of a saved model against
  random initialization on a saved dataset's held-out split
  (``--batched`` runs the size-bucketed lock-step engine — identical
  numbers, much faster on many-graph sweeps; ``--profile`` prints the
  per-phase wall-time report).
- ``repro reproduce`` — the whole experiment (Table 1) in one shot.
- ``repro serve`` — HTTP prediction service from a checkpoint
  (isomorphism-aware cache, micro-batching, fallback chain).
- ``repro predict`` — one-shot prediction for a single graph, printed
  as JSON.
- ``repro bench`` — run the kernel / labeling / serving / training /
  evaluation / engine / backend benchmarks; kernel results append to
  ``BENCH_1.json``, training throughput to ``BENCH_2.json``,
  evaluation-sweep throughput to ``BENCH_3.json``, lazy-vs-eager
  engine throughput to ``BENCH_4.json``, the kernel-backend sweep
  (numpy vs compiled) to ``BENCH_6.json``, and the size-generalization
  sweep (train on n<=10, score angles at n in {50,100,200}) to
  ``BENCH_7.json``. No trajectory file is written unless every
  requested section finishes.

Example::

    python -m repro.cli generate --num-graphs 100 --out dataset.json
    python -m repro.cli train --dataset dataset.json --out model.json
    python -m repro.cli serve --model model.json --port 8000
    python -m repro.cli predict --model model.json --edges 0-1,1-2,2-0
    python -m repro.cli reproduce --num-graphs 100 --test-size 20
    python -m repro.cli bench --out BENCH_1.json --graphs 200
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.tables import format_table1
from repro.nn.backends import BACKEND_NAMES, set_backend
from repro.data.dataset import QAOADataset
from repro.data.generation import (
    LABEL_METHODS,
    GenerationConfig,
    generate_dataset,
)
from repro.data.splits import stratified_split
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.features import FEATURE_KINDS
from repro.graphs.graph import Graph
from repro.graphs.io import load_graph
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.experiment import ExperimentConfig, run_experiment
from repro.pipeline.training import Trainer, TrainingConfig
from repro.serving.registry import load_checkpoint, save_checkpoint


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser("generate", help="sample + label a dataset")
    parser.add_argument("--num-graphs", type=int, default=150)
    parser.add_argument("--min-nodes", type=int, default=4)
    parser.add_argument("--max-nodes", type=int, default=12)
    parser.add_argument("--p", type=int, default=1)
    parser.add_argument("--iters", type=int, default=100)
    parser.add_argument("--restarts", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--label-method", choices=LABEL_METHODS, default="statevector",
        help="statevector: exact dense simulation (n <= 20); "
        "analytic-p1: exact p=1 closed form, unweighted graphs up to "
        "512 nodes, no statevector",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="labeling fan-out backend (output is identical across backends)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for parallel backends (default: all cores)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="extra labeling attempts per graph before the run fails",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.0,
        help="seconds before the first retry of a failed graph "
        "(exponential thereafter, deterministic jitter)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None,
        help="wall-clock budget per labeling attempt in seconds",
    )
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="overall labeling deadline in seconds",
    )
    parser.add_argument(
        "--checkpoint", type=Path, default=None,
        help="directory for durable labeling progress (shards + manifest); "
        "an interrupted run restarts from it via --resume",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=32,
        help="graphs per checkpoint shard",
    )
    parser.add_argument(
        "--resume", type=Path, default=None, metavar="DIR",
        help="resume an interrupted labeling run from its checkpoint "
        "directory (generation settings are restored from the manifest; "
        "output is bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--inject-failure-rate", type=float, default=0.0,
        help="TESTING: deterministically fail this fraction of labeling "
        "tasks once each (prove the retry path; pair with --retries)",
    )
    parser.add_argument("--out", type=Path, required=True)
    parser.set_defaults(func=_cmd_generate)


def _cmd_generate(args) -> int:
    from dataclasses import replace

    from repro.data.checkpoint import LabelingCheckpoint
    from repro.data.generation import config_from_manifest
    from repro.runtime import FaultInjector

    if args.resume is not None and args.checkpoint is not None:
        raise SystemExit("pass --checkpoint for a fresh run OR --resume, not both")
    if args.resume is not None:
        # The manifest is the source of truth for everything that shapes
        # the output; only execution knobs come from the command line.
        checkpoint = LabelingCheckpoint(args.resume)
        config = replace(
            config_from_manifest(checkpoint.load_manifest()),
            backend=args.backend,
            workers=args.workers,
            retries=args.retries,
            backoff_base_s=args.backoff_base,
            task_timeout_s=args.task_timeout,
            deadline_s=args.deadline,
        )
        resume = True
    else:
        checkpoint = (
            LabelingCheckpoint(args.checkpoint)
            if args.checkpoint is not None
            else None
        )
        config = GenerationConfig(
            num_graphs=args.num_graphs,
            min_nodes=args.min_nodes,
            max_nodes=args.max_nodes,
            p=args.p,
            optimizer_iters=args.iters,
            restarts=args.restarts,
            seed=args.seed,
            label_method=args.label_method,
            backend=args.backend,
            workers=args.workers,
            retries=args.retries,
            backoff_base_s=args.backoff_base,
            task_timeout_s=args.task_timeout,
            deadline_s=args.deadline,
            checkpoint_every=args.checkpoint_every,
        )
        resume = False
    injector = (
        FaultInjector(failure_rate=args.inject_failure_rate)
        if args.inject_failure_rate > 0.0
        else None
    )
    dataset = generate_dataset(
        config, checkpoint=checkpoint, resume=resume, fault_injector=injector
    )
    dataset.save(args.out)
    summary = dataset.summary()
    print(
        f"wrote {summary['count']} records to {args.out} "
        f"(mean AR {summary['mean_ar']:.3f})"
    )
    return 0


def _add_train(subparsers) -> None:
    parser = subparsers.add_parser("train", help="train a predictor")
    parser.add_argument("--dataset", type=Path, required=True)
    parser.add_argument(
        "--arch", choices=("gat", "gcn", "gin", "sage", "mean"), default="gin"
    )
    parser.add_argument("--epochs", type=int, default=100)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--dropout", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--feature-kind", choices=FEATURE_KINDS, default="degree_onehot",
        help="node featurization; size-agnostic kinds (structural, "
        "wl_histogram, degree_positional) lift the max-nodes cap so the "
        "model serves graphs of any size",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase wall-time report after training",
    )
    parser.add_argument(
        "--no-batch-cache", action="store_true",
        help="rebuild every mini-batch from raw graphs (the seed loop)",
    )
    parser.add_argument(
        "--fast-kernels", action="store_true",
        help="CSR reduceat segment kernels (last-ulp numerics, faster)",
    )
    parser.add_argument(
        "--engine", choices=("lazy", "eager"), default="lazy",
        help="tensor engine: lazy fused kernels (default, bit-identical)"
        " or the op-at-a-time eager oracle",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default="numpy",
        help="lazy-engine kernel backend: numpy (reference), cstyle "
        "(fused groups compiled to C, bit-identical), or threaded "
        "(compiled + outer-loop tiling); compiled backends silently "
        "fall back to numpy when no C toolchain is available",
    )
    parser.add_argument("--out", type=Path, required=True)
    parser.set_defaults(func=_cmd_train)


def _cmd_train(args) -> int:
    # Silent toolchain fallback: the effective name may be "numpy" even
    # when a compiled backend was requested (ctoolchain logs the why).
    set_backend(args.backend)
    dataset = QAOADataset.load(args.dataset)
    model = QAOAParameterPredictor(
        arch=args.arch,
        p=dataset.depth(),
        hidden_dim=args.hidden_dim,
        num_layers=args.num_layers,
        dropout=args.dropout,
        feature_kind=args.feature_kind,
        rng=args.seed,
    )
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=args.epochs,
            seed=args.seed,
            compile_batches=not args.no_batch_cache,
            csr_kernels=args.fast_kernels,
            profile=args.profile,
            engine=args.engine,
        ),
    )
    history = trainer.fit(dataset)
    save_checkpoint(model, args.out, final_loss=history.final_loss)
    print(f"trained {args.arch}: final loss {history.final_loss:.5f} -> {args.out}")
    if args.profile:
        print(trainer.profiler.format_report())
    return 0


def load_model(path) -> QAOAParameterPredictor:
    """Rebuild a predictor saved by ``repro train``.

    Thin alias of :func:`repro.serving.registry.load_checkpoint`, which
    validates the checkpoint schema (``format_version`` included) and
    raises :class:`~repro.exceptions.ModelError` on anything corrupt.
    """
    return load_checkpoint(path)


def _add_evaluate(subparsers) -> None:
    parser = subparsers.add_parser(
        "evaluate", help="warm-start evaluation of a saved model"
    )
    parser.add_argument(
        "--dataset", type=Path, default=None,
        help="saved dataset for the warm-start evaluation (optional "
        "when --transfer-nodes alone is requested)",
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument(
        "--transfer-nodes", type=str, default=None, metavar="N,N,...",
        help='size-generalization arm: score the model\'s angles on '
        'regular graphs of these sizes (e.g. "50,100,200") against the '
        "fixed-angle baseline and the p=1 closed-form optimum — no "
        "statevector, so sizes far above training are cheap",
    )
    parser.add_argument(
        "--transfer-degree", type=int, default=3,
        help="regular-graph degree for the transfer arm",
    )
    parser.add_argument(
        "--transfer-count", type=int, default=4,
        help="graphs per size for the transfer arm",
    )
    parser.add_argument("--test-size", type=int, default=30)
    parser.add_argument("--eval-iters", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batched", action="store_true",
        help="size-bucketed lock-step engine (identical numbers, faster)",
    )
    parser.add_argument(
        "--max-bucket", type=int, default=64,
        help="batched engine: max instance rows per statevector stack",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase wall-time report after evaluating",
    )
    parser.set_defaults(func=_cmd_evaluate)


def _cmd_evaluate(args) -> int:
    from repro.profiling import NULL_PROFILER, EvaluationProfiler

    model = load_model(args.model)
    if args.transfer_nodes is not None:
        from repro.pipeline.transfer import evaluate_size_transfer

        sizes = tuple(
            int(token)
            for token in args.transfer_nodes.split(",")
            if token.strip()
        )
        report = evaluate_size_transfer(
            model,
            node_sizes=sizes,
            degree=args.transfer_degree,
            graphs_per_size=args.transfer_count,
            rng=args.seed,
        )
        print(json.dumps(report, indent=2))
        if args.dataset is None:
            return 0
    if args.dataset is None:
        raise SystemExit("evaluate needs --dataset and/or --transfer-nodes")
    dataset = QAOADataset.load(args.dataset)
    _, test = stratified_split(dataset, args.test_size, args.seed)
    profiler = EvaluationProfiler() if args.profile else NULL_PROFILER
    evaluator = WarmStartEvaluator(
        p=model.p,
        optimizer_iters=args.eval_iters,
        rng=args.seed,
        batched=args.batched,
        max_bucket=args.max_bucket,
        profiler=profiler,
    )
    result = evaluator.evaluate_model(test.graphs(), model)
    print(format_table1({model.arch: result}))
    if args.profile:
        print(profiler.format_report())
    return 0


def _add_reproduce(subparsers) -> None:
    parser = subparsers.add_parser(
        "reproduce", help="full experiment (Table 1) in one shot"
    )
    parser.add_argument("--num-graphs", type=int, default=150)
    parser.add_argument("--test-size", type=int, default=30)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--label-iters", type=int, default=100)
    parser.add_argument("--eval-iters", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--paper-scale", action="store_true")
    parser.set_defaults(func=_cmd_reproduce)


def _cmd_reproduce(args) -> int:
    if args.paper_scale:
        config = ExperimentConfig.paper_scale()
    else:
        config = ExperimentConfig(
            generation=GenerationConfig(
                num_graphs=args.num_graphs,
                min_nodes=4,
                max_nodes=12,
                optimizer_iters=args.label_iters,
            ),
            training=TrainingConfig(epochs=args.epochs),
            test_size=args.test_size,
            eval_optimizer_iters=args.eval_iters,
            seed=args.seed,
        )
    report = run_experiment(config)
    print(format_table1(report.results))
    return 0


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="HTTP prediction service from a checkpoint"
    )
    parser.add_argument(
        "--model", type=Path, default=None,
        help="checkpoint from `repro train` (omit to serve fallbacks only)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument(
        "--cache-ttl", type=float, default=None,
        help="seconds before a cached prediction expires (default: never)",
    )
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 switches to the scale stack (async "
        "front-end + forked workers over shared weights + sharded cache)",
    )
    parser.add_argument(
        "--inference-threads", type=int, default=4,
        help="scale stack: threads per worker feeding its micro-batcher",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="scale stack: admitted requests in flight before new ones "
        "degrade to the front-end fallback chain",
    )
    parser.add_argument(
        "--shed-deadline-ms", type=float, default=1000.0,
        help="scale stack: admitted requests unanswered past this are "
        "dropped with 503 + Retry-After",
    )
    parser.add_argument(
        "--shed-factor", type=float, default=2.0,
        help="scale stack: shed (503) once inflight exceeds "
        "max-inflight * this factor",
    )
    parser.add_argument(
        "--l1-cache-size", type=int, default=2048,
        help="scale stack: front-end hot-set cache entries (0 disables)",
    )
    parser.add_argument(
        "--cache-snapshot", type=Path, default=None,
        help="scale stack: warm every worker's cache from this snapshot "
        "at startup and write it back on shutdown",
    )
    parser.add_argument(
        "--max-request-nodes", type=int, default=None,
        help="reject /predict graphs above this node count with a 400 "
        "(default: 1024); applies to both serving stacks",
    )
    parser.add_argument(
        "--max-request-edges", type=int, default=None,
        help="reject /predict graphs above this edge count with a 400 "
        "(default: 32768); applies to both serving stacks",
    )
    parser.add_argument(
        "--no-batching", action="store_true",
        help="answer each request with its own forward pass",
    )
    parser.add_argument(
        "--p", type=int, default=1,
        help="fallback circuit depth when serving without a model",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="model-path deadline per request in seconds (past it the "
        "request is answered by the fallback chain)",
    )
    parser.add_argument(
        "--model-retries", type=int, default=0,
        help="in-request retries of the model path before falling back",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive model failures that trip the circuit breaker",
    )
    parser.add_argument(
        "--breaker-reset", type=float, default=30.0,
        help="seconds a tripped breaker waits before probing the model",
    )
    parser.add_argument(
        "--replay-log", type=Path, default=None,
        help="flywheel replay-log directory; every answered request is "
        "appended for later selection/relabeling (repro flywheel)",
    )
    parser.add_argument(
        "--replay-sample-rate", type=float, default=1.0,
        help="fraction of requests logged (deterministic per request)",
    )
    parser.add_argument(
        "--replay-max-bytes", type=int, default=4 << 20,
        help="replay log size past which the active file rotates",
    )
    parser.add_argument(
        "--watch-store", type=Path, default=None,
        help="flywheel version store to poll; promoted models are "
        "hot-swapped into the running service without a restart",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=2.0,
        help="seconds between version-pointer polls",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default="numpy",
        help="lazy-engine kernel backend for forward passes (set before "
        "workers fork, so the scale stack inherits it); compiled "
        "backends silently fall back to numpy without a C toolchain",
    )
    parser.set_defaults(func=_cmd_serve)


def _cmd_serve(args) -> int:
    set_backend(args.backend)
    from repro.serving import (
        PredictionService,
        ServingConfig,
        ServingHTTPServer,
    )
    from repro.serving.http import (
        DEFAULT_MAX_REQUEST_EDGES,
        DEFAULT_MAX_REQUEST_NODES,
    )

    if args.max_request_nodes is None:
        args.max_request_nodes = DEFAULT_MAX_REQUEST_NODES
    if args.max_request_edges is None:
        args.max_request_edges = DEFAULT_MAX_REQUEST_EDGES
    scale = args.workers > 1
    config = ServingConfig(
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        workers=1 if scale else args.workers,
        batching=not args.no_batching,
        default_p=args.p,
        request_timeout_s=args.request_timeout,
        model_retries=args.model_retries,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
    )
    replay_log = None
    if args.replay_log is not None:
        from repro.flywheel import ReplayLog

        replay_log = ReplayLog(
            args.replay_log,
            max_bytes=args.replay_max_bytes,
            sample_rate=args.replay_sample_rate,
        )
    model = load_model(args.model) if args.model is not None else None
    if scale:
        return _serve_scale(args, config, model, replay_log)
    service = PredictionService(
        model=model, config=config, replay_log=replay_log
    )
    watcher = None
    if args.watch_store is not None:
        from repro.flywheel import ModelWatcher

        watcher = ModelWatcher(
            service,
            str(args.watch_store),
            poll_interval_s=args.watch_interval,
        )
        watcher.check_once()  # serve the promoted version from request one
        watcher.start()
    server = ServingHTTPServer(
        service,
        host=args.host,
        port=args.port,
        max_request_nodes=args.max_request_nodes,
        max_request_edges=args.max_request_edges,
    )
    print(f"serving on http://{server.address[0]}:{server.port}")
    try:
        server.serve_forever()
    finally:
        if watcher is not None:
            watcher.stop()
    return 0


def _serve_scale(args, config, model, replay_log) -> int:
    """`repro serve --workers N` (N > 1): the multi-process stack.

    Workers are forked (inside :class:`WorkerPool`) before the watcher
    thread or the front-end event loop starts — fork safety demands no
    threads exist in the parent at fork time.
    """
    from repro.serving.scale import (
        ScaleConfig,
        ScaleServingServer,
        WorkerPool,
    )

    scale_config = ScaleConfig(
        workers=args.workers,
        max_inflight=args.max_inflight,
        shed_factor=args.shed_factor,
        shed_deadline_ms=args.shed_deadline_ms,
        inference_threads=args.inference_threads,
        l1_cache_size=args.l1_cache_size,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
    )
    pool = WorkerPool(
        model=model, serving_config=config, scale_config=scale_config
    )
    server = ScaleServingServer(
        pool,
        model=model,
        host=args.host,
        port=args.port,
        scale_config=scale_config,
        replay_log=replay_log,
        cache_snapshot_path=args.cache_snapshot,
        max_request_nodes=args.max_request_nodes,
        max_request_edges=args.max_request_edges,
    )
    if args.cache_snapshot is not None and args.cache_snapshot.exists():
        loaded = server.load_cache_snapshot(args.cache_snapshot)
        print(f"warmed {loaded} cache entries from {args.cache_snapshot}")
    watcher = None
    if args.watch_store is not None:
        from repro.flywheel import ModelWatcher

        watcher = ModelWatcher(
            server,
            str(args.watch_store),
            poll_interval_s=args.watch_interval,
        )
        watcher.check_once()
        watcher.start()
    server.start_background()
    print(
        f"serving on http://{server.address[0]}:{server.port} "
        f"({args.workers} workers, max-inflight {args.max_inflight}, "
        f"shed deadline {args.shed_deadline_ms:.0f}ms)"
    )

    # A supervisor's SIGTERM must be a graceful shutdown — drain the
    # pool and write the cache snapshot — not a hard kill that skips
    # the finally block.
    import signal as _signal

    def _on_sigterm(signum, frame):  # noqa: ARG001 - signal signature
        raise KeyboardInterrupt

    _signal.signal(_signal.SIGTERM, _on_sigterm)
    try:
        while True:
            server._thread.join(timeout=1.0)
            if server._thread is None or not server._thread.is_alive():
                break
    except KeyboardInterrupt:
        pass
    finally:
        if watcher is not None:
            watcher.stop()
        server.close()
    return 0


def _parse_edge_spec(spec: str, num_nodes) -> Graph:
    """``"0-1,1-2,2-0"`` -> a Graph (node count inferred if omitted)."""
    edges = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        u, _, v = token.partition("-")
        edges.append((int(u), int(v)))
    if not edges:
        raise SystemExit(f"no edges in {spec!r}")
    if num_nodes is None:
        num_nodes = max(max(u, v) for u, v in edges) + 1
    return Graph.from_edges(int(num_nodes), edges)


def _add_predict(subparsers) -> None:
    parser = subparsers.add_parser(
        "predict", help="one-shot warm-start prediction for a graph"
    )
    parser.add_argument(
        "--model", type=Path, default=None,
        help="checkpoint from `repro train` (omit for fallbacks only)",
    )
    parser.add_argument(
        "--graph", type=Path, default=None,
        help="text-format graph file (see repro.graphs.io)",
    )
    parser.add_argument(
        "--edges", type=str, default=None,
        help='inline edge list like "0-1,1-2,2-0"',
    )
    parser.add_argument(
        "--num-nodes", type=int, default=None,
        help="node count for --edges (default: max endpoint + 1)",
    )
    parser.add_argument(
        "--p", type=int, default=1,
        help="fallback circuit depth when predicting without a model",
    )
    parser.set_defaults(func=_cmd_predict)


def _cmd_predict(args) -> int:
    from repro.serving import PredictionService, ServingConfig

    if (args.graph is None) == (args.edges is None):
        raise SystemExit("predict needs exactly one of --graph / --edges")
    graph = (
        load_graph(args.graph)
        if args.graph is not None
        else _parse_edge_spec(args.edges, args.num_nodes)
    )
    model = load_model(args.model) if args.model is not None else None
    config = ServingConfig(batching=False, default_p=args.p)
    with PredictionService(model=model, config=config) as service:
        result = service.predict(graph)
    print(json.dumps(result.to_dict(), indent=2))
    return 0


def _add_flywheel(subparsers) -> None:
    parser = subparsers.add_parser(
        "flywheel",
        help="run closed-loop cycles: replay log -> select -> relabel -> "
        "retrain -> gated promotion -> hot-swap",
    )
    parser.add_argument(
        "--workdir", type=Path, required=True,
        help="flywheel state root (replay/, store/, dataset.json)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--once", action="store_true",
        help="run exactly one cycle (the default)",
    )
    group.add_argument(
        "--cycles", type=int, default=None,
        help="run N sequential cycles",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--replay-log", type=Path, default=None,
        help="replay-log directory (default: WORKDIR/replay)",
    )
    parser.add_argument(
        "--dataset", type=Path, default=None,
        help="training dataset path, grown in place "
        "(default: WORKDIR/dataset.json)",
    )
    parser.add_argument(
        "--store", type=Path, default=None,
        help="version store directory (default: WORKDIR/store)",
    )
    parser.add_argument(
        "--traffic", type=int, default=0,
        help="before cycling, drive N deterministic scripted requests "
        "through an in-process service (serving the store's current "
        "version) into the replay log, then observe the hot-swap live",
    )
    parser.add_argument("--traffic-min-nodes", type=int, default=4)
    parser.add_argument("--traffic-max-nodes", type=int, default=8)
    parser.add_argument(
        "--p", type=int, default=1,
        help="fallback depth for the scripted-traffic service",
    )
    parser.add_argument(
        "--max-candidates", type=int, default=16,
        help="replay classes relabeled per cycle",
    )
    parser.add_argument(
        "--min-requests", type=int, default=1,
        help="ignore replay classes seen fewer times than this",
    )
    parser.add_argument(
        "--label-iters", type=int, default=120,
        help="optimizer iterations per relabeled instance",
    )
    parser.add_argument(
        "--label-method", choices=LABEL_METHODS, default="statevector",
        help="analytic-p1 admits unweighted depth-1 replay classes up "
        "to 512 nodes (labeled on the exact closed form); statevector "
        "keeps the dense n <= 15 bound",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="candidates per durable labeling-checkpoint shard",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="serial", help="relabeling fan-out backend",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--retries", type=int, default=0,
        help="extra relabeling attempts per bucket before the cycle fails",
    )
    parser.add_argument(
        "--inject-failure-rate", type=float, default=0.0,
        help="TESTING: deterministically fail this fraction of relabeling "
        "buckets once each (prove checkpoint+retry; pair with --retries)",
    )
    parser.add_argument(
        "--arch", choices=("gat", "gcn", "gin", "sage", "mean"),
        default="gin",
    )
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument(
        "--sdp-threshold", type=float, default=0.7,
        help="SDP approximation-ratio threshold for new labels",
    )
    parser.add_argument(
        "--selective-rate", type=float, default=0.0,
        help="fraction of below-threshold labels retained by SDP",
    )
    parser.add_argument(
        "--eval-size", type=int, default=6,
        help="held-out records for the promotion gate",
    )
    parser.add_argument(
        "--eval-iters", type=int, default=40,
        help="optimizer iterations per gate-evaluation arm",
    )
    parser.add_argument(
        "--margin", type=float, default=0.0,
        help="mean-AR regression the gate tolerates before rejecting",
    )
    parser.set_defaults(func=_cmd_flywheel)


def _scripted_traffic(
    service, requests: int, seed: int, min_nodes: int, max_nodes: int
) -> int:
    """Deterministic request stream: sampled graphs, revisited in order.

    Half the requests are unique graphs, the rest revisit them
    round-robin, giving the selector a frequency signal. Pure function
    of ``seed``, so two runs produce identical replay logs.
    """
    import numpy as np

    from repro.data.generation import sample_graphs

    unique = max(1, requests // 2)
    graphs = sample_graphs(
        GenerationConfig(
            num_graphs=unique,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            seed=seed,
        ),
        np.random.default_rng(seed),
    )
    for index in range(requests):
        service.predict(graphs[index % len(graphs)])
    return requests


def _cmd_flywheel(args) -> int:
    from repro.flywheel import (
        FlywheelConfig,
        ModelWatcher,
        PromotionConfig,
        RelabelConfig,
        ReplayLog,
        RetrainConfig,
        SelectionConfig,
        VersionStore,
        run_cycles,
    )
    from repro.runtime import FaultInjector
    from repro.serving import PredictionService, ServingConfig

    cycles = args.cycles if args.cycles is not None else 1
    if cycles < 1:
        raise SystemExit("--cycles must be >= 1")
    workdir = args.workdir
    replay_dir = args.replay_log or workdir / "replay"
    dataset_path = args.dataset or workdir / "dataset.json"
    store = VersionStore(args.store or workdir / "store")

    config = FlywheelConfig.seeded(
        args.seed,
        eval_size=args.eval_size,
        selection=SelectionConfig(
            max_candidates=args.max_candidates,
            min_requests=args.min_requests,
            label_method=args.label_method,
        ),
        relabel=RelabelConfig(
            optimizer_iters=args.label_iters,
            label_method=args.label_method,
            checkpoint_every=args.checkpoint_every,
            backend=args.backend,
            workers=args.workers,
            retries=args.retries,
        ),
        retrain=RetrainConfig(
            arch=args.arch,
            hidden_dim=args.hidden_dim,
            epochs=args.epochs,
            batch_size=args.batch_size,
            sdp_threshold=args.sdp_threshold,
            selective_rate=args.selective_rate,
        ),
        promotion=PromotionConfig(
            eval_iters=args.eval_iters, margin=args.margin
        ),
    )
    injector = (
        FaultInjector(failure_rate=args.inject_failure_rate)
        if args.inject_failure_rate > 0.0
        else None
    )

    replay = ReplayLog(replay_dir, seed=args.seed)
    service = None
    watcher = None
    if args.traffic > 0:
        # A live in-process service: it writes the replay log the cycle
        # consumes, and stays up to observe the hot-swap afterwards.
        incumbent = (
            store.load_current()[0] if store.current() is not None else None
        )
        service = PredictionService(
            model=incumbent,
            config=ServingConfig(batching=False, default_p=args.p),
            replay_log=replay,
        )
        watcher = ModelWatcher(service, store)
        served = _scripted_traffic(
            service,
            args.traffic,
            args.seed,
            args.traffic_min_nodes,
            args.traffic_max_nodes,
        )
        print(f"drove {served} scripted requests into {replay_dir}")

    reports = run_cycles(
        cycles, replay, dataset_path, store, config, fault_injector=injector
    )

    summary = {
        "cycles": reports,
        "store": store.describe(),
    }
    if service is not None:
        swap = watcher.check_once()
        summary["hot_swap"] = swap
        if swap is not None:
            # One request through the live service proves the promoted
            # model answers without a restart.
            result = service.predict(_probe_graph(args.seed))
            summary["post_swap_source"] = result.source
        summary["serving_metrics"] = service.metrics_snapshot()["flywheel"]
        service.close()
    print(json.dumps(summary, indent=2))
    promoted = [r["version"] for r in reports if r.get("promoted")]
    if promoted:
        print(
            f"promoted version(s): "
            f"{', '.join(f'v{v:04d}' for v in promoted)}"
        )
    else:
        print("no promotion this run")
    return 0


def _probe_graph(seed: int) -> Graph:
    """One deterministic graph for the post-swap probe request."""
    import numpy as np

    from repro.data.generation import sample_graphs

    return sample_graphs(
        GenerationConfig(num_graphs=1, min_nodes=6, max_nodes=6, seed=seed),
        np.random.default_rng(seed),
    )[0]


def _add_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="run kernel/labeling benchmarks, append to a BENCH_*.json",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_1.json"))
    parser.add_argument(
        "--graphs", type=int, default=200,
        help="dataset size for the labeling benchmark",
    )
    parser.add_argument(
        "--backends", type=str, default="serial,process",
        help="comma-separated backends for the labeling benchmark",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--kernel-repeats", type=int, default=10)
    parser.add_argument(
        "--skip-labeling", action="store_true",
        help="skip the (slow) labeling benchmark",
    )
    parser.add_argument(
        "--skip-serving", action="store_true",
        help="skip the serving-throughput benchmark",
    )
    parser.add_argument(
        "--serving-graphs", type=int, default=32,
        help="request count per phase of the serving benchmark",
    )
    parser.add_argument(
        "--skip-training", action="store_true",
        help="skip the training-throughput benchmark",
    )
    parser.add_argument(
        "--training-out", type=Path, default=Path("BENCH_2.json"),
        help="trajectory file for the training benchmark",
    )
    parser.add_argument(
        "--training-graphs", type=int, default=128,
        help="dataset size for the training benchmark",
    )
    parser.add_argument(
        "--training-epochs", type=int, default=8,
        help="epochs per arm of the training benchmark",
    )
    parser.add_argument(
        "--skip-evaluation", action="store_true",
        help="skip the evaluation-sweep benchmark",
    )
    parser.add_argument(
        "--evaluation-out", type=Path, default=Path("BENCH_3.json"),
        help="trajectory file for the evaluation benchmark",
    )
    parser.add_argument(
        "--evaluation-graphs", type=int, default=100,
        help="test-set size for the evaluation benchmark",
    )
    parser.add_argument(
        "--evaluation-iters", type=int, default=60,
        help="optimizer iterations per arm of the evaluation benchmark",
    )
    parser.add_argument(
        "--skip-fusion", action="store_true",
        help="skip the lazy-vs-eager engine benchmark",
    )
    parser.add_argument(
        "--fusion-out", type=Path, default=Path("BENCH_4.json"),
        help="trajectory file for the engine benchmark",
    )
    parser.add_argument(
        "--fusion-graphs", type=int, default=128,
        help="dataset size for the engine benchmark",
    )
    parser.add_argument(
        "--fusion-epochs", type=int, default=8,
        help="epochs per arm of the engine benchmark",
    )
    parser.add_argument(
        "--fusion-reps", type=int, default=3,
        help="interleaved timing reps per arm of the engine benchmark",
    )
    parser.add_argument(
        "--skip-scale-serving", action="store_true",
        help="skip the multi-process scale-serving benchmark",
    )
    parser.add_argument(
        "--scale-out", type=Path, default=Path("BENCH_5.json"),
        help="trajectory file for the scale-serving benchmark",
    )
    parser.add_argument(
        "--scale-workers", type=int, default=2,
        help="worker processes for the scale-serving benchmark",
    )
    parser.add_argument(
        "--scale-duration", type=float, default=2.0,
        help="seconds per load-generator arm of the scale benchmark",
    )
    parser.add_argument(
        "--skip-backends", action="store_true",
        help="skip the kernel-backend sweep (numpy vs cstyle vs threaded)",
    )
    parser.add_argument(
        "--backends-out", type=Path, default=Path("BENCH_6.json"),
        help="trajectory file for the kernel-backend sweep",
    )
    parser.add_argument(
        "--backends-graphs", type=int, default=128,
        help="dataset size for the kernel-backend sweep",
    )
    parser.add_argument(
        "--backends-epochs", type=int, default=8,
        help="epochs per arm of the kernel-backend sweep",
    )
    parser.add_argument(
        "--backends-batch-size", type=int, default=32,
        help="mini-batch size for the BENCH_4-comparable sweep workload",
    )
    parser.add_argument(
        "--backends-full-batch-size", type=int, default=None,
        help="batch size for the kernel-bound full-batch sweep workload "
        "(default: one batch per epoch)",
    )
    parser.add_argument(
        "--backends-reps", type=int, default=3,
        help="interleaved timing reps per arm of the kernel-backend sweep",
    )
    parser.add_argument(
        "--skip-transfer", action="store_true",
        help="skip the size-generalization benchmark",
    )
    parser.add_argument(
        "--transfer-out", type=Path, default=Path("BENCH_7.json"),
        help="trajectory file for the size-generalization benchmark",
    )
    parser.add_argument(
        "--transfer-nodes", type=str, default="50,100,200",
        help="comma-separated sizes for the size-generalization sweep",
    )
    parser.add_argument(
        "--transfer-degree", type=int, default=3,
        help="regular-graph degree for the size-generalization sweep",
    )
    parser.add_argument(
        "--transfer-graphs-per-size", type=int, default=3,
        help="graphs per size for the size-generalization sweep",
    )
    parser.add_argument(
        "--transfer-train-graphs", type=int, default=96,
        help="small-graph training-set size for the transfer benchmark",
    )
    parser.add_argument(
        "--transfer-epochs", type=int, default=40,
        help="training epochs for the transfer benchmark",
    )
    parser.add_argument(
        "--transfer-feature-kind", default="structural",
        choices=("structural", "wl_histogram", "degree_positional"),
        help="size-agnostic feature kind for the transfer benchmark",
    )
    parser.set_defaults(func=_cmd_bench)


def _cmd_bench(args) -> int:
    from repro.benchmarking import format_entry, run_benchmarks

    entry = run_benchmarks(
        path=args.out,
        labeling_graphs=args.graphs,
        backends=tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        ),
        workers=args.workers,
        kernel_repeats=args.kernel_repeats,
        skip_labeling=args.skip_labeling,
        skip_serving=args.skip_serving,
        serving_graphs=args.serving_graphs,
        skip_training=args.skip_training,
        training_path=args.training_out,
        training_graphs=args.training_graphs,
        training_epochs=args.training_epochs,
        skip_evaluation=args.skip_evaluation,
        evaluation_path=args.evaluation_out,
        evaluation_graphs=args.evaluation_graphs,
        evaluation_iters=args.evaluation_iters,
        skip_fusion=args.skip_fusion,
        fusion_path=args.fusion_out,
        fusion_graphs=args.fusion_graphs,
        fusion_epochs=args.fusion_epochs,
        fusion_reps=args.fusion_reps,
        skip_scale_serving=args.skip_scale_serving,
        scale_path=args.scale_out,
        scale_workers=args.scale_workers,
        scale_duration_s=args.scale_duration,
        skip_backends=args.skip_backends,
        backends_path=args.backends_out,
        backends_graphs=args.backends_graphs,
        backends_epochs=args.backends_epochs,
        backends_batch_size=args.backends_batch_size,
        backends_full_batch_size=args.backends_full_batch_size,
        backends_reps=args.backends_reps,
        skip_transfer=args.skip_transfer,
        transfer_path=args.transfer_out,
        transfer_nodes=tuple(
            int(token)
            for token in args.transfer_nodes.split(",")
            if token.strip()
        ),
        transfer_degree=args.transfer_degree,
        transfer_graphs_per_size=args.transfer_graphs_per_size,
        transfer_train_graphs=args.transfer_train_graphs,
        transfer_epochs=args.transfer_epochs,
        transfer_feature_kind=args.transfer_feature_kind,
    )
    print(format_entry(entry))
    print(f"appended run {entry['run']} to {args.out}")
    if not args.skip_training:
        print(f"appended training benchmark to {args.training_out}")
    if not args.skip_evaluation:
        print(f"appended evaluation benchmark to {args.evaluation_out}")
    if not args.skip_fusion:
        print(f"appended engine benchmark to {args.fusion_out}")
    if not args.skip_scale_serving:
        print(f"appended scale-serving benchmark to {args.scale_out}")
    if not args.skip_backends:
        print(f"appended kernel-backend sweep to {args.backends_out}")
    if not args.skip_transfer:
        print(f"appended size-generalization benchmark to {args.transfer_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNN warm starts for QAOA (DAC 2024 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_train(subparsers)
    _add_evaluate(subparsers)
    _add_reproduce(subparsers)
    _add_serve(subparsers)
    _add_predict(subparsers)
    _add_flywheel(subparsers)
    _add_bench(subparsers)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
