"""Dataset distribution statistics (Figures 2, 3 and 4).

- :func:`degree_frequency` / :func:`size_frequency` — the histograms of
  Figure 2 (a) and (b).
- :func:`ar_by_size` / :func:`ar_by_degree` — the "possible
  approximation ratio" interval summaries of Figures 3 and 4: for each
  graph-size (resp. degree) bucket, the spread of achieved approximation
  ratios (min / quartiles / max / mean), which is how the paper
  visualizes label quality.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.data.dataset import QAOADataset
from repro.graphs.graph import Graph


def degree_frequency(graphs: Sequence[Graph]) -> Dict[int, int]:
    """Histogram of per-node degrees across all graphs (Figure 2a)."""
    counter: Counter = Counter()
    for graph in graphs:
        counter.update(int(d) for d in graph.degrees())
    return dict(sorted(counter.items()))


def size_frequency(graphs: Sequence[Graph]) -> Dict[int, int]:
    """Histogram of graph sizes (Figure 2b)."""
    counter = Counter(graph.num_nodes for graph in graphs)
    return dict(sorted(counter.items()))


@dataclass(frozen=True)
class IntervalSummary:
    """Spread of approximation ratios within one bucket."""

    key: int
    count: int
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float
    mean: float

    @classmethod
    def from_values(cls, key: int, values: np.ndarray) -> "IntervalSummary":
        """Build the five-number-plus-mean summary of ``values``."""
        values = np.asarray(values, dtype=np.float64)
        return cls(
            key=key,
            count=len(values),
            minimum=float(values.min()),
            q25=float(np.percentile(values, 25)),
            median=float(np.median(values)),
            q75=float(np.percentile(values, 75)),
            maximum=float(values.max()),
            mean=float(values.mean()),
        )


def ar_by_size(dataset: QAOADataset) -> List[IntervalSummary]:
    """Approximation-ratio interval per graph size (Figure 3)."""
    buckets: Dict[int, List[float]] = {}
    for record in dataset:
        buckets.setdefault(record.graph.num_nodes, []).append(
            record.approximation_ratio
        )
    return [
        IntervalSummary.from_values(size, np.asarray(values))
        for size, values in sorted(buckets.items())
    ]


def ar_by_degree(dataset: QAOADataset) -> List[IntervalSummary]:
    """Approximation-ratio interval per (regular) degree (Figure 4).

    Irregular graphs are bucketed by their maximum degree, matching how
    the paper's regular-graph dataset is indexed.
    """
    buckets: Dict[int, List[float]] = {}
    for record in dataset:
        degree = record.graph.regular_degree()
        if degree is None:
            degree = record.graph.max_degree()
        buckets.setdefault(degree, []).append(record.approximation_ratio)
    return [
        IntervalSummary.from_values(degree, np.asarray(values))
        for degree, values in sorted(buckets.items())
    ]


def low_quality_fraction(dataset: QAOADataset, threshold: float = 0.7) -> float:
    """Fraction of records below the AR threshold (the paper's ~50% story)."""
    ratios = dataset.approximation_ratios()
    if len(ratios) == 0:
        return 0.0
    return float((ratios < threshold).mean())
