"""Train/test splitting.

The paper "set[s] aside 100 test graphs with different degrees and graph
sizes". :func:`stratified_split` balances the held-out set across
(size, degree) strata so the test set spans the design space the way
the paper describes; :func:`random_split` is the plain alternative.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, ensure_rng


def random_split(
    dataset: QAOADataset, test_size: int, rng: RngLike = None
) -> Tuple[QAOADataset, QAOADataset]:
    """Uniform random split into (train, test) with ``test_size`` held out."""
    if not 0 < test_size < len(dataset):
        raise DatasetError(
            f"test_size {test_size} invalid for dataset of {len(dataset)}"
        )
    generator = ensure_rng(rng)
    order = generator.permutation(len(dataset))
    test_idx = set(int(i) for i in order[:test_size])
    train = [r for i, r in enumerate(dataset) if i not in test_idx]
    test = [r for i, r in enumerate(dataset) if i in test_idx]
    return QAOADataset(train), QAOADataset(test)


def stratified_split(
    dataset: QAOADataset, test_size: int, rng: RngLike = None
) -> Tuple[QAOADataset, QAOADataset]:
    """Split holding out a test set balanced across (size, degree) strata.

    Round-robins over strata, taking one random record per stratum per
    pass until ``test_size`` are held out, so every populated
    (num_nodes, max_degree) combination is represented when possible.
    """
    if not 0 < test_size < len(dataset):
        raise DatasetError(
            f"test_size {test_size} invalid for dataset of {len(dataset)}"
        )
    generator = ensure_rng(rng)
    strata: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for index, record in enumerate(dataset):
        key = (record.graph.num_nodes, record.graph.max_degree())
        strata[key].append(index)
    for indices in strata.values():
        generator.shuffle(indices)
    test_idx: List[int] = []
    keys = sorted(strata.keys())
    while len(test_idx) < test_size:
        progressed = False
        for key in keys:
            if strata[key] and len(test_idx) < test_size:
                test_idx.append(strata[key].pop())
                progressed = True
        if not progressed:
            break
    test_set = set(test_idx)
    train = [r for i, r in enumerate(dataset) if i not in test_set]
    test = [r for i, r in enumerate(dataset) if i in test_set]
    return QAOADataset(train), QAOADataset(test)


def kfold_indices(
    count: int, folds: int, rng: RngLike = None
) -> List[np.ndarray]:
    """Shuffled index arrays for k-fold cross-validation."""
    if folds < 2 or folds > count:
        raise DatasetError(f"cannot make {folds} folds from {count} items")
    generator = ensure_rng(rng)
    order = generator.permutation(count)
    return [np.sort(chunk) for chunk in np.array_split(order, folds)]
