"""Checkpoint/resume for the labeling pipeline.

A full-scale labeling run (the paper's dataset is ~9.6k graphs, each a
500-iteration QAOA optimization) is hours of fan-out — exactly the kind
of job a flaky worker or an interrupted machine should not be able to
send back to square one. :class:`LabelingCheckpoint` persists progress
as it happens:

- ``manifest.json`` — the run's identity: a fingerprint of every
  configuration field that affects the output, the full configuration
  (so ``repro generate --resume <dir>`` needs no repeated flags), the
  task count, and the index list of every completed shard.
- ``shards/shard_XXXXX.json`` — the labeled records of one contiguous
  block of task indices, in the exact payload schema of
  :meth:`~repro.data.dataset.QAOADataset.save`.

Every write is atomic (:func:`~repro.utils.serialization.save_json`:
same-directory temp file + ``os.replace``), and the manifest is updated
only *after* its shard is durably on disk — so a kill at any instant
leaves either a complete shard or no shard, never a torn one. Because
per-task RNG streams are derived up front
(:func:`repro.runtime.seeding.derive_task_seeds`), a resumed run labels
the remaining graphs with exactly the streams the uninterrupted run
would have used, and the final dataset is byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.data.dataset import QAOARecord, record_from_payload
from repro.exceptions import CheckpointError
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json

logger = get_logger(__name__)

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
SHARDS_DIR = "shards"
CHECKPOINT_FORMAT_VERSION = 1


def shard_name(shard_id: int) -> str:
    """Stable on-disk name for one shard."""
    return f"shard_{shard_id:05d}.json"


class LabelingCheckpoint:
    """One labeling run's durable progress directory."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.shards_dir = self.directory / SHARDS_DIR
        self.manifest_path = self.directory / MANIFEST_NAME

    # ------------------------------------------------------------------
    # Manifest lifecycle
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether a manifest is already on disk."""
        return self.manifest_path.is_file()

    def initialize(
        self,
        fingerprint: dict,
        config: dict,
        total_tasks: int,
        shard_size: int,
    ) -> None:
        """Start a fresh run: write the manifest before any labeling.

        Refuses to clobber an existing checkpoint of a *different* run
        (same-fingerprint re-initialization keeps completed shards, so
        an accidental fresh start over a compatible directory degrades
        to a resume rather than losing work).
        """
        if shard_size < 1:
            raise CheckpointError("shard_size must be >= 1")
        if self.exists():
            manifest = self.load_manifest()
            if manifest["fingerprint"] != fingerprint:
                raise CheckpointError(
                    f"{self.directory} already holds a checkpoint for a "
                    "different generation config; choose a fresh "
                    "directory or pass --resume with matching settings"
                )
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        save_json(
            {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "config": config,
                "total_tasks": int(total_tasks),
                "shard_size": int(shard_size),
                "shards": {},
            },
            self.manifest_path,
        )

    def load_manifest(self) -> dict:
        """Read and structurally validate the manifest."""
        if not self.exists():
            raise CheckpointError(
                f"no checkpoint manifest at {self.manifest_path}"
            )
        try:
            manifest = load_json(self.manifest_path)
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CheckpointError(
                f"{self.manifest_path}: expected a JSON object"
            )
        version = manifest.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format_version {version!r} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        for key in ("fingerprint", "config", "total_tasks", "shards"):
            if key not in manifest:
                raise CheckpointError(
                    f"checkpoint manifest missing {key!r}"
                )
        return manifest

    def validate(self, fingerprint: dict, total_tasks: int) -> dict:
        """Check the on-disk run matches the requested one; return the
        manifest."""
        manifest = self.load_manifest()
        if manifest["fingerprint"] != fingerprint:
            mismatched = sorted(
                key
                for key in set(manifest["fingerprint"]) | set(fingerprint)
                if manifest["fingerprint"].get(key) != fingerprint.get(key)
            )
            raise CheckpointError(
                f"checkpoint at {self.directory} was written by a "
                f"different generation config (mismatched: {mismatched})"
            )
        if int(manifest["total_tasks"]) != int(total_tasks):
            raise CheckpointError(
                f"checkpoint expects {manifest['total_tasks']} tasks, "
                f"run has {total_tasks}"
            )
        return manifest

    # ------------------------------------------------------------------
    # Shards
    # ------------------------------------------------------------------
    def completed_indices(self) -> List[int]:
        """Task indices covered by durably written shards."""
        manifest = self.load_manifest()
        indices: List[int] = []
        for shard_indices in manifest["shards"].values():
            indices.extend(int(i) for i in shard_indices)
        return sorted(indices)

    def write_shard(
        self,
        shard_id: int,
        indices: Sequence[int],
        payloads: Sequence[dict],
    ) -> None:
        """Durably record one completed block of tasks.

        The shard file lands first (atomic), then the manifest is
        rewritten to include it — the commit point. A crash between the
        two writes leaves an orphan shard file that is simply rewritten
        (identically, thanks to deterministic labeling) on resume.
        """
        if len(indices) != len(payloads):
            raise CheckpointError(
                f"shard {shard_id}: {len(indices)} indices vs "
                f"{len(payloads)} payloads"
            )
        name = shard_name(shard_id)
        existing = self.load_manifest()["shards"].get(name)
        if existing is not None and [int(i) for i in existing] != [
            int(i) for i in indices
        ]:
            raise CheckpointError(
                f"shard {name} already committed with different indices "
                "(was the checkpoint resumed with a different shard size?)"
            )
        save_json(
            {
                "shard_id": int(shard_id),
                "indices": [int(i) for i in indices],
                "records": list(payloads),
            },
            self.shards_dir / name,
        )
        manifest = self.load_manifest()
        manifest["shards"][name] = [int(i) for i in indices]
        save_json(manifest, self.manifest_path)

    def load_records(self) -> Dict[int, QAOARecord]:
        """All completed records, keyed by task index."""
        manifest = self.load_manifest()
        records: Dict[int, QAOARecord] = {}
        for name, shard_indices in sorted(manifest["shards"].items()):
            path = self.shards_dir / name
            try:
                shard = load_json(path)
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint shard {path}: {exc}"
                ) from exc
            indices = [int(i) for i in shard.get("indices", ())]
            payloads = shard.get("records", ())
            if indices != [int(i) for i in shard_indices] or len(
                payloads
            ) != len(indices):
                raise CheckpointError(
                    f"checkpoint shard {path} disagrees with the manifest"
                )
            for index, payload in zip(indices, payloads):
                records[index] = record_from_payload(payload)
        return records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelingCheckpoint({str(self.directory)!r})"
