"""Compiled training dataset: per-graph arrays materialized once.

The seed training loop rebuilt every :class:`~repro.gnn.batching.GraphBatch`
from raw :class:`~repro.graphs.graph.Graph` objects on every mini-batch
of every epoch — recomputing node features, re-walking Python edge
lists, and restacking target vectors ~``epochs * ceil(N / batch_size)``
times. :class:`CompiledDataset` does that work exactly once: node
features, directed-edge arrays (both orientations, in
``GraphBatch.from_graphs`` order), and the target matrix are
materialized up front, and every shuffled mini-batch is assembled by
cheap index slicing and integer offsetting.

Assembly is **bit-identical** to ``GraphBatch.from_graphs`` on the same
graphs: features are the same float64 arrays, edge offsets are exact
integer adds, and targets are row-slices of the same stacked matrix.
The trainer's determinism tests assert this end to end.

With ``build_plans=True`` every assembled batch additionally carries
:class:`~repro.gnn.batching.BatchPlans`, switching the GNN layers onto
the CSR ``reduceat`` segment kernels (fast, equivalence-tested, but not
bitwise identical for float sums — see :mod:`repro.nn.segment`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.dataset import QAOADataset, QAOARecord
from repro.exceptions import DatasetError, ModelError
from repro.gnn.batching import GraphBatch
from repro.graphs.features import build_features
from repro.nn.tensor import Tensor


class CompiledDataset:
    """Immutable, batch-ready compilation of a labeled dataset.

    Parameters
    ----------
    dataset:
        A :class:`QAOADataset` or sequence of :class:`QAOARecord`.
    feature_kind, max_nodes:
        Forwarded to :func:`repro.graphs.features.build_features`;
        must match what the model expects (``model.in_dim``).
    build_plans:
        When true, every batch carries CSR segment plans
        (:meth:`GraphBatch.build_plans`) so the GNN layers use the
        ``reduceat`` kernels.
    """

    def __init__(
        self,
        dataset: Union[QAOADataset, Sequence[QAOARecord]],
        feature_kind: str = "degree_onehot",
        max_nodes: int = 15,
        build_plans: bool = False,
    ):
        records = list(dataset)
        if not records:
            raise DatasetError("cannot compile an empty dataset")
        self.feature_kind = feature_kind
        self.max_nodes = int(max_nodes)
        self.build_plans = bool(build_plans)
        self._features: List[np.ndarray] = []
        self._src: List[np.ndarray] = []
        self._dst: List[np.ndarray] = []
        self._weight: List[np.ndarray] = []
        node_counts = []
        for record in records:
            graph = record.graph
            self._features.append(
                build_features(graph, feature_kind, max_nodes)
            )
            edges = graph.edge_array()
            w = graph.weight_array()
            # Both orientations, forward block then reverse block —
            # exactly the concatenation order of GraphBatch.from_graphs.
            self._src.append(np.concatenate([edges[:, 0], edges[:, 1]]))
            self._dst.append(np.concatenate([edges[:, 1], edges[:, 0]]))
            self._weight.append(np.concatenate([w, w]))
            node_counts.append(graph.num_nodes)
        self._node_counts = np.asarray(node_counts, dtype=np.int64)
        self._targets = np.stack(
            [record.target_vector() for record in records]
        )
        self._full_batch: Optional[GraphBatch] = None
        # Assembled-batch memo, keyed by the exact index sequence. A
        # reshuffled epoch mostly produces unseen index sets, but
        # repeated fits over the same dataset (benchmark arms, warm
        # starts, evaluation loops) replay identical batches — those
        # skip reassembly entirely. Batches are treated as immutable by
        # every consumer, so sharing the objects is safe.
        self._batch_cache: dict = {}
        self._target_cache: dict = {}

    #: Assembled batches memoized per dataset (FIFO-evicted).
    BATCH_CACHE_CAP = 64

    def __len__(self) -> int:
        return len(self._features)

    @property
    def num_graphs(self) -> int:
        """Number of compiled graphs."""
        return len(self._features)

    @property
    def target_dim(self) -> int:
        """Width of the target matrix (``2p``)."""
        return int(self._targets.shape[1])

    def targets(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Target rows for ``indices`` (all rows when ``None``)."""
        if indices is None:
            return self._targets
        return self._targets[np.asarray(indices, dtype=np.intp)]

    def batch(self, indices: Sequence[int]) -> GraphBatch:
        """Assemble a :class:`GraphBatch` for the given graph indices.

        Bit-identical to ``GraphBatch.from_graphs`` over the same
        graphs in the same order.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            raise ModelError("empty batch")
        cache_key = indices.tobytes()
        cached = self._batch_cache.get(cache_key)
        if cached is not None:
            return cached
        counts = self._node_counts[indices]
        offsets = np.zeros(indices.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        xs = [self._features[i] for i in indices]
        srcs = [self._src[i] + off for i, off in zip(indices, offsets)]
        dsts = [self._dst[i] + off for i, off in zip(indices, offsets)]
        weights = [self._weight[i] for i in indices]
        edge_src = np.concatenate(srcs)
        edge_dst = np.concatenate(dsts)
        edge_weight = np.concatenate(weights)
        if self.build_plans:
            # CSR mode: stable-sorting edges by destination makes the
            # dst segment index non-decreasing, so the hot reduceat
            # reductions run without a per-call permutation copy. The
            # summation reorder this implies is exactly the documented
            # last-ulp tolerance of the CSR mode (never active on the
            # bit-identical default path).
            order = np.argsort(edge_dst, kind="stable")
            edge_src = edge_src[order]
            edge_dst = edge_dst[order]
            edge_weight = edge_weight[order]
        batch = GraphBatch(
            x=Tensor(np.concatenate(xs, axis=0)),
            edge_src=edge_src,
            edge_dst=edge_dst,
            edge_weight=edge_weight,
            node_graph=np.repeat(
                np.arange(indices.size, dtype=np.int64), counts
            ),
            num_graphs=int(indices.size),
        )
        if self.build_plans:
            batch.build_plans()
        if len(self._batch_cache) >= self.BATCH_CACHE_CAP:
            self._batch_cache.pop(next(iter(self._batch_cache)))
        self._batch_cache[cache_key] = batch
        return batch

    def batch_and_targets(
        self, indices: Sequence[int]
    ) -> Tuple[GraphBatch, Tensor]:
        """One training step's inputs: ``(GraphBatch, target Tensor)``."""
        batch = self.batch(indices)
        key = np.asarray(indices, dtype=np.intp).tobytes()
        cached = self._target_cache.get(key)
        if cached is None:
            cached = Tensor(self.targets(indices))
            if len(self._target_cache) >= self.BATCH_CACHE_CAP:
                self._target_cache.pop(next(iter(self._target_cache)))
            self._target_cache[key] = cached
        return batch, cached

    def full_batch(self) -> GraphBatch:
        """The whole dataset as one batch, built once and memoized.

        Used for validation-loss evaluation, which the seed trainer
        rebuilt from scratch on every epoch.
        """
        if self._full_batch is None:
            self._full_batch = self.batch(np.arange(len(self)))
        return self._full_batch
