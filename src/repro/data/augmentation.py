"""Dataset augmentation by node relabeling.

The paper's node features include one-hot node ids, which ties a
model's output to the (arbitrary) labeling of the training graphs.
Permutation augmentation replicates each record under random node
relabelings — the QAOA label is invariant, so the targets carry over —
teaching the encoder label-invariance the cheap way. (A
permutation-invariant feature set, ``feature_kind='structural'``, is
the principled alternative; the ablation in
``benchmarks/test_ablation_architecture.py`` uses the paper's one-hot
setting.)
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.data.dataset import QAOADataset, QAOARecord
from repro.exceptions import DatasetError
from repro.graphs.transforms import relabel
from repro.utils.rng import RngLike, ensure_rng


def permute_record(record: QAOARecord, rng: RngLike = None) -> QAOARecord:
    """One record with nodes randomly relabeled (same QAOA label).

    Max-Cut value, optimal value and the optimal angles are invariant
    under node permutation, so everything except the graph carries over
    unchanged.
    """
    generator = ensure_rng(rng)
    permutation = generator.permutation(record.graph.num_nodes)
    permuted = relabel(record.graph, permutation)
    if record.graph.name:
        permuted = permuted.with_name(record.graph.name + "_perm")
    return replace(record, graph=permuted)


def augment_by_permutation(
    dataset: QAOADataset,
    copies: int = 1,
    keep_original: bool = True,
    rng: RngLike = None,
) -> QAOADataset:
    """Dataset with ``copies`` permuted replicas of every record."""
    if copies < 1:
        raise DatasetError("copies must be >= 1")
    generator = ensure_rng(rng)
    records: List[QAOARecord] = []
    for record in dataset:
        if keep_original:
            records.append(record)
        for _ in range(copies):
            records.append(permute_record(record, generator))
    return QAOADataset(records)
