"""Data-quality repair: Selective Data Pruning and fixed-angle relabeling.

Paper Section 3.3 identifies that random-initialization labels are often
poor (AR around 50%) and proposes two remedies:

1. **Selective Data Pruning (SDP)** — drop records below an
   approximation-ratio threshold (70%), softened by a *selective rate*:
   "setting a selective rate of 70% would mean preserving 70% of the
   otherwise discarded data, while pruning the remaining 30%".
2. **Fixed-parameter relabeling** — replace labels of regular graphs
   whose degree falls in the fixed-angle tables (3-11) with the
   universal fixed angles when those achieve a better ratio; the paper
   notes this covers only ~6% of the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError, FixedAngleLookupError
from repro.qaoa.fixed_angles import FixedAngleTable, default_table
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class PruningReport:
    """What Selective Data Pruning did.

    Attributes
    ----------
    kept, pruned:
        Record counts after the split.
    below_threshold:
        How many records fell under the AR threshold.
    rescued:
        Below-threshold records retained by the selective rate.
    mean_ar_before, mean_ar_after:
        Dataset quality before/after.
    """

    kept: int
    pruned: int
    below_threshold: int
    rescued: int
    mean_ar_before: float
    mean_ar_after: float


def selective_data_pruning(
    dataset: QAOADataset,
    threshold: float = 0.7,
    selective_rate: float = 0.0,
    rng: RngLike = None,
) -> Tuple[QAOADataset, PruningReport]:
    """Apply SDP and return (pruned dataset, report).

    ``selective_rate`` = 0 reproduces the paper's initial hard-threshold
    variant; > 0 retains that fraction of the below-threshold records
    (uniformly at random) to preserve dataset size and diversity.
    """
    if not 0.0 <= threshold <= 1.0:
        raise DatasetError(f"threshold {threshold} not in [0, 1]")
    if not 0.0 <= selective_rate <= 1.0:
        raise DatasetError(f"selective rate {selective_rate} not in [0, 1]")
    generator = ensure_rng(rng)
    ratios = dataset.approximation_ratios()
    kept_records = []
    below = 0
    rescued = 0
    for record, ratio in zip(dataset, ratios):
        if ratio >= threshold:
            kept_records.append(record)
            continue
        below += 1
        if selective_rate > 0.0 and generator.random() < selective_rate:
            kept_records.append(record)
            rescued += 1
    result = QAOADataset(kept_records)
    report = PruningReport(
        kept=len(result),
        pruned=len(dataset) - len(result),
        below_threshold=below,
        rescued=rescued,
        mean_ar_before=float(ratios.mean()) if len(ratios) else 0.0,
        mean_ar_after=(
            float(result.approximation_ratios().mean()) if len(result) else 0.0
        ),
    )
    return result, report


@dataclass
class RelabelReport:
    """What fixed-angle relabeling did.

    Attributes
    ----------
    eligible:
        Regular records whose degree falls in the covered window.
    relabeled:
        Eligible records where the fixed angles beat the stored label.
    coverage_fraction:
        ``eligible / total`` — the paper reports ~6% at full scale.
    """

    eligible: int
    relabeled: int
    total: int

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the dataset inside the fixed-angle coverage."""
        return self.eligible / self.total if self.total else 0.0


def fixed_angle_relabel(
    dataset: QAOADataset,
    table: Optional[FixedAngleTable] = None,
    only_if_better: bool = True,
) -> Tuple[QAOADataset, RelabelReport]:
    """Relabel covered regular graphs with fixed-angle parameters.

    With ``only_if_better`` (default) a record keeps its original label
    when it already beats the fixed angles.
    """
    if table is None:
        table = default_table()
    records = []
    eligible = 0
    relabeled = 0
    for record in dataset:
        degree = record.graph.regular_degree()
        if degree is None or not table.covers(degree, record.p):
            records.append(record)
            continue
        eligible += 1
        try:
            entry = table.lookup(degree, record.p)
        except FixedAngleLookupError:
            records.append(record)
            continue
        simulator = QAOASimulator(record.graph)
        expectation = simulator.expectation(
            np.asarray(entry.gammas), np.asarray(entry.betas)
        )
        ratio = expectation / record.optimal_value if record.optimal_value else 1.0
        if only_if_better and ratio <= record.approximation_ratio:
            records.append(record)
            continue
        relabeled += 1
        records.append(
            record.with_label(
                entry.gammas, entry.betas, expectation, ratio, "fixed_angle"
            )
        )
    report = RelabelReport(
        eligible=eligible, relabeled=relabeled, total=len(dataset)
    )
    return QAOADataset(records), report
