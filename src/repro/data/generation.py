"""Dataset generation: sample graphs and label them with QAOA runs.

Reproduces paper Section 3.1: sample synthetic regular graphs (nodes
2-15), run QAOA from random initial parameters for a fixed iteration
budget (paper: 500), and store the final parameters plus the achieved
approximation ratio versus brute force. The paper notes the labels "may
not necessarily represent the absolute optimal parameters" — exactly the
data-quality issue Section 3.3 then addresses.

Angles of unweighted instances are canonicalized into ``gamma in
[0, 2 pi)``, ``beta in [0, pi)`` using the exact periodicities of the
unweighted Max-Cut ansatz, which gives the regressor a consistent
target manifold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import QAOADataset, QAOARecord
from repro.exceptions import DatasetError
from repro.graphs.generators import (
    feasible_regular_degrees,
    random_regular_graph,
)
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.initialization import InitializationStrategy, RandomInitialization
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng, spawn_rng

logger = get_logger(__name__)


def canonicalize_angles(
    gammas: np.ndarray, betas: np.ndarray, weighted: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Map angles into a canonical fundamental domain.

    Unweighted Max-Cut QAOA has three exact parameter symmetries (all
    verified in ``tests/test_data_generation.py``):

    1. ``gamma_k -> gamma_k + 2 pi`` — the cost diagonal is
       integer-valued.
    2. ``beta_k -> beta_k + pi/2`` — the global spin flip ``X^n``
       commutes with the cut operator, and ``U_B(pi/2)`` is that flip up
       to a global phase.
    3. ``(gamma, beta) -> (-gamma, -beta)`` jointly on all layers —
       time reversal (complex conjugation of the whole circuit).

    Folding with all three maps labels into ``gamma_k in [0, 2 pi)``
    (``gamma_1 in [0, pi]``) and ``beta_k in [0, pi/2)``. This matters
    for learning: without it, equivalent optima land on distant points
    of the target manifold and the regressor collapses to a meaningless
    average. Weighted graphs have none of these periodicities, so their
    angles pass through unchanged.
    """
    gammas = np.asarray(gammas, dtype=np.float64).copy()
    betas = np.asarray(betas, dtype=np.float64).copy()
    if weighted:
        return gammas, betas
    gammas = _wrap(gammas, 2.0 * np.pi)
    betas = _wrap(betas, np.pi / 2.0)
    if gammas.size and gammas[0] > np.pi:
        # time-reversal fold: negate every layer, then re-wrap
        gammas = _wrap(-gammas, 2.0 * np.pi)
        betas = _wrap(-betas, np.pi / 2.0)
    return gammas, betas


def _wrap(angles: np.ndarray, period: float) -> np.ndarray:
    """``angles mod period`` landing strictly inside ``[0, period)``.

    ``np.mod(-tiny, period)`` rounds to ``period`` itself in floating
    point; snap that back to 0 to keep the domain half-open.
    """
    wrapped = np.mod(angles, period)
    wrapped[wrapped >= period] = 0.0
    return wrapped


def canonical_representative(
    simulator: QAOASimulator,
    gammas: np.ndarray,
    betas: np.ndarray,
    tol: float = 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pick a canonical point among verified symmetry images of a label.

    Beyond the universal symmetries folded by
    :func:`canonicalize_angles`, many instances have extra exact ones —
    e.g. at p=1, ``gamma -> pi - gamma`` on all-odd-degree graphs and
    ``(gamma, beta) -> (pi - gamma, pi/2 - beta)`` on even-degree
    graphs (visible in the Wang et al. closed form). Instead of assuming
    which apply, this probes the four candidate images and keeps only
    those the simulator *verifies* to preserve the expectation, then
    returns the lexicographically smallest — so equivalent optima from
    different graphs map to the same chamber of parameter space, which
    is what makes the regression target well-defined.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    reference = simulator.expectation(gammas, betas)
    scale = max(1.0, abs(reference))
    candidates = []
    for flip_gamma in (False, True):
        for flip_beta in (False, True):
            g = np.mod(np.pi - gammas, 2 * np.pi) if flip_gamma else gammas
            b = np.mod(np.pi / 2 - betas, np.pi / 2) if flip_beta else betas
            if flip_gamma or flip_beta:
                if abs(simulator.expectation(g, b) - reference) > tol * scale:
                    continue
            candidates.append((tuple(g) + tuple(b), g, b))
    candidates.sort(key=lambda item: item[0])
    _, best_g, best_b = candidates[0]
    return best_g, best_b


@dataclass
class GenerationConfig:
    """Knobs for dataset generation.

    ``num_graphs=9598``, ``optimizer_iters=500`` reproduce the paper's
    full-scale dataset; the defaults here are scaled for interactive
    runs and the benchmarks override per experiment.
    """

    num_graphs: int = 200
    min_nodes: int = 3
    max_nodes: int = 15
    p: int = 1
    optimizer_iters: int = 120
    learning_rate: float = 0.05
    tol: float = 0.0
    restarts: int = 1
    weighted: bool = False
    weight_range: Tuple[float, float] = (0.5, 1.5)
    seed: Optional[int] = None


def sample_graphs(config: GenerationConfig, rng: RngLike = None) -> List[Graph]:
    """Sample the regular-graph population of the paper's dataset.

    Size uniform in ``[min_nodes, max_nodes]``, degree uniform over the
    feasible regular degrees for that size (2 .. n-1).
    """
    if config.num_graphs < 1:
        raise DatasetError("num_graphs must be positive")
    if config.min_nodes < 2 or config.max_nodes > 20:
        raise DatasetError("node range outside supported [2, 20]")
    generator = ensure_rng(rng if rng is not None else config.seed)
    graphs: List[Graph] = []
    while len(graphs) < config.num_graphs:
        num_nodes = int(
            generator.integers(config.min_nodes, config.max_nodes + 1)
        )
        degrees = feasible_regular_degrees(num_nodes)
        if not degrees:
            continue
        degree = int(degrees[generator.integers(0, len(degrees))])
        try:
            graph = random_regular_graph(
                num_nodes,
                degree,
                generator,
                name=f"g{len(graphs):05d}_n{num_nodes}_d{degree}",
            )
        except Exception:  # infeasible draw; resample
            continue
        if config.weighted:
            low, high = config.weight_range
            weights = generator.uniform(low, high, size=graph.num_edges)
            graph = graph.with_weights(weights)
        graphs.append(graph)
    return graphs


def label_graph(
    graph: Graph,
    p: int = 1,
    optimizer_iters: int = 120,
    learning_rate: float = 0.05,
    tol: float = 0.0,
    restarts: int = 1,
    initialization: Optional[InitializationStrategy] = None,
    rng: RngLike = None,
) -> QAOARecord:
    """Run the labeling QAOA loop on one graph and build its record.

    ``restarts`` > 1 runs the optimization from several independent
    random starts and keeps the best — the straightforward upgrade over
    the paper's single-start labeling that removes most of the
    low-quality tail (at proportional cost).
    """
    generator = ensure_rng(rng)
    if initialization is None:
        initialization = RandomInitialization()
    if restarts < 1:
        raise DatasetError("restarts must be >= 1")
    problem = MaxCutProblem(graph)
    simulator = QAOASimulator(problem)
    optimizer = AdamOptimizer(learning_rate=learning_rate)
    result = None
    for _ in range(restarts):
        gammas0, betas0 = initialization.initial_parameters(
            graph, p, generator
        )
        attempt = optimizer.run(
            simulator, gammas0, betas0, max_iters=optimizer_iters, tol=tol
        )
        if result is None or attempt.expectation > result.expectation:
            result = attempt
    gammas, betas = canonicalize_angles(
        result.gammas, result.betas, graph.is_weighted
    )
    if not graph.is_weighted:
        gammas, betas = canonical_representative(simulator, gammas, betas)
    optimum = problem.max_cut_value()
    return QAOARecord(
        graph=graph,
        p=p,
        gammas=tuple(float(g) for g in gammas),
        betas=tuple(float(b) for b in betas),
        expectation=float(result.expectation),
        optimal_value=float(optimum),
        approximation_ratio=problem.approximation_ratio(result.expectation),
        best_cut_value=float(optimum),
        source="optimized",
    )


def generate_dataset(
    config: Optional[GenerationConfig] = None, rng: RngLike = None
) -> QAOADataset:
    """Full pipeline: sample graphs, label each, return the dataset."""
    if config is None:
        config = GenerationConfig()
    generator = ensure_rng(rng if rng is not None else config.seed)
    graph_rng = spawn_rng(generator)
    label_rng = spawn_rng(generator)
    graphs = sample_graphs(config, graph_rng)
    dataset = QAOADataset()
    for index, graph in enumerate(graphs):
        record = label_graph(
            graph,
            p=config.p,
            optimizer_iters=config.optimizer_iters,
            learning_rate=config.learning_rate,
            tol=config.tol,
            restarts=config.restarts,
            rng=label_rng,
        )
        dataset.append(record)
        if (index + 1) % 100 == 0:
            logger.info(
                "labeled %d/%d graphs (mean AR so far %.3f)",
                index + 1,
                len(graphs),
                dataset.approximation_ratios().mean(),
            )
    return dataset


def paper_scale_config(seed: Optional[int] = None) -> GenerationConfig:
    """The paper's full-scale configuration (9598 graphs, 500 iterations)."""
    return GenerationConfig(
        num_graphs=9598,
        min_nodes=2,
        max_nodes=15,
        p=1,
        optimizer_iters=500,
        seed=seed,
    )
