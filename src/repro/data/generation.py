"""Dataset generation: sample graphs and label them with QAOA runs.

Reproduces paper Section 3.1: sample synthetic regular graphs (nodes
2-15), run QAOA from random initial parameters for a fixed iteration
budget (paper: 500), and store the final parameters plus the achieved
approximation ratio versus brute force. The paper notes the labels "may
not necessarily represent the absolute optimal parameters" — exactly the
data-quality issue Section 3.3 then addresses.

Angles of unweighted instances are canonicalized into ``gamma in
[0, 2 pi)``, ``beta in [0, pi)`` using the exact periodicities of the
unweighted Max-Cut ansatz, which gives the regressor a consistent
target manifold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import QAOADataset, QAOARecord
from repro.exceptions import DatasetError, ExecutionError
from repro.graphs.generators import (
    feasible_regular_degrees,
    random_regular_graph,
)
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.initialization import InitializationStrategy, RandomInitialization
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.runtime import ParallelExecutor, derive_task_seeds, task_rng
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng, spawn_rng

logger = get_logger(__name__)


def canonicalize_angles(
    gammas: np.ndarray, betas: np.ndarray, weighted: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Map angles into a canonical fundamental domain.

    Unweighted Max-Cut QAOA has three exact parameter symmetries (all
    verified in ``tests/test_data_generation.py``):

    1. ``gamma_k -> gamma_k + 2 pi`` — the cost diagonal is
       integer-valued.
    2. ``beta_k -> beta_k + pi/2`` — the global spin flip ``X^n``
       commutes with the cut operator, and ``U_B(pi/2)`` is that flip up
       to a global phase.
    3. ``(gamma, beta) -> (-gamma, -beta)`` jointly on all layers —
       time reversal (complex conjugation of the whole circuit).

    Folding with all three maps labels into ``gamma_k in [0, 2 pi)``
    (``gamma_1 in [0, pi]``) and ``beta_k in [0, pi/2)``. This matters
    for learning: without it, equivalent optima land on distant points
    of the target manifold and the regressor collapses to a meaningless
    average. Weighted graphs have none of these periodicities, so their
    angles pass through unchanged.
    """
    gammas = np.asarray(gammas, dtype=np.float64).copy()
    betas = np.asarray(betas, dtype=np.float64).copy()
    if weighted:
        return gammas, betas
    gammas = _wrap(gammas, 2.0 * np.pi)
    betas = _wrap(betas, np.pi / 2.0)
    if gammas.size and gammas[0] > np.pi:
        # time-reversal fold: negate every layer, then re-wrap
        gammas = _wrap(-gammas, 2.0 * np.pi)
        betas = _wrap(-betas, np.pi / 2.0)
    return gammas, betas


def _wrap(angles: np.ndarray, period: float) -> np.ndarray:
    """``angles mod period`` landing strictly inside ``[0, period)``.

    ``np.mod(-tiny, period)`` rounds to ``period`` itself in floating
    point; snap that back to 0 to keep the domain half-open.
    """
    wrapped = np.mod(angles, period)
    wrapped[wrapped >= period] = 0.0
    return wrapped


def canonical_representative(
    simulator: QAOASimulator,
    gammas: np.ndarray,
    betas: np.ndarray,
    tol: float = 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pick a canonical point among verified symmetry images of a label.

    Beyond the universal symmetries folded by
    :func:`canonicalize_angles`, many instances have extra exact ones —
    e.g. at p=1, ``gamma -> pi - gamma`` on all-odd-degree graphs and
    ``(gamma, beta) -> (pi - gamma, pi/2 - beta)`` on even-degree
    graphs (visible in the Wang et al. closed form). Instead of assuming
    which apply, this probes the four candidate images and keeps only
    those the simulator *verifies* to preserve the expectation, then
    returns the lexicographically smallest — so equivalent optima from
    different graphs map to the same chamber of parameter space, which
    is what makes the regression target well-defined.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    reference = simulator.expectation(gammas, betas)
    scale = max(1.0, abs(reference))
    candidates = []
    for flip_gamma in (False, True):
        for flip_beta in (False, True):
            g = np.mod(np.pi - gammas, 2 * np.pi) if flip_gamma else gammas
            b = np.mod(np.pi / 2 - betas, np.pi / 2) if flip_beta else betas
            if flip_gamma or flip_beta:
                if abs(simulator.expectation(g, b) - reference) > tol * scale:
                    continue
            candidates.append((tuple(g) + tuple(b), g, b))
    candidates.sort(key=lambda item: item[0])
    _, best_g, best_b = candidates[0]
    return best_g, best_b


@dataclass
class GenerationConfig:
    """Knobs for dataset generation.

    ``num_graphs=9598``, ``optimizer_iters=500`` reproduce the paper's
    full-scale dataset; the defaults here are scaled for interactive
    runs and the benchmarks override per experiment.
    """

    num_graphs: int = 200
    min_nodes: int = 3
    max_nodes: int = 15
    p: int = 1
    optimizer_iters: int = 120
    learning_rate: float = 0.05
    tol: float = 0.0
    restarts: int = 1
    weighted: bool = False
    weight_range: Tuple[float, float] = (0.5, 1.5)
    seed: Optional[int] = None
    #: Labeling fan-out backend: "serial", "thread", or "process". Output
    #: is bit-identical across backends for the same seed (per-graph RNG
    #: streams are derived up front; see repro.runtime.seeding).
    backend: str = "serial"
    #: Worker count for the parallel backends (None = all cores).
    workers: Optional[int] = None
    #: Log a progress line every N labeled graphs (0 disables).
    progress_every: int = 100


def sample_graphs(config: GenerationConfig, rng: RngLike = None) -> List[Graph]:
    """Sample the regular-graph population of the paper's dataset.

    Size uniform in ``[min_nodes, max_nodes]``, degree uniform over the
    feasible regular degrees for that size (2 .. n-1).
    """
    if config.num_graphs < 1:
        raise DatasetError("num_graphs must be positive")
    if config.min_nodes < 2 or config.max_nodes > 20:
        raise DatasetError("node range outside supported [2, 20]")
    if config.min_nodes > config.max_nodes:
        raise DatasetError(
            f"min_nodes {config.min_nodes} > max_nodes {config.max_nodes}"
        )
    generator = ensure_rng(rng if rng is not None else config.seed)
    graphs: List[Graph] = []
    while len(graphs) < config.num_graphs:
        num_nodes = int(
            generator.integers(config.min_nodes, config.max_nodes + 1)
        )
        degrees = feasible_regular_degrees(num_nodes)
        if not degrees:
            continue
        degree = int(degrees[generator.integers(0, len(degrees))])
        try:
            graph = random_regular_graph(
                num_nodes,
                degree,
                generator,
                name=f"g{len(graphs):05d}_n{num_nodes}_d{degree}",
            )
        except Exception:  # infeasible draw; resample
            continue
        if config.weighted:
            low, high = config.weight_range
            weights = generator.uniform(low, high, size=graph.num_edges)
            graph = graph.with_weights(weights)
        graphs.append(graph)
    return graphs


def label_graph(
    graph: Graph,
    p: int = 1,
    optimizer_iters: int = 120,
    learning_rate: float = 0.05,
    tol: float = 0.0,
    restarts: int = 1,
    initialization: Optional[InitializationStrategy] = None,
    rng: RngLike = None,
    simulator: Optional[QAOASimulator] = None,
) -> QAOARecord:
    """Run the labeling QAOA loop on one graph and build its record.

    ``restarts`` > 1 runs the optimization from several independent
    random starts and keeps the best — the straightforward upgrade over
    the paper's single-start labeling that removes most of the
    low-quality tail (at proportional cost). The multi-start path is
    fused: one simulator instance (with its cached cost diagonal and
    evaluation workspaces) serves every restart, so extra restarts cost
    only optimizer iterations, not setup. Callers that already hold a
    simulator for the graph can pass it via ``simulator`` to skip
    rebuilding the cost diagonal.
    """
    generator = ensure_rng(rng)
    if initialization is None:
        initialization = RandomInitialization()
    if restarts < 1:
        raise DatasetError("restarts must be >= 1")
    if simulator is None:
        simulator = QAOASimulator(MaxCutProblem(graph))
    elif simulator.problem.graph is not graph:
        raise DatasetError("simulator is bound to a different graph")
    problem = simulator.problem
    optimizer = AdamOptimizer(learning_rate=learning_rate)
    result = None
    for _ in range(restarts):
        gammas0, betas0 = initialization.initial_parameters(
            graph, p, generator
        )
        attempt = optimizer.run(
            simulator, gammas0, betas0, max_iters=optimizer_iters, tol=tol
        )
        if result is None or attempt.expectation > result.expectation:
            result = attempt
    gammas, betas = canonicalize_angles(
        result.gammas, result.betas, graph.is_weighted
    )
    if not graph.is_weighted:
        gammas, betas = canonical_representative(simulator, gammas, betas)
    optimum = problem.max_cut_value()
    return QAOARecord(
        graph=graph,
        p=p,
        gammas=tuple(float(g) for g in gammas),
        betas=tuple(float(b) for b in betas),
        expectation=float(result.expectation),
        optimal_value=float(optimum),
        approximation_ratio=problem.approximation_ratio(result.expectation),
        best_cut_value=float(optimum),
        source="optimized",
    )


def _label_task(payload) -> QAOARecord:
    """Label one graph from a self-contained payload.

    Module-level (and tuple-argument) so the process backend can pickle
    it; the per-graph seed makes the task independent of execution order,
    which is what keeps parallel output bit-identical to serial.
    """
    graph, seed, p, optimizer_iters, learning_rate, tol, restarts = payload
    return label_graph(
        graph,
        p=p,
        optimizer_iters=optimizer_iters,
        learning_rate=learning_rate,
        tol=tol,
        restarts=restarts,
        rng=task_rng(seed),
    )


def generate_dataset(
    config: Optional[GenerationConfig] = None,
    rng: RngLike = None,
    executor: Optional[ParallelExecutor] = None,
) -> QAOADataset:
    """Full pipeline: sample graphs, label each, return the dataset.

    Labeling fans out through a :class:`~repro.runtime.ParallelExecutor`
    (built from ``config.backend`` / ``config.workers`` unless one is
    passed explicitly). Each graph gets an independent RNG stream derived
    up front from the labeling seed, so every backend — serial included —
    produces bit-identical records for the same seed. Worker failures
    surface as :class:`~repro.exceptions.DatasetError` naming the
    offending graphs.
    """
    if config is None:
        config = GenerationConfig()
    if executor is None:
        executor = ParallelExecutor(
            backend=config.backend,
            max_workers=config.workers,
            report_every=config.progress_every,
        )
    generator = ensure_rng(rng if rng is not None else config.seed)
    graph_rng = spawn_rng(generator)
    label_rng = spawn_rng(generator)
    graphs = sample_graphs(config, graph_rng)
    seeds = derive_task_seeds(label_rng, len(graphs))
    payloads = [
        (
            graph,
            seed,
            config.p,
            config.optimizer_iters,
            config.learning_rate,
            config.tol,
            config.restarts,
        )
        for graph, seed in zip(graphs, seeds)
    ]
    try:
        records = executor.map(
            _label_task, payloads, labels=[graph.name for graph in graphs]
        )
    except ExecutionError as exc:
        names = ", ".join(failure.label for failure in exc.failures[:5])
        raise DatasetError(
            f"labeling failed for {len(exc.failures)} graph(s): {names}"
        ) from exc
    dataset = QAOADataset()
    for record in records:
        dataset.append(record)
    stats = executor.last_report
    logger.info(
        "labeled %d graphs in %.1fs (%.1f graphs/s, backend=%s, mean AR %.3f)",
        len(dataset),
        stats.wall_time,
        stats.tasks_per_second,
        executor.backend,
        dataset.approximation_ratios().mean() if len(dataset) else 0.0,
    )
    return dataset


def paper_scale_config(seed: Optional[int] = None) -> GenerationConfig:
    """The paper's full-scale configuration (9598 graphs, 500 iterations)."""
    return GenerationConfig(
        num_graphs=9598,
        min_nodes=2,
        max_nodes=15,
        p=1,
        optimizer_iters=500,
        seed=seed,
    )
