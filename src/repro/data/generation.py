"""Dataset generation: sample graphs and label them with QAOA runs.

Reproduces paper Section 3.1: sample synthetic regular graphs (nodes
2-15), run QAOA from random initial parameters for a fixed iteration
budget (paper: 500), and store the final parameters plus the achieved
approximation ratio versus brute force. The paper notes the labels "may
not necessarily represent the absolute optimal parameters" — exactly the
data-quality issue Section 3.3 then addresses.

Angles of unweighted instances are canonicalized into ``gamma in
[0, 2 pi)``, ``beta in [0, pi)`` using the exact periodicities of the
unweighted Max-Cut ansatz, which gives the regressor a consistent
target manifold.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.data.checkpoint import LabelingCheckpoint
from repro.data.dataset import (
    QAOADataset,
    QAOARecord,
    record_to_payload,
)
from repro.exceptions import DatasetError, ExecutionError, GraphError
from repro.graphs.generators import (
    feasible_regular_degrees,
    random_regular_graph,
)
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.analytic import p1_expectation, p1_optimize_angles
from repro.qaoa.initialization import InitializationStrategy, RandomInitialization
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.runtime import (
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    derive_task_seeds,
    task_rng,
)
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng, spawn_rng

logger = get_logger(__name__)

#: Supported labeling backends: dense statevector optimization (the
#: paper's method, exact for any p but capped by 2^n memory) and the
#: closed-form p=1 surface (exact for unweighted graphs at any size).
LABEL_METHODS = ("statevector", "analytic-p1")

#: Node caps per label method. The statevector labeler holds a dense
#: 2^n state; the analytic labeler is O(edges) per probe, so its cap is
#: a sanity bound, not a memory one.
MAX_STATEVECTOR_NODES = 20
MAX_ANALYTIC_NODES = 512

#: Above this size the brute-force Max-Cut optimum (2^n enumeration) is
#: off the table; analytic labels then report the total-edge-weight
#: upper bound, making the recorded ratio a lower bound on the true AR.
MAX_EXACT_OPTIMUM_NODES = 16

#: Provenance tag of closed-form p=1 labels.
SOURCE_ANALYTIC_P1 = "analytic_p1"


def canonicalize_angles(
    gammas: np.ndarray, betas: np.ndarray, weighted: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Map angles into a canonical fundamental domain.

    Unweighted Max-Cut QAOA has three exact parameter symmetries (all
    verified in ``tests/test_data_generation.py``):

    1. ``gamma_k -> gamma_k + 2 pi`` — the cost diagonal is
       integer-valued.
    2. ``beta_k -> beta_k + pi/2`` — the global spin flip ``X^n``
       commutes with the cut operator, and ``U_B(pi/2)`` is that flip up
       to a global phase.
    3. ``(gamma, beta) -> (-gamma, -beta)`` jointly on all layers —
       time reversal (complex conjugation of the whole circuit).

    Folding with all three maps labels into ``gamma_k in [0, 2 pi)``
    (``gamma_1 in [0, pi]``) and ``beta_k in [0, pi/2)``. This matters
    for learning: without it, equivalent optima land on distant points
    of the target manifold and the regressor collapses to a meaningless
    average. Weighted graphs have none of these periodicities, so their
    angles pass through unchanged.
    """
    gammas = np.asarray(gammas, dtype=np.float64).copy()
    betas = np.asarray(betas, dtype=np.float64).copy()
    if weighted:
        return gammas, betas
    gammas = _wrap(gammas, 2.0 * np.pi)
    betas = _wrap(betas, np.pi / 2.0)
    if gammas.size and gammas[0] > np.pi:
        # time-reversal fold: negate every layer, then re-wrap
        gammas = _wrap(-gammas, 2.0 * np.pi)
        betas = _wrap(-betas, np.pi / 2.0)
    return gammas, betas


def _wrap(angles: np.ndarray, period: float) -> np.ndarray:
    """``angles mod period`` landing strictly inside ``[0, period)``.

    ``np.mod(-tiny, period)`` rounds to ``period`` itself in floating
    point; snap that back to 0 to keep the domain half-open.
    """
    wrapped = np.mod(angles, period)
    wrapped[wrapped >= period] = 0.0
    return wrapped


def canonical_representative(
    simulator: QAOASimulator,
    gammas: np.ndarray,
    betas: np.ndarray,
    tol: float = 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pick a canonical point among verified symmetry images of a label.

    Beyond the universal symmetries folded by
    :func:`canonicalize_angles`, many instances have extra exact ones —
    e.g. at p=1, ``gamma -> pi - gamma`` on all-odd-degree graphs and
    ``(gamma, beta) -> (pi - gamma, pi/2 - beta)`` on even-degree
    graphs (visible in the Wang et al. closed form). Instead of assuming
    which apply, this probes the four candidate images and keeps only
    those the simulator *verifies* to preserve the expectation, then
    returns the lexicographically smallest — so equivalent optima from
    different graphs map to the same chamber of parameter space, which
    is what makes the regression target well-defined.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    reference = simulator.expectation(gammas, betas)
    scale = max(1.0, abs(reference))
    candidates = []
    for flip_gamma in (False, True):
        for flip_beta in (False, True):
            g = np.mod(np.pi - gammas, 2 * np.pi) if flip_gamma else gammas
            b = np.mod(np.pi / 2 - betas, np.pi / 2) if flip_beta else betas
            if flip_gamma or flip_beta:
                if abs(simulator.expectation(g, b) - reference) > tol * scale:
                    continue
            candidates.append((tuple(g) + tuple(b), g, b))
    candidates.sort(key=lambda item: item[0])
    _, best_g, best_b = candidates[0]
    return best_g, best_b


@dataclass
class GenerationConfig:
    """Knobs for dataset generation.

    ``num_graphs=9598``, ``optimizer_iters=500`` reproduce the paper's
    full-scale dataset; the defaults here are scaled for interactive
    runs and the benchmarks override per experiment.
    """

    num_graphs: int = 200
    min_nodes: int = 3
    max_nodes: int = 15
    p: int = 1
    optimizer_iters: int = 120
    learning_rate: float = 0.05
    tol: float = 0.0
    restarts: int = 1
    weighted: bool = False
    weight_range: Tuple[float, float] = (0.5, 1.5)
    seed: Optional[int] = None
    #: Labeling fan-out backend: "serial", "thread", or "process". Output
    #: is bit-identical across backends for the same seed (per-graph RNG
    #: streams are derived up front; see repro.runtime.seeding).
    backend: str = "serial"
    #: Worker count for the parallel backends (None = all cores).
    workers: Optional[int] = None
    #: Log a progress line every N labeled graphs (0 disables).
    progress_every: int = 100
    #: Consecutive infeasible graph draws tolerated before sampling is
    #: declared stuck (see :func:`sample_graphs`).
    max_resample_attempts: int = 100
    #: Extra labeling attempts per graph before the run fails.
    retries: int = 0
    #: Backoff before the first labeling retry (0 retries immediately).
    #: Jitter is deterministic per task, so retried runs stay
    #: bit-reproducible.
    backoff_base_s: float = 0.0
    #: Wall-clock budget per labeling attempt (None = unbounded).
    task_timeout_s: Optional[float] = None
    #: Overall labeling deadline in seconds (None = unbounded).
    deadline_s: Optional[float] = None
    #: Graphs per checkpoint shard when a checkpoint directory is used.
    checkpoint_every: int = 32
    #: Labeling backend: "statevector" (dense optimization, any p,
    #: n <= 20) or "analytic-p1" (closed-form p=1 surface, unweighted,
    #: n up to MAX_ANALYTIC_NODES — the large-graph path).
    label_method: str = "statevector"

    def executor(
        self, fault_injector: Optional[FaultInjector] = None
    ) -> ParallelExecutor:
        """The labeling executor implied by this config."""
        return ParallelExecutor(
            backend=self.backend,
            max_workers=self.workers,
            report_every=self.progress_every,
            retry_policy=RetryPolicy(
                retries=self.retries,
                backoff_base_s=self.backoff_base_s,
                jitter=0.1 if self.backoff_base_s > 0 else 0.0,
                seed=self.seed if self.seed is not None else 0,
            ),
            task_timeout_s=self.task_timeout_s,
            deadline_s=self.deadline_s,
            fault_injector=fault_injector,
        )

    def fingerprint(self) -> dict:
        """The fields that determine labeling output, for checkpoint
        compatibility checks. Execution knobs (backend, workers,
        timeouts) are deliberately excluded: resuming on a different
        machine shape must still produce the same dataset."""
        return {
            "num_graphs": self.num_graphs,
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "p": self.p,
            "optimizer_iters": self.optimizer_iters,
            "learning_rate": self.learning_rate,
            "tol": self.tol,
            "restarts": self.restarts,
            "weighted": self.weighted,
            "weight_range": list(self.weight_range),
            "seed": self.seed,
            "label_method": self.label_method,
        }


def sample_graphs(config: GenerationConfig, rng: RngLike = None) -> List[Graph]:
    """Sample the regular-graph population of the paper's dataset.

    Size uniform in ``[min_nodes, max_nodes]``, degree uniform over the
    feasible regular degrees for that size (2 .. n-1).
    """
    if config.num_graphs < 1:
        raise DatasetError("num_graphs must be positive")
    if config.label_method not in LABEL_METHODS:
        raise DatasetError(
            f"unknown label method {config.label_method!r}; "
            f"choose from {LABEL_METHODS}"
        )
    # The dense statevector labeler holds 2^n amplitudes, which is what
    # caps the paper at ~15 nodes; the analytic-p1 labeler has no such
    # wall, so its node range opens up to the large-graph bound.
    node_cap = (
        MAX_STATEVECTOR_NODES
        if config.label_method == "statevector"
        else MAX_ANALYTIC_NODES
    )
    if config.min_nodes < 2 or config.max_nodes > node_cap:
        raise DatasetError(
            f"node range outside supported [2, {node_cap}] for "
            f"label method {config.label_method!r}"
        )
    if config.min_nodes > config.max_nodes:
        raise DatasetError(
            f"min_nodes {config.min_nodes} > max_nodes {config.max_nodes}"
        )
    if config.max_resample_attempts < 1:
        raise DatasetError("max_resample_attempts must be >= 1")
    generator = ensure_rng(rng if rng is not None else config.seed)
    graphs: List[Graph] = []
    failed_draws = 0
    while len(graphs) < config.num_graphs:
        if failed_draws >= config.max_resample_attempts:
            # An unbounded resample loop here used to spin forever on an
            # infeasible config (e.g. min_nodes = max_nodes = 2, which
            # has no regular degree >= 2) and, worse, swallowed genuine
            # bugs via a bare except. Fail loudly instead.
            raise DatasetError(
                f"graph sampling stalled: {failed_draws} consecutive "
                f"infeasible draws for nodes in "
                f"[{config.min_nodes}, {config.max_nodes}]"
            )
        num_nodes = int(
            generator.integers(config.min_nodes, config.max_nodes + 1)
        )
        degrees = feasible_regular_degrees(num_nodes)
        if not degrees:
            failed_draws += 1
            continue
        degree = int(degrees[generator.integers(0, len(degrees))])
        try:
            graph = random_regular_graph(
                num_nodes,
                degree,
                generator,
                name=f"g{len(graphs):05d}_n{num_nodes}_d{degree}",
            )
        except GraphError:  # infeasible draw; resample
            failed_draws += 1
            continue
        failed_draws = 0
        if config.weighted:
            low, high = config.weight_range
            weights = generator.uniform(low, high, size=graph.num_edges)
            graph = graph.with_weights(weights)
        graphs.append(graph)
    return graphs


def label_graph(
    graph: Graph,
    p: int = 1,
    optimizer_iters: int = 120,
    learning_rate: float = 0.05,
    tol: float = 0.0,
    restarts: int = 1,
    initialization: Optional[InitializationStrategy] = None,
    rng: RngLike = None,
    simulator: Optional[QAOASimulator] = None,
) -> QAOARecord:
    """Run the labeling QAOA loop on one graph and build its record.

    ``restarts`` > 1 runs the optimization from several independent
    random starts and keeps the best — the straightforward upgrade over
    the paper's single-start labeling that removes most of the
    low-quality tail (at proportional cost). The multi-start path is
    fused: one simulator instance (with its cached cost diagonal and
    evaluation workspaces) serves every restart, so extra restarts cost
    only optimizer iterations, not setup. Callers that already hold a
    simulator for the graph can pass it via ``simulator`` to skip
    rebuilding the cost diagonal.
    """
    generator = ensure_rng(rng)
    if initialization is None:
        initialization = RandomInitialization()
    if restarts < 1:
        raise DatasetError("restarts must be >= 1")
    if simulator is None:
        simulator = QAOASimulator(MaxCutProblem(graph))
    elif simulator.problem.graph is not graph:
        raise DatasetError("simulator is bound to a different graph")
    problem = simulator.problem
    optimizer = AdamOptimizer(learning_rate=learning_rate)
    result = None
    for _ in range(restarts):
        gammas0, betas0 = initialization.initial_parameters(
            graph, p, generator
        )
        attempt = optimizer.run(
            simulator, gammas0, betas0, max_iters=optimizer_iters, tol=tol
        )
        if result is None or attempt.expectation > result.expectation:
            result = attempt
    gammas, betas = canonicalize_angles(
        result.gammas, result.betas, graph.is_weighted
    )
    if not graph.is_weighted:
        gammas, betas = canonical_representative(simulator, gammas, betas)
    optimum = problem.max_cut_value()
    return QAOARecord(
        graph=graph,
        p=p,
        gammas=tuple(float(g) for g in gammas),
        betas=tuple(float(b) for b in betas),
        expectation=float(result.expectation),
        optimal_value=float(optimum),
        approximation_ratio=problem.approximation_ratio(result.expectation),
        best_cut_value=float(optimum),
        source="optimized",
    )


class _AnalyticP1Evaluator:
    """Duck-typed stand-in for ``QAOASimulator`` on the closed form.

    Exposes just ``expectation(gammas, betas)`` so
    :func:`canonical_representative` can verify symmetry images of a
    p=1 label without a dense statevector.
    """

    def __init__(self, graph: Graph):
        self.graph = graph

    def expectation(self, gammas, betas) -> float:
        return p1_expectation(self.graph, float(gammas[0]), float(betas[0]))


def label_graph_analytic(
    graph: Graph,
    p: int = 1,
    warm_start=None,
    source: str = SOURCE_ANALYTIC_P1,
) -> QAOARecord:
    """Label one graph via the exact p=1 closed form — no statevector.

    Triangle-free regular graphs get the exact closed-form optimum;
    everything else runs the deterministic grid search on the analytic
    surface (``warm_start=(gammas, betas)`` adds a candidate, e.g. the
    parameters a service actually served). For graphs small enough to
    brute-force, ``optimal_value`` is the true Max-Cut optimum; above
    :data:`MAX_EXACT_OPTIMUM_NODES` it is the total-edge-weight upper
    bound, so the recorded ratio is a lower bound on the true AR.
    """
    if p != 1:
        raise DatasetError(
            f"analytic-p1 labeling is exact only at depth 1, got p={p}"
        )
    if graph.is_weighted:
        raise DatasetError("analytic-p1 labeling requires unweighted graphs")
    if graph.num_edges == 0:
        raise DatasetError("cannot label a graph with no edges")
    extra = []
    if warm_start is not None:
        warm_gammas, warm_betas = warm_start
        extra.append((float(warm_gammas[0]), float(warm_betas[0])))
    gamma, beta, _ = p1_optimize_angles(graph, extra_candidates=extra)
    gammas, betas = canonicalize_angles(
        np.asarray([gamma]), np.asarray([beta])
    )
    gammas, betas = canonical_representative(
        _AnalyticP1Evaluator(graph), gammas, betas
    )
    expectation = p1_expectation(graph, float(gammas[0]), float(betas[0]))
    if graph.num_nodes <= MAX_EXACT_OPTIMUM_NODES:
        optimum = MaxCutProblem(graph).max_cut_value()
    else:
        optimum = float(np.sum(graph.weights))
    return QAOARecord(
        graph=graph,
        p=1,
        gammas=tuple(float(g) for g in gammas),
        betas=tuple(float(b) for b in betas),
        expectation=float(expectation),
        optimal_value=float(optimum),
        approximation_ratio=float(expectation / optimum),
        best_cut_value=float(optimum),
        source=source,
    )


def _label_task(payload) -> QAOARecord:
    """Label one graph from a self-contained payload.

    Module-level (and tuple-argument) so the process backend can pickle
    it; the per-graph seed makes the task independent of execution order,
    which is what keeps parallel output bit-identical to serial.
    """
    (
        graph,
        seed,
        p,
        optimizer_iters,
        learning_rate,
        tol,
        restarts,
        label_method,
    ) = payload
    if label_method == "analytic-p1":
        # Deterministic closed-form labeling: the seed is unused on
        # purpose, so the label is a pure function of the graph.
        return label_graph_analytic(graph, p=p)
    return label_graph(
        graph,
        p=p,
        optimizer_iters=optimizer_iters,
        learning_rate=learning_rate,
        tol=tol,
        restarts=restarts,
        rng=task_rng(seed),
    )


def config_from_manifest(manifest: dict) -> GenerationConfig:
    """Rebuild the :class:`GenerationConfig` a checkpoint was started
    with (``repro generate --resume`` needs no repeated flags)."""
    payload = dict(manifest["config"])
    known = {f for f in GenerationConfig.__dataclass_fields__}
    unknown = set(payload) - known
    if unknown:
        raise DatasetError(
            f"checkpoint config has unknown fields: {sorted(unknown)}"
        )
    if "weight_range" in payload:
        payload["weight_range"] = tuple(payload["weight_range"])
    return GenerationConfig(**payload)


def _label_wave(
    executor: ParallelExecutor,
    payloads: List[tuple],
    labels: List[str],
) -> List[QAOARecord]:
    """One executor fan-out, with failures renamed to DatasetError."""
    try:
        return executor.map(_label_task, payloads, labels=labels)
    except ExecutionError as exc:
        names = ", ".join(failure.label for failure in exc.failures[:5])
        raise DatasetError(
            f"labeling failed for {len(exc.failures)} graph(s): {names}"
        ) from exc


def generate_dataset(
    config: Optional[GenerationConfig] = None,
    rng: RngLike = None,
    executor: Optional[ParallelExecutor] = None,
    checkpoint: Optional[Union[str, "LabelingCheckpoint"]] = None,
    resume: bool = False,
    fault_injector: Optional[FaultInjector] = None,
) -> QAOADataset:
    """Full pipeline: sample graphs, label each, return the dataset.

    Labeling fans out through a :class:`~repro.runtime.ParallelExecutor`
    (built from the config's backend/workers/retry/timeout knobs unless
    one is passed explicitly). Each graph gets an independent RNG stream
    derived up front from the labeling seed, so every backend — serial
    included, retries included — produces bit-identical records for the
    same seed. Worker failures surface as
    :class:`~repro.exceptions.DatasetError` naming the offending graphs.

    With ``checkpoint`` set (a directory path or
    :class:`~repro.data.checkpoint.LabelingCheckpoint`), labeling runs
    in shard-sized waves of ``config.checkpoint_every`` graphs, each
    durably written before the next begins; ``resume=True`` requires an
    existing compatible manifest, skips every completed graph, and
    produces a dataset byte-identical to an uninterrupted run.
    """
    if config is None:
        config = GenerationConfig()
    if executor is None:
        executor = config.executor(fault_injector)
    generator = ensure_rng(rng if rng is not None else config.seed)
    graph_rng = spawn_rng(generator)
    label_rng = spawn_rng(generator)
    graphs = sample_graphs(config, graph_rng)
    seeds = derive_task_seeds(label_rng, len(graphs))
    if config.label_method == "analytic-p1":
        if config.p != 1:
            raise DatasetError(
                f"analytic-p1 labeling is exact only at depth 1, "
                f"got p={config.p}"
            )
        if config.weighted:
            raise DatasetError(
                "analytic-p1 labeling requires unweighted graphs"
            )
    payloads = [
        (
            graph,
            seed,
            config.p,
            config.optimizer_iters,
            config.learning_rate,
            config.tol,
            config.restarts,
            config.label_method,
        )
        for graph, seed in zip(graphs, seeds)
    ]
    labels = [graph.name for graph in graphs]

    if checkpoint is None:
        records = _label_wave(executor, payloads, labels)
    else:
        records = _label_checkpointed(
            config, executor, payloads, labels, checkpoint, resume
        )

    dataset = QAOADataset()
    for record in records:
        dataset.append(record)
    stats = executor.last_report
    logger.info(
        "labeled %d graphs in %.1fs (%.1f graphs/s, backend=%s, "
        "retried=%d, mean AR %.3f)",
        len(dataset),
        stats.wall_time,
        stats.tasks_per_second,
        executor.backend,
        stats.retried,
        dataset.approximation_ratios().mean() if len(dataset) else 0.0,
    )
    return dataset


def _wave_injector(
    injector: Optional[FaultInjector], indices: List[int]
) -> Optional[FaultInjector]:
    """Remap a run-global fault injector onto one wave's local indices.

    Checkpointed labeling fans out shard-sized waves, so the executor
    sees wave-local task indices. The injector's selection is defined
    over *global* indices (so a faulted task stays faulted regardless of
    how the run is sharded or resumed); translate it per wave.
    """
    if injector is None:
        return None
    fails = {
        local: injector.failing_attempts(global_index)
        for local, global_index in enumerate(indices)
        if injector.failing_attempts(global_index) > 0
    }
    if not fails:
        return None
    return FaultInjector(fail_tasks=fails, delay_s=injector.delay_s)


def _label_checkpointed(
    config: GenerationConfig,
    executor: ParallelExecutor,
    payloads: List[tuple],
    labels: List[str],
    checkpoint: Union[str, LabelingCheckpoint],
    resume: bool,
) -> List[QAOARecord]:
    """Label through a checkpoint directory, in durable shard waves."""
    ckpt = (
        checkpoint
        if isinstance(checkpoint, LabelingCheckpoint)
        else LabelingCheckpoint(checkpoint)
    )
    fingerprint = config.fingerprint()
    total = len(payloads)
    if resume:
        ckpt.validate(fingerprint, total)
    else:
        ckpt.initialize(
            fingerprint, asdict(config), total, config.checkpoint_every
        )
    done: Dict[int, QAOARecord] = ckpt.load_records()
    if resume and done:
        logger.info(
            "resuming labeling: %d/%d graphs already checkpointed",
            len(done),
            total,
        )
    pending = [i for i in range(total) if i not in done]
    by_shard: Dict[int, List[int]] = defaultdict(list)
    for index in pending:
        by_shard[index // config.checkpoint_every].append(index)
    base_injector = executor.fault_injector
    try:
        for shard_id in sorted(by_shard):
            indices = by_shard[shard_id]
            executor.fault_injector = _wave_injector(base_injector, indices)
            records = _label_wave(
                executor,
                [payloads[i] for i in indices],
                [labels[i] for i in indices],
            )
            ckpt.write_shard(
                shard_id, indices, [record_to_payload(r) for r in records]
            )
            done.update(zip(indices, records))
    finally:
        executor.fault_injector = base_injector
    return [done[i] for i in range(total)]


def paper_scale_config(seed: Optional[int] = None) -> GenerationConfig:
    """The paper's full-scale configuration (9598 graphs, 500 iterations)."""
    return GenerationConfig(
        num_graphs=9598,
        min_nodes=2,
        max_nodes=15,
        p=1,
        optimizer_iters=500,
        seed=seed,
    )
