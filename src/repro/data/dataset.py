"""Dataset container: labeled QAOA training instances.

Each record pairs a graph with the QAOA parameters found by the labeling
pipeline (paper Section 3.1), the resulting expectation, and the
approximation ratio versus brute force — "an organized list comprising
the graph structures along with important metadata like approximate
ratio and values for the best cuts".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_text, graph_to_text
from repro.utils.serialization import load_json, save_json

PathLike = Union[str, Path]


@dataclass(frozen=True)
class QAOARecord:
    """One labeled instance.

    Attributes
    ----------
    graph:
        The Max-Cut instance.
    p:
        Ansatz depth of the label.
    gammas, betas:
        Labeled (optimized or fixed-angle) parameters, length ``p``.
    expectation:
        QAOA expectation at the labeled parameters.
    optimal_value:
        Exact Max-Cut optimum.
    approximation_ratio:
        ``expectation / optimal_value``.
    best_cut_value:
        Best concrete cut associated with the run (sampled or optimal).
    source:
        Labeling provenance, e.g. ``"optimized"`` or ``"fixed_angle"``.
    """

    graph: Graph
    p: int
    gammas: tuple
    betas: tuple
    expectation: float
    optimal_value: float
    approximation_ratio: float
    best_cut_value: float = 0.0
    source: str = "optimized"

    def target_vector(self) -> np.ndarray:
        """Training target ``[gamma_1..gamma_p, beta_1..beta_p]``."""
        return np.asarray(list(self.gammas) + list(self.betas), dtype=np.float64)

    def with_label(
        self,
        gammas,
        betas,
        expectation: float,
        approximation_ratio: float,
        source: str,
    ) -> "QAOARecord":
        """Copy with a replacement label (used by fixed-angle relabeling)."""
        return replace(
            self,
            gammas=tuple(float(g) for g in gammas),
            betas=tuple(float(b) for b in betas),
            expectation=float(expectation),
            approximation_ratio=float(approximation_ratio),
            source=source,
        )


def record_to_payload(record: QAOARecord) -> dict:
    """JSON-safe payload for one record (the on-disk schema).

    Shared by :meth:`QAOADataset.save` and the labeling checkpoint
    shards, so a dataset assembled from checkpointed records serializes
    byte-identically to one written in a single uninterrupted run.
    """
    return {
        "graph": graph_to_text(record.graph),
        "p": record.p,
        "gammas": list(record.gammas),
        "betas": list(record.betas),
        "expectation": record.expectation,
        "optimal_value": record.optimal_value,
        "approximation_ratio": record.approximation_ratio,
        "best_cut_value": record.best_cut_value,
        "source": record.source,
    }


def record_from_payload(entry: dict) -> QAOARecord:
    """Inverse of :func:`record_to_payload`."""
    try:
        return QAOARecord(
            graph=graph_from_text(entry["graph"]),
            p=int(entry["p"]),
            gammas=tuple(entry["gammas"]),
            betas=tuple(entry["betas"]),
            expectation=float(entry["expectation"]),
            optimal_value=float(entry["optimal_value"]),
            approximation_ratio=float(entry["approximation_ratio"]),
            best_cut_value=float(entry.get("best_cut_value", 0.0)),
            source=str(entry.get("source", "optimized")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed record payload: {exc}") from exc


class QAOADataset:
    """An ordered collection of :class:`QAOARecord` with persistence."""

    def __init__(self, records: Optional[Sequence[QAOARecord]] = None):
        self.records: List[QAOARecord] = list(records) if records else []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QAOARecord]:
        return iter(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return QAOADataset(self.records[index])
        return self.records[index]

    def append(self, record: QAOARecord) -> None:
        """Add one record."""
        self.records.append(record)

    def extend(self, records: Sequence[QAOARecord]) -> None:
        """Add many records."""
        self.records.extend(records)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def graphs(self) -> List[Graph]:
        """All graphs in order."""
        return [record.graph for record in self.records]

    def targets(self) -> np.ndarray:
        """Stacked target vectors, shape ``(len, 2p)``."""
        if not self.records:
            return np.zeros((0, 0))
        return np.stack([record.target_vector() for record in self.records])

    def approximation_ratios(self) -> np.ndarray:
        """Approximation ratios, shape ``(len,)``."""
        return np.asarray(
            [record.approximation_ratio for record in self.records]
        )

    def depth(self) -> int:
        """The common ansatz depth (raises on mixed depths)."""
        depths = {record.p for record in self.records}
        if len(depths) != 1:
            raise DatasetError(f"mixed or missing depths: {sorted(depths)}")
        return depths.pop()

    def filter(self, predicate) -> "QAOADataset":
        """New dataset with records satisfying ``predicate``."""
        return QAOADataset([r for r in self.records if predicate(r)])

    # ------------------------------------------------------------------
    # Persistence (JSON with embedded graph text format)
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the dataset to a JSON file."""
        save_json([record_to_payload(record) for record in self.records], path)

    @classmethod
    def load(cls, path: PathLike) -> "QAOADataset":
        """Read a dataset written by :meth:`save`."""
        payload = load_json(path)
        if not isinstance(payload, list):
            raise DatasetError(f"{path}: expected a JSON list")
        return cls([record_from_payload(entry) for entry in payload])

    def summary(self) -> dict:
        """Aggregate statistics used in logs and EXPERIMENTS.md."""
        ratios = self.approximation_ratios()
        sizes = [record.graph.num_nodes for record in self.records]
        return {
            "count": len(self.records),
            "mean_ar": float(ratios.mean()) if len(ratios) else 0.0,
            "min_ar": float(ratios.min()) if len(ratios) else 0.0,
            "max_ar": float(ratios.max()) if len(ratios) else 0.0,
            "min_nodes": min(sizes) if sizes else 0,
            "max_nodes": max(sizes) if sizes else 0,
        }
