"""Data pipeline: generation, labeling, pruning, splits, statistics."""

from repro.data.dataset import (
    QAOADataset,
    QAOARecord,
    record_from_payload,
    record_to_payload,
)
from repro.data.compiled import CompiledDataset
from repro.data.checkpoint import LabelingCheckpoint
from repro.data.generation import (
    GenerationConfig,
    canonicalize_angles,
    config_from_manifest,
    generate_dataset,
    label_graph,
    paper_scale_config,
    sample_graphs,
)
from repro.data.pruning import (
    PruningReport,
    RelabelReport,
    fixed_angle_relabel,
    selective_data_pruning,
)
from repro.data.splits import kfold_indices, random_split, stratified_split
from repro.data.augmentation import augment_by_permutation, permute_record
from repro.data.stats import (
    IntervalSummary,
    ar_by_degree,
    ar_by_size,
    degree_frequency,
    low_quality_fraction,
    size_frequency,
)

__all__ = [
    "QAOADataset",
    "QAOARecord",
    "record_from_payload",
    "record_to_payload",
    "CompiledDataset",
    "LabelingCheckpoint",
    "GenerationConfig",
    "canonicalize_angles",
    "config_from_manifest",
    "generate_dataset",
    "label_graph",
    "paper_scale_config",
    "sample_graphs",
    "PruningReport",
    "RelabelReport",
    "fixed_angle_relabel",
    "selective_data_pruning",
    "kfold_indices",
    "random_split",
    "stratified_split",
    "augment_by_permutation",
    "permute_record",
    "IntervalSummary",
    "ar_by_degree",
    "ar_by_size",
    "degree_frequency",
    "low_quality_fraction",
    "size_frequency",
]
