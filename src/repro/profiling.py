"""Lightweight per-phase wall-time profiling for hot loops.

A :class:`PhaseProfiler` accumulates wall time into named phases
through a context manager, then renders a machine-readable report and a
one-screen table. :class:`TrainingProfiler` (batch assembly / forward /
backward / optimizer step / …) and :class:`EvaluationProfiler`
(bucketing / simulate / aggregate) are thin subclasses that only fix
the report title. The :data:`NULL_PROFILER` singleton implements the
same interface as no-ops, so hot loops pay a single attribute lookup
when profiling is off.

Beyond wall time, phases can attribute *allocation and kernel
accounting*: subsystems register a counter source via
:func:`register_counter_source` (the lazy tensor engine in
:mod:`repro.nn.realize` registers kernel / op / realize counts and
temporary-byte watermarks), and every ``phase()`` block collects the
per-source deltas. Counter keys prefixed ``peak_`` aggregate by
maximum across calls (watermarks); all other keys sum (flows).

Example::

    profiler = TrainingProfiler()
    with profiler.phase("forward"):
        loss = model(batch)
    print(profiler.format_report())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

#: Schema version of the report dict (bumped on breaking changes).
PROFILE_SCHEMA_VERSION = 1

#: Registered counter sources; each exposes ``begin() -> token`` and
#: ``end(token) -> {counter: value}`` returning deltas for the span.
_COUNTER_SOURCES: List[object] = []


def register_counter_source(source) -> None:
    """Attach a counter source sampled around every profiled phase."""
    _COUNTER_SOURCES.append(source)


class PhaseProfiler:
    """Accumulates wall time per named phase.

    Parameters
    ----------
    clock:
        Monotonic time source returning seconds; injectable for tests.
    title:
        Heading used by :meth:`format_report`.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        title: str = "profile",
    ):
        self._clock = clock
        self._title = title
        self._start = clock()
        # Insertion-ordered: phases report in first-use order.
        self._totals: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, Dict[str, float]] = {}

    @contextmanager
    def phase(self, name: str):
        """Time the enclosed block under ``name`` (re-entrant safe)."""
        tokens = [(source, source.begin()) for source in _COUNTER_SOURCES]
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1
            for source, token in tokens:
                self._merge_counters(name, source.end(token))

    def _merge_counters(self, name: str, deltas: Dict[str, float]) -> None:
        if not deltas:
            return
        bucket = self._counters.setdefault(name, {})
        for key, value in deltas.items():
            if key.startswith("peak_"):
                bucket[key] = max(bucket.get(key, 0), value)
            else:
                bucket[key] = bucket.get(key, 0) + value

    def add(self, name: str, seconds: float) -> None:
        """Record already-measured time under ``name``."""
        self._totals[name] = self._totals.get(name, 0.0) + float(seconds)
        self._calls[name] = self._calls.get(name, 0) + 1

    def report(self) -> dict:
        """Machine-readable summary.

        Returns ``{"schema", "total_s", "accounted_s", "phases": {name:
        {"total_s", "calls", "mean_s", "share"}}}`` where ``share`` is
        the fraction of *accounted* time (phases can nest, so shares
        are relative to the phase sum, not wall time).
        """
        accounted = sum(self._totals.values())
        phases = {}
        for name, total in self._totals.items():
            calls = self._calls[name]
            phases[name] = {
                "total_s": total,
                "calls": calls,
                "mean_s": total / calls if calls else 0.0,
                "share": total / accounted if accounted > 0 else 0.0,
            }
            if name in self._counters:
                phases[name]["counters"] = dict(self._counters[name])
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "total_s": self._clock() - self._start,
            "accounted_s": accounted,
            "phases": phases,
        }

    def format_report(self) -> str:
        """One-screen human-readable table of the report."""
        report = self.report()
        lines = [
            f"{self._title} ({report['total_s']:.3f}s wall, "
            f"{report['accounted_s']:.3f}s accounted)",
            f"  {'phase':<16} {'total':>10} {'calls':>8} "
            f"{'mean':>10} {'share':>7}",
        ]
        for name, stats in report["phases"].items():
            lines.append(
                f"  {name:<16} {stats['total_s'] * 1e3:>8.1f}ms "
                f"{stats['calls']:>8} {stats['mean_s'] * 1e6:>8.1f}us "
                f"{stats['share'] * 100:>6.1f}%"
            )
            counters = stats.get("counters")
            if counters:
                rendered = " ".join(
                    f"{key}={_format_counter(key, value)}"
                    for key, value in counters.items()
                )
                lines.append(f"  {'':<16} {rendered}")
        return "\n".join(lines)


def _format_counter(key: str, value) -> str:
    """Human-readable counter value (bytes get MB suffixes)."""
    if key.endswith("bytes"):
        return f"{value / 1e6:.1f}MB" if value >= 1e6 else f"{value}B"
    return str(value)


class TrainingProfiler(PhaseProfiler):
    """Per-phase profiler for the GNN training loop."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock, title="training profile")


class EvaluationProfiler(PhaseProfiler):
    """Per-phase profiler for the warm-start evaluation sweep."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock, title="evaluation profile")


class _NullProfiler:
    """No-op stand-in with the :class:`PhaseProfiler` interface."""

    enabled = False
    __slots__ = ()

    @contextmanager
    def phase(self, name: str):
        yield

    def add(self, name: str, seconds: float) -> None:
        pass

    def report(self) -> Optional[dict]:
        return None

    def format_report(self) -> str:
        return "profiling disabled"


#: Shared no-op profiler used when profiling is off.
NULL_PROFILER = _NullProfiler()
