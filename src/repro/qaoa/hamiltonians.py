"""Diagonal cost Hamiltonians beyond Max-Cut: Ising and QUBO.

Related work applies the same warm-start machinery "to other random
rounding schemes and optimization problems" (Egger et al.). The QAOA
simulator only needs a diagonal cost, so this module generalizes the
problem layer: Ising models ``C(z) = sum_i h_i s_i + sum_ij J_ij s_i
s_j`` (spins ``s = 1 - 2 z``), QUBO ``C(x) = x^T Q x``, and lossless
conversions between them and Max-Cut.

All objectives are MAXIMIZED, matching the Max-Cut convention used
throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutSolution


@dataclass(frozen=True)
class IsingModel:
    """An Ising cost on n spins (maximization convention).

    ``C(s) = sum_i h[i] s_i + sum_{i<j} J[(i, j)] s_i s_j + offset``
    with spins ``s_i in {+1, -1}``; basis state ``z`` maps to
    ``s_i = 1 - 2 z_i`` (bit 0 -> spin +1).
    """

    num_spins: int
    h: Tuple[float, ...]
    couplings: Tuple[Tuple[int, int, float], ...]
    offset: float = 0.0

    def __post_init__(self):
        if self.num_spins < 1:
            raise GraphError("need at least one spin")
        if len(self.h) != self.num_spins:
            raise GraphError(
                f"{len(self.h)} fields for {self.num_spins} spins"
            )
        seen = set()
        for i, j, _ in self.couplings:
            if not (0 <= i < self.num_spins and 0 <= j < self.num_spins):
                raise GraphError(f"coupling ({i},{j}) out of range")
            if i == j:
                raise GraphError(f"self-coupling on spin {i}")
            key = (min(i, j), max(i, j))
            if key in seen:
                raise GraphError(f"duplicate coupling {key}")
            seen.add(key)

    @classmethod
    def from_arrays(
        cls,
        h: np.ndarray,
        J: np.ndarray,
        offset: float = 0.0,
    ) -> "IsingModel":
        """Build from a field vector and a symmetric coupling matrix."""
        h = np.asarray(h, dtype=np.float64)
        J = np.asarray(J, dtype=np.float64)
        n = h.shape[0]
        if J.shape != (n, n):
            raise GraphError(f"J shape {J.shape} != ({n}, {n})")
        if not np.allclose(J, J.T):
            raise GraphError("J must be symmetric")
        couplings = tuple(
            (i, j, float(J[i, j]))
            for i in range(n)
            for j in range(i + 1, n)
            if J[i, j] != 0.0
        )
        return cls(n, tuple(float(x) for x in h), couplings, float(offset))

    def diagonal(self) -> np.ndarray:
        """Cost of every basis state, shape (2^n,) — feeds the simulator."""
        n = self.num_spins
        if n > 26:
            raise GraphError(f"diagonal infeasible for n={n}")
        states = np.arange(1 << n, dtype=np.int64)
        spins = 1.0 - 2.0 * ((states[:, None] >> np.arange(n)) & 1)
        values = spins @ np.asarray(self.h) + self.offset
        for i, j, weight in self.couplings:
            values = values + weight * spins[:, i] * spins[:, j]
        return values

    def value(self, assignment: int) -> float:
        """Cost of one basis state."""
        if not 0 <= assignment < (1 << self.num_spins):
            raise GraphError("assignment out of range")
        bits = (assignment >> np.arange(self.num_spins)) & 1
        spins = 1.0 - 2.0 * bits
        total = float(np.dot(spins, self.h)) + self.offset
        for i, j, weight in self.couplings:
            total += weight * spins[i] * spins[j]
        return total

    def optimum(self) -> MaxCutSolution:
        """Exact maximum by enumeration."""
        diagonal = self.diagonal()
        best = int(diagonal.argmax())
        return MaxCutSolution(
            assignment=best, value=float(diagonal[best]), optimal=True
        )


@dataclass(frozen=True)
class QUBO:
    """A QUBO cost ``C(x) = x^T Q x`` over binary x (maximization)."""

    Q: Tuple[Tuple[float, ...], ...]

    def __post_init__(self):
        n = len(self.Q)
        for row in self.Q:
            if len(row) != n:
                raise GraphError("Q must be square")

    @classmethod
    def from_matrix(cls, Q: np.ndarray) -> "QUBO":
        """Build from any square matrix (symmetrized internally)."""
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise GraphError("Q must be square")
        symmetric = (Q + Q.T) / 2.0
        return cls(tuple(tuple(float(v) for v in row) for row in symmetric))

    @property
    def num_variables(self) -> int:
        """Number of binary variables."""
        return len(self.Q)

    def matrix(self) -> np.ndarray:
        """Q as a numpy array."""
        return np.asarray(self.Q, dtype=np.float64)

    def value(self, assignment: int) -> float:
        """Objective of one bitstring."""
        n = self.num_variables
        if not 0 <= assignment < (1 << n):
            raise GraphError("assignment out of range")
        x = ((assignment >> np.arange(n)) & 1).astype(np.float64)
        return float(x @ self.matrix() @ x)

    def diagonal(self) -> np.ndarray:
        """Objective of every bitstring, shape (2^n,)."""
        n = self.num_variables
        if n > 26:
            raise GraphError(f"diagonal infeasible for n={n}")
        states = np.arange(1 << n, dtype=np.int64)
        bits = ((states[:, None] >> np.arange(n)) & 1).astype(np.float64)
        Q = self.matrix()
        return np.einsum("si,ij,sj->s", bits, Q, bits)

    def to_ising(self) -> IsingModel:
        """Exact conversion: substitute ``x_i = (1 - s_i) / 2``.

        ``x_i x_j = (1 - s_i - s_j + s_i s_j) / 4`` and
        ``x_i^2 = x_i = (1 - s_i) / 2``.
        """
        Q = self.matrix()
        n = self.num_variables
        h = np.zeros(n)
        J = np.zeros((n, n))
        offset = 0.0
        for i in range(n):
            offset += Q[i, i] / 2.0
            h[i] -= Q[i, i] / 2.0
            for j in range(i + 1, n):
                q = Q[i, j] + Q[j, i]
                offset += q / 4.0
                h[i] -= q / 4.0
                h[j] -= q / 4.0
                J[i, j] += q / 4.0
                J[j, i] += q / 4.0
        return IsingModel.from_arrays(h, J, offset)

    def optimum(self) -> MaxCutSolution:
        """Exact maximum by enumeration."""
        diagonal = self.diagonal()
        best = int(diagonal.argmax())
        return MaxCutSolution(
            assignment=best, value=float(diagonal[best]), optimal=True
        )


def maxcut_to_ising(graph: Graph) -> IsingModel:
    """Max-Cut as an Ising maximization.

    ``cut(z) = sum_(u,v) w (1 - s_u s_v) / 2`` — fields are zero,
    couplings ``-w/2``, offset ``total_weight / 2``.
    """
    couplings = tuple(
        (u, v, -w / 2.0) for (u, v), w in zip(graph.edges, graph.weights)
    )
    return IsingModel(
        graph.num_nodes,
        tuple(0.0 for _ in range(graph.num_nodes)),
        couplings,
        graph.total_weight / 2.0,
    )


def ising_to_maxcut(model: IsingModel) -> Tuple[Graph, float, float]:
    """Zero-field Ising as weighted Max-Cut: returns (graph, scale, shift).

    For a zero-field model, ``C(s) = shift + scale * cut`` with
    ``scale = -2`` per unit coupling... concretely:
    ``sum J_ij s_i s_j = sum J_ij (1 - 2 [edge cut])``, so
    ``C = (sum J_ij + offset) - 2 * sum_over_cut_edges J_ij``.
    The returned graph carries weights ``-2 J_ij`` so that
    ``C(z) = shift + cut_value(graph, z)`` exactly (weights may be
    negative). Raises for models with fields.
    """
    if any(value != 0.0 for value in model.h):
        raise GraphError("only zero-field Ising maps to Max-Cut")
    edges = tuple((i, j) for i, j, _ in model.couplings)
    weights = tuple(-2.0 * w for _, _, w in model.couplings)
    graph = Graph(model.num_spins, edges, weights)
    shift = model.offset + sum(w for _, _, w in model.couplings)
    return graph, 1.0, shift


class DiagonalProblem:
    """Adapter exposing any diagonal cost through the MaxCutProblem API.

    Lets :class:`repro.qaoa.simulator.QAOASimulator` run QAOA on Ising
    and QUBO instances unchanged: the simulator only touches
    ``cost_diagonal``, ``max_cut_value`` and ``approximation_ratio``.
    """

    def __init__(self, diagonal: np.ndarray, num_qubits: Optional[int] = None):
        diagonal = np.asarray(diagonal, dtype=np.float64)
        size = diagonal.shape[0]
        if num_qubits is None:
            num_qubits = int(np.log2(size))
        if (1 << num_qubits) != size:
            raise GraphError(f"diagonal length {size} is not a power of two")
        self.num_nodes = num_qubits
        self._diagonal = diagonal

    @classmethod
    def from_ising(cls, model: IsingModel) -> "DiagonalProblem":
        """Wrap an Ising model."""
        return cls(model.diagonal(), model.num_spins)

    @classmethod
    def from_qubo(cls, qubo: QUBO) -> "DiagonalProblem":
        """Wrap a QUBO."""
        return cls(qubo.diagonal(), qubo.num_variables)

    def cost_diagonal(self) -> np.ndarray:
        """The diagonal (simulator hook)."""
        return self._diagonal

    def max_cut_value(self) -> float:
        """Exact maximum of the diagonal."""
        return float(self._diagonal.max())

    def optimum(self) -> MaxCutSolution:
        """Exact argmax of the diagonal."""
        best = int(self._diagonal.argmax())
        return MaxCutSolution(
            assignment=best, value=float(self._diagonal[best]), optimal=True
        )

    def approximation_ratio(self, value: float) -> float:
        """Ratio against the best diagonal entry.

        Normalized by the diagonal's span so it stays meaningful when
        entries are negative: ``(value - min) / (max - min)``.
        """
        lo = float(self._diagonal.min())
        hi = float(self._diagonal.max())
        if hi <= lo:
            return 1.0
        return (float(value) - lo) / (hi - lo)
