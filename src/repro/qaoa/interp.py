"""Depth-extension heuristics: INTERP and FOURIER (Zhou et al. 2020).

Once good depth-p parameters are known (from a GNN, fixed angles or a
previous optimization), these heuristics produce strong depth-(p+1)
starting points — the standard way QAOA practitioners climb in depth
without re-solving from scratch. They compose naturally with the
paper's warm start: predict p=1 angles with the GNN, then extend.

INTERP (Zhou et al., PRX 10, 021067, Eq. B1): the new schedule linearly
interpolates the old one,

    theta'_k = ((k - 1) / p) * theta_{k-1} + ((p - k + 1) / p) * theta_k

for k = 1..p+1 with theta_0 = theta_{p+1} = 0.

FOURIER: parameterize the schedule by its discrete sine (gamma) /
cosine (beta) coefficients; extending depth keeps the coefficients and
re-renders the schedule, preserving its smooth shape.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import OptimizationError


def interp_extend(
    gammas: np.ndarray, betas: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Extend a depth-p schedule to depth p+1 by linear interpolation."""
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if gammas.shape != betas.shape or gammas.ndim != 1 or len(gammas) == 0:
        raise OptimizationError("need equal-length 1-D schedules")
    return _interp_one(gammas), _interp_one(betas)


def _interp_one(theta: np.ndarray) -> np.ndarray:
    p = len(theta)
    padded = np.concatenate([[0.0], theta, [0.0]])
    extended = np.zeros(p + 1)
    for k in range(1, p + 2):
        extended[k - 1] = (
            (k - 1) / p * padded[k - 1] + (p - k + 1) / p * padded[k]
        )
    return extended


def interp_to_depth(
    gammas: np.ndarray, betas: np.ndarray, target_p: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Repeatedly INTERP-extend until the schedule has ``target_p`` layers."""
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if target_p < len(gammas):
        raise OptimizationError(
            f"cannot shrink schedule from {len(gammas)} to {target_p}"
        )
    while len(gammas) < target_p:
        gammas, betas = interp_extend(gammas, betas)
    return gammas, betas


def fourier_coefficients(
    gammas: np.ndarray, betas: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Schedule -> (u, v) Fourier coefficients (Zhou et al. Eq. 8).

    ``gamma_k = sum_m u_m sin((m - 1/2)(k - 1/2) pi / p)`` and
    ``beta_k = sum_m v_m cos((m - 1/2)(k - 1/2) pi / p)``; with q = p
    coefficients the transform is exactly invertible.
    """
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if gammas.shape != betas.shape or len(gammas) == 0:
        raise OptimizationError("need equal-length 1-D schedules")
    p = len(gammas)
    sine = _sine_basis(p, p)
    cosine = _cosine_basis(p, p)
    u = np.linalg.solve(sine, gammas)
    v = np.linalg.solve(cosine, betas)
    return u, v


def fourier_schedule(
    u: np.ndarray, v: np.ndarray, p: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(u, v) coefficients -> a depth-p schedule."""
    u = np.atleast_1d(np.asarray(u, dtype=np.float64))
    v = np.atleast_1d(np.asarray(v, dtype=np.float64))
    if u.shape != v.shape or len(u) == 0:
        raise OptimizationError("need equal-length coefficient vectors")
    if p < 1:
        raise OptimizationError("depth must be >= 1")
    gammas = _sine_basis(p, len(u)) @ u
    betas = _cosine_basis(p, len(v)) @ v
    return gammas, betas


def fourier_extend(
    gammas: np.ndarray, betas: np.ndarray, target_p: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Extend a schedule to ``target_p`` layers via its Fourier shape."""
    u, v = fourier_coefficients(gammas, betas)
    return fourier_schedule(u, v, target_p)


def _sine_basis(p: int, q: int) -> np.ndarray:
    k = np.arange(1, p + 1)[:, None] - 0.5
    m = np.arange(1, q + 1)[None, :] - 0.5
    return np.sin(m * k * np.pi / p)


def _cosine_basis(p: int, q: int) -> np.ndarray:
    k = np.arange(1, p + 1)[:, None] - 0.5
    m = np.arange(1, q + 1)[None, :] - 0.5
    return np.cos(m * k * np.pi / p)
