"""End-to-end QAOA execution: initialize, optimize, grade.

:class:`QAOARunner` packages the loop the paper runs per graph — pick
initial angles, optimize the expectation for a bounded number of
iterations, and report the achieved approximation ratio against brute
force — together with the bookkeeping (histories, iteration counts)
that the evaluation and figures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.maxcut.cache import ProblemCache
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.initialization import InitializationStrategy, RandomInitialization
from repro.qaoa.optimizers import AdamOptimizer, OptimizationResult
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class QAOAOutcome:
    """Everything a single QAOA run produces.

    Attributes
    ----------
    graph_name:
        Name of the instance (empty if unnamed).
    p:
        Ansatz depth.
    initial_gammas, initial_betas:
        Parameters before optimization.
    gammas, betas:
        Parameters after optimization.
    expectation:
        Final expected cut value.
    optimal_value:
        Exact Max-Cut optimum (brute force).
    approximation_ratio:
        ``expectation / optimal_value``.
    initial_approximation_ratio:
        Ratio at the initial parameters (before optimization).
    best_sampled_cut:
        Best cut value among sampled bitstrings (if sampling enabled).
    history:
        Expectation per optimizer iteration.
    iterations:
        Optimizer iterations executed.
    """

    graph_name: str
    p: int
    initial_gammas: np.ndarray
    initial_betas: np.ndarray
    gammas: np.ndarray
    betas: np.ndarray
    expectation: float
    optimal_value: float
    approximation_ratio: float
    initial_approximation_ratio: float
    best_sampled_cut: Optional[float] = None
    history: List[float] = field(default_factory=list)
    iterations: int = 0


class QAOARunner:
    """Configurable QAOA pipeline for one or many graphs.

    Parameters
    ----------
    p:
        Ansatz depth (paper's dataset uses p=1 labels by default; the
        ablations sweep p).
    optimizer:
        Any object exposing ``run(simulator, gammas, betas, max_iters,
        tol)``; defaults to :class:`AdamOptimizer`.
    max_iters:
        Optimizer iteration budget (paper: 500 for labeling).
    shots:
        If > 0, additionally sample the final state and record the best
        sampled cut.
    problem_cache:
        Optional :class:`~repro.maxcut.cache.ProblemCache`; when set,
        structurally identical graphs share one
        :class:`MaxCutProblem` (cost diagonal and brute-force optimum
        computed once) across runs.
    """

    def __init__(
        self,
        p: int = 1,
        optimizer=None,
        max_iters: int = 500,
        tol: float = 0.0,
        shots: int = 0,
        problem_cache: Optional[ProblemCache] = None,
    ):
        self.p = int(p)
        self.optimizer = optimizer if optimizer is not None else AdamOptimizer()
        self.max_iters = int(max_iters)
        self.tol = float(tol)
        self.shots = int(shots)
        self.problem_cache = problem_cache

    def simulator_for(self, graph: Graph) -> QAOASimulator:
        """A simulator bound to ``graph``'s (possibly cached) problem.

        Callers running the same graph repeatedly — both arms of a
        warm-start comparison, random restarts — should build this once
        and pass it to every :meth:`run` call so the cost diagonal,
        brute-force optimum, and simulator workspaces are shared.
        """
        if self.problem_cache is not None:
            problem = self.problem_cache.get(graph)
        else:
            problem = MaxCutProblem(graph)
        return QAOASimulator(problem)

    def run(
        self,
        graph: Graph,
        initialization: Optional[InitializationStrategy] = None,
        rng: RngLike = None,
        simulator: Optional[QAOASimulator] = None,
    ) -> QAOAOutcome:
        """Run the full pipeline on one graph.

        ``simulator`` (from :meth:`simulator_for`) lets repeat runs on
        one graph reuse the problem's cached diagonal/optimum and the
        simulator's workspaces instead of rebuilding them per run.
        """
        generator = ensure_rng(rng)
        if initialization is None:
            initialization = RandomInitialization()
        if simulator is None:
            simulator = self.simulator_for(graph)
        problem = simulator.problem
        gammas0, betas0 = initialization.initial_parameters(
            graph, self.p, generator
        )
        initial_ratio = problem.approximation_ratio(
            simulator.expectation(gammas0, betas0)
        )
        result: OptimizationResult = self.optimizer.run(
            simulator, gammas0, betas0, max_iters=self.max_iters, tol=self.tol
        )
        optimum = problem.max_cut_value()
        best_sampled = None
        if self.shots > 0:
            _, best_sampled = simulator.sample_cut(
                result.gammas, result.betas, shots=self.shots, rng=generator
            )
        return QAOAOutcome(
            graph_name=graph.name,
            p=self.p,
            initial_gammas=np.asarray(gammas0),
            initial_betas=np.asarray(betas0),
            gammas=result.gammas,
            betas=result.betas,
            expectation=result.expectation,
            optimal_value=optimum,
            approximation_ratio=problem.approximation_ratio(result.expectation),
            initial_approximation_ratio=initial_ratio,
            best_sampled_cut=best_sampled,
            history=result.history,
            iterations=result.iterations,
        )

    def run_many(
        self,
        graphs,
        initialization: Optional[InitializationStrategy] = None,
        rng: RngLike = None,
    ) -> List[QAOAOutcome]:
        """Run the pipeline over a list of graphs with one RNG stream.

        Repeated graph objects (e.g. restart sweeps) share one simulator
        — the problem's diagonal/optimum and the evaluation workspaces
        are built once per distinct graph, not once per run.
        """
        generator = ensure_rng(rng)
        simulators = {}
        outcomes = []
        for graph in graphs:
            simulator = simulators.get(id(graph))
            if simulator is None:
                simulator = self.simulator_for(graph)
                simulators[id(graph)] = simulator
            outcomes.append(
                self.run(graph, initialization, generator, simulator=simulator)
            )
        return outcomes
