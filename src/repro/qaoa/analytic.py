"""Closed-form p=1 QAOA Max-Cut expectation (test oracle).

Wang, Hadfield, Jiang & Rieffel (PRA 97, 022304, 2018) give the exact
depth-1 expectation of each edge operator ``C_uv = (1 - Z_u Z_v)/2`` for
unweighted graphs::

    <C_uv> = 1/2
           + (sin(4 beta) sin(gamma) / 4) (cos^d(gamma) + cos^e(gamma))
           - (sin^2(2 beta) / 4) cos^(d+e-2f)(gamma) (1 - cos^f(2 gamma))

where ``d = deg(u) - 1``, ``e = deg(v) - 1`` and ``f`` is the number of
triangles through the edge (common neighbors of u and v). Summing over
edges gives the total expectation — an independent oracle used to verify
the statevector simulator, and the source of the p=1 fixed-angle closed
form for regular graphs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def p1_edge_expectation(
    gamma: float, beta: float, deg_u: int, deg_v: int, triangles: int
) -> float:
    """Depth-1 expectation of one edge's cut operator (unweighted)."""
    d = deg_u - 1
    e = deg_v - 1
    f = triangles
    if d < 0 or e < 0 or f < 0:
        raise GraphError("degrees must be >= 1 and triangles >= 0")
    term_single = (
        0.25
        * np.sin(4.0 * beta)
        * np.sin(gamma)
        * (np.cos(gamma) ** d + np.cos(gamma) ** e)
    )
    term_pair = (
        0.25
        * np.sin(2.0 * beta) ** 2
        * np.cos(gamma) ** (d + e - 2 * f)
        * (1.0 - np.cos(2.0 * gamma) ** f)
    )
    return float(0.5 + term_single - term_pair)


def p1_expectation(graph: Graph, gamma: float, beta: float) -> float:
    """Exact depth-1 QAOA expectation ``<C>`` for an unweighted graph."""
    if graph.is_weighted:
        raise GraphError("closed form only applies to unweighted graphs")
    degrees = graph.degrees()
    adjacency = (graph.adjacency_matrix() > 0).astype(np.int64)
    total = 0.0
    for u, v in graph.edges:
        triangles = int((adjacency[u] & adjacency[v]).sum())
        total += p1_edge_expectation(
            gamma, beta, int(degrees[u]), int(degrees[v]), triangles
        )
    return total


def p1_edge_terms(graph: Graph):
    """Per-edge ``(d, e, f)`` exponents of the closed form, vectorized.

    ``d = deg(u) - 1``, ``e = deg(v) - 1``, ``f`` = triangles through
    the edge. Computed once per graph so the batch evaluator can score
    thousands of angle pairs in O(edges) numpy work each.
    """
    if graph.is_weighted:
        raise GraphError("closed form only applies to unweighted graphs")
    degrees = graph.degrees()
    adjacency = (graph.adjacency_matrix() > 0).astype(np.int64)
    d = np.empty(graph.num_edges, dtype=np.int64)
    e = np.empty(graph.num_edges, dtype=np.int64)
    f = np.empty(graph.num_edges, dtype=np.int64)
    for index, (u, v) in enumerate(graph.edges):
        d[index] = degrees[u] - 1
        e[index] = degrees[v] - 1
        f[index] = int((adjacency[u] & adjacency[v]).sum())
    return d, e, f


def p1_expectation_batch(
    graph: Graph, gammas: np.ndarray, betas: np.ndarray
) -> np.ndarray:
    """Exact depth-1 ``<C>`` for many ``(gamma, beta)`` pairs at once.

    ``gammas`` and ``betas`` are aligned 1-D arrays; returns one total
    expectation per pair. Matches :func:`p1_expectation` to float
    round-off, at O(pairs * edges) instead of a Python loop per pair —
    this is what makes labeling 200-node graphs by grid search cheap.
    """
    gammas = np.asarray(gammas, dtype=np.float64).ravel()
    betas = np.asarray(betas, dtype=np.float64).ravel()
    if gammas.shape != betas.shape:
        raise GraphError("gammas and betas must be aligned")
    d, e, f = p1_edge_terms(graph)
    cos_g = np.cos(gammas)[:, None]
    term_single = (
        0.25
        * (np.sin(4.0 * betas) * np.sin(gammas))[:, None]
        * (cos_g ** d[None, :] + cos_g ** e[None, :])
    )
    term_pair = (
        0.25
        * (np.sin(2.0 * betas) ** 2)[:, None]
        * cos_g ** (d + e - 2 * f)[None, :]
        * (1.0 - np.cos(2.0 * gammas)[:, None] ** f[None, :])
    )
    return np.sum(0.5 + term_single - term_pair, axis=1)


#: Coarse-to-fine grid search geometry for :func:`p1_optimize_angles`.
_GRID_GAMMA = 48
_GRID_BETA = 24
_REFINEMENTS = 4
_ZOOM = 4.0


def p1_optimize_angles(graph: Graph, extra_candidates=()) -> tuple:
    """Deterministic p=1 angle optimization on the closed-form surface.

    Triangle-free regular graphs return the exact closed-form optimum.
    Everything else runs a coarse grid over the canonical fundamental
    domain (``gamma in [0, 2 pi)``, ``beta in [0, pi/2)``) followed by
    zoomed refinement rounds — pure function of the graph (and the
    optional warm-start ``extra_candidates``), no randomness, no
    statevector, O(edges) per probe.

    Returns ``(gamma, beta, expectation)``.
    """
    degree = graph.regular_degree()
    _, _, triangles = p1_edge_terms(graph)
    if degree is not None and not triangles.any():
        gamma, beta = p1_optimal_angles_regular(degree)
        return gamma, beta, p1_expectation(graph, gamma, beta)

    gamma_span = 2.0 * np.pi
    beta_span = np.pi / 2.0
    gamma_grid = np.linspace(0.0, gamma_span, _GRID_GAMMA, endpoint=False)
    beta_grid = np.linspace(0.0, beta_span, _GRID_BETA, endpoint=False)
    gg, bb = np.meshgrid(gamma_grid, beta_grid, indexing="ij")
    gammas = gg.ravel()
    betas = bb.ravel()
    for g, b in extra_candidates:
        gammas = np.append(gammas, float(g))
        betas = np.append(betas, float(b))
    values = p1_expectation_batch(graph, gammas, betas)
    best = int(np.argmax(values))
    best_gamma, best_beta, best_value = gammas[best], betas[best], values[best]

    gamma_width = gamma_span / _GRID_GAMMA
    beta_width = beta_span / _GRID_BETA
    for _ in range(_REFINEMENTS):
        gamma_grid = np.linspace(
            best_gamma - gamma_width, best_gamma + gamma_width, _GRID_GAMMA
        )
        beta_grid = np.linspace(
            best_beta - beta_width, best_beta + beta_width, _GRID_BETA
        )
        gg, bb = np.meshgrid(gamma_grid, beta_grid, indexing="ij")
        values = p1_expectation_batch(graph, gg.ravel(), bb.ravel())
        best = int(np.argmax(values))
        if values[best] > best_value:
            best_gamma = gg.ravel()[best]
            best_beta = bb.ravel()[best]
            best_value = values[best]
        gamma_width /= _ZOOM
        beta_width /= _ZOOM
    return float(best_gamma), float(best_beta), float(best_value)


def p1_regular_triangle_free_expectation(
    gamma: float, beta: float, degree: int, num_edges: int
) -> float:
    """Depth-1 ``<C>`` for a triangle-free d-regular graph (f = 0)."""
    per_edge = p1_edge_expectation(gamma, beta, degree, degree, 0)
    return per_edge * num_edges


def p1_optimal_angles_regular(degree: int) -> tuple:
    """Optimal (gamma, beta) for p=1 on triangle-free d-regular graphs.

    With ``f = 0`` the edge expectation reduces to
    ``1/2 + sin(4 beta) sin(gamma) cos^(d-1)(gamma) / 2``; the maximum
    sits at ``beta = pi/8`` and ``gamma = arctan(1 / sqrt(d - 1))``
    (``gamma = pi/2`` for d = 1, which cuts an isolated edge exactly).
    These are the degree-d entries of the fixed-angle conjecture at p=1.
    """
    if degree < 1:
        raise GraphError(f"degree must be >= 1, got {degree}")
    beta = np.pi / 8.0
    if degree == 1:
        gamma = np.pi / 2.0
    else:
        gamma = float(np.arctan(1.0 / np.sqrt(degree - 1.0)))
    return gamma, beta
