"""Closed-form p=1 QAOA Max-Cut expectation (test oracle).

Wang, Hadfield, Jiang & Rieffel (PRA 97, 022304, 2018) give the exact
depth-1 expectation of each edge operator ``C_uv = (1 - Z_u Z_v)/2`` for
unweighted graphs::

    <C_uv> = 1/2
           + (sin(4 beta) sin(gamma) / 4) (cos^d(gamma) + cos^e(gamma))
           - (sin^2(2 beta) / 4) cos^(d+e-2f)(gamma) (1 - cos^f(2 gamma))

where ``d = deg(u) - 1``, ``e = deg(v) - 1`` and ``f`` is the number of
triangles through the edge (common neighbors of u and v). Summing over
edges gives the total expectation — an independent oracle used to verify
the statevector simulator, and the source of the p=1 fixed-angle closed
form for regular graphs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def p1_edge_expectation(
    gamma: float, beta: float, deg_u: int, deg_v: int, triangles: int
) -> float:
    """Depth-1 expectation of one edge's cut operator (unweighted)."""
    d = deg_u - 1
    e = deg_v - 1
    f = triangles
    if d < 0 or e < 0 or f < 0:
        raise GraphError("degrees must be >= 1 and triangles >= 0")
    term_single = (
        0.25
        * np.sin(4.0 * beta)
        * np.sin(gamma)
        * (np.cos(gamma) ** d + np.cos(gamma) ** e)
    )
    term_pair = (
        0.25
        * np.sin(2.0 * beta) ** 2
        * np.cos(gamma) ** (d + e - 2 * f)
        * (1.0 - np.cos(2.0 * gamma) ** f)
    )
    return float(0.5 + term_single - term_pair)


def p1_expectation(graph: Graph, gamma: float, beta: float) -> float:
    """Exact depth-1 QAOA expectation ``<C>`` for an unweighted graph."""
    if graph.is_weighted:
        raise GraphError("closed form only applies to unweighted graphs")
    degrees = graph.degrees()
    adjacency = (graph.adjacency_matrix() > 0).astype(np.int64)
    total = 0.0
    for u, v in graph.edges:
        triangles = int((adjacency[u] & adjacency[v]).sum())
        total += p1_edge_expectation(
            gamma, beta, int(degrees[u]), int(degrees[v]), triangles
        )
    return total


def p1_regular_triangle_free_expectation(
    gamma: float, beta: float, degree: int, num_edges: int
) -> float:
    """Depth-1 ``<C>`` for a triangle-free d-regular graph (f = 0)."""
    per_edge = p1_edge_expectation(gamma, beta, degree, degree, 0)
    return per_edge * num_edges


def p1_optimal_angles_regular(degree: int) -> tuple:
    """Optimal (gamma, beta) for p=1 on triangle-free d-regular graphs.

    With ``f = 0`` the edge expectation reduces to
    ``1/2 + sin(4 beta) sin(gamma) cos^(d-1)(gamma) / 2``; the maximum
    sits at ``beta = pi/8`` and ``gamma = arctan(1 / sqrt(d - 1))``
    (``gamma = pi/2`` for d = 1, which cuts an isolated edge exactly).
    These are the degree-d entries of the fixed-angle conjecture at p=1.
    """
    if degree < 1:
        raise GraphError(f"degree must be >= 1, got {degree}")
    beta = np.pi / 8.0
    if degree == 1:
        gamma = np.pi / 2.0
    else:
        gamma = float(np.arctan(1.0 / np.sqrt(degree - 1.0)))
    return gamma, beta
