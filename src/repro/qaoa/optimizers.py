"""Classical optimizers for QAOA parameters.

The labeling pipeline (paper: "optimization over 500 iterations") runs a
gradient-based optimizer against the exact adjoint gradient of the
simulator. We provide:

- :class:`AdamOptimizer` — the default; exact gradients, per-parameter
  adaptive steps.
- :class:`GradientDescentOptimizer` — plain ascent, useful as a baseline
  and in tests.
- :class:`SPSAOptimizer` — gradient-free simultaneous-perturbation, the
  standard choice on real (shot-noise-limited) hardware.
- :func:`scipy_optimize` — wraps :func:`scipy.optimize.minimize` for
  Nelder-Mead / COBYLA / L-BFGS-B reference runs.

All optimizers MAXIMIZE the expectation (the expected cut value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np
from scipy import optimize as scipy_opt

from repro.exceptions import OptimizationError
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class OptimizationResult:
    """Outcome of a parameter optimization.

    Attributes
    ----------
    gammas, betas:
        Best parameters found.
    expectation:
        Expectation at the best parameters.
    history:
        Expectation value after each iteration (length = iterations run).
    iterations:
        Number of iterations executed.
    """

    gammas: np.ndarray
    betas: np.ndarray
    expectation: float
    history: List[float] = field(default_factory=list)
    iterations: int = 0


class AdamOptimizer:
    """Adam ascent on the exact QAOA gradient."""

    def __init__(
        self,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise OptimizationError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon

    def run(
        self,
        simulator: QAOASimulator,
        gammas: np.ndarray,
        betas: np.ndarray,
        max_iters: int = 500,
        tol: float = 0.0,
    ) -> OptimizationResult:
        """Maximize the expectation from the given starting parameters.

        ``tol`` > 0 enables early stopping when the absolute expectation
        improvement over an iteration drops below it.
        """
        gammas = np.asarray(gammas, dtype=np.float64).copy()
        betas = np.asarray(betas, dtype=np.float64).copy()
        p = len(gammas)
        m = np.zeros(2 * p)
        v = np.zeros(2 * p)
        history: List[float] = []
        best_value = -np.inf
        best = (gammas.copy(), betas.copy())
        previous = None
        iterations = 0
        for step in range(1, max_iters + 1):
            value, grad_gamma, grad_beta = simulator.expectation_and_gradient(
                gammas, betas
            )
            history.append(value)
            iterations = step
            if value > best_value:
                best_value = value
                best = (gammas.copy(), betas.copy())
            gradient = np.concatenate([grad_gamma, grad_beta])
            m = self.beta1 * m + (1 - self.beta1) * gradient
            v = self.beta2 * v + (1 - self.beta2) * gradient**2
            m_hat = m / (1 - self.beta1**step)
            v_hat = v / (1 - self.beta2**step)
            update = self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            gammas = gammas + update[:p]
            betas = betas + update[p:]
            if tol > 0 and previous is not None and abs(value - previous) < tol:
                break
            previous = value
        final_value = simulator.expectation(gammas, betas)
        if final_value > best_value:
            best_value = final_value
            best = (gammas.copy(), betas.copy())
        return OptimizationResult(
            gammas=best[0],
            betas=best[1],
            expectation=best_value,
            history=history,
            iterations=iterations,
        )


class GradientDescentOptimizer:
    """Plain gradient ascent with a fixed step size."""

    def __init__(self, learning_rate: float = 0.05):
        if learning_rate <= 0:
            raise OptimizationError("learning rate must be positive")
        self.learning_rate = learning_rate

    def run(
        self,
        simulator: QAOASimulator,
        gammas: np.ndarray,
        betas: np.ndarray,
        max_iters: int = 500,
        tol: float = 0.0,
    ) -> OptimizationResult:
        """Maximize the expectation from the given starting parameters."""
        gammas = np.asarray(gammas, dtype=np.float64).copy()
        betas = np.asarray(betas, dtype=np.float64).copy()
        history: List[float] = []
        previous = None
        iterations = 0
        for step in range(max_iters):
            value, grad_gamma, grad_beta = simulator.expectation_and_gradient(
                gammas, betas
            )
            history.append(value)
            iterations = step + 1
            gammas = gammas + self.learning_rate * grad_gamma
            betas = betas + self.learning_rate * grad_beta
            if tol > 0 and previous is not None and abs(value - previous) < tol:
                break
            previous = value
        value = simulator.expectation(gammas, betas)
        return OptimizationResult(
            gammas=gammas,
            betas=betas,
            expectation=value,
            history=history,
            iterations=iterations,
        )


class SPSAOptimizer:
    """Simultaneous-perturbation stochastic approximation (gradient-free).

    Standard Spall gain schedules ``a_k = a / (k + 1 + A)^alpha`` and
    ``c_k = c / (k + 1)^gamma_exp``. Two expectation evaluations per
    iteration regardless of the parameter count — the reason SPSA is the
    default on shot-limited hardware.
    """

    def __init__(
        self,
        a: float = 0.2,
        c: float = 0.1,
        A: float = 10.0,
        alpha: float = 0.602,
        gamma_exp: float = 0.101,
        rng: RngLike = None,
    ):
        self.a = a
        self.c = c
        self.A = A
        self.alpha = alpha
        self.gamma_exp = gamma_exp
        self.rng = ensure_rng(rng)

    def run(
        self,
        simulator: QAOASimulator,
        gammas: np.ndarray,
        betas: np.ndarray,
        max_iters: int = 500,
        tol: float = 0.0,
    ) -> OptimizationResult:
        """Maximize the expectation from the given starting parameters."""
        theta = np.concatenate(
            [
                np.asarray(gammas, dtype=np.float64),
                np.asarray(betas, dtype=np.float64),
            ]
        )
        p = len(theta) // 2
        history: List[float] = []
        best_value = -np.inf
        best_theta = theta.copy()
        iterations = 0
        for k in range(max_iters):
            a_k = self.a / (k + 1 + self.A) ** self.alpha
            c_k = self.c / (k + 1) ** self.gamma_exp
            delta = self.rng.choice([-1.0, 1.0], size=theta.shape)
            plus = theta + c_k * delta
            minus = theta - c_k * delta
            value_plus = simulator.expectation(plus[:p], plus[p:])
            value_minus = simulator.expectation(minus[:p], minus[p:])
            gradient = (value_plus - value_minus) / (2 * c_k) * delta
            theta = theta + a_k * gradient
            value = max(value_plus, value_minus)
            history.append(value)
            iterations = k + 1
            if value > best_value:
                best_value = value
                best_theta = theta.copy()
        final = simulator.expectation(theta[:p], theta[p:])
        if final > best_value:
            best_value = final
            best_theta = theta
        return OptimizationResult(
            gammas=best_theta[:p],
            betas=best_theta[p:],
            expectation=float(
                simulator.expectation(best_theta[:p], best_theta[p:])
            ),
            history=history,
            iterations=iterations,
        )


def scipy_optimize(
    simulator: QAOASimulator,
    gammas: np.ndarray,
    betas: np.ndarray,
    method: str = "L-BFGS-B",
    max_iters: int = 500,
) -> OptimizationResult:
    """Reference optimization via :func:`scipy.optimize.minimize`.

    Minimizes the negated expectation; gradient-based methods receive the
    exact adjoint gradient.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    p = len(gammas)
    history: List[float] = []

    gradient_methods = {"L-BFGS-B", "BFGS", "CG", "TNC", "SLSQP"}
    use_gradient = method in gradient_methods

    def objective(theta: np.ndarray):
        if use_gradient:
            value, grad_gamma, grad_beta = simulator.expectation_and_gradient(
                theta[:p], theta[p:]
            )
            history.append(value)
            return -value, -np.concatenate([grad_gamma, grad_beta])
        value = simulator.expectation(theta[:p], theta[p:])
        history.append(value)
        return -value

    theta0 = np.concatenate([gammas, betas])
    result = scipy_opt.minimize(
        objective,
        theta0,
        method=method,
        jac=use_gradient,
        options={"maxiter": max_iters},
    )
    theta = result.x
    return OptimizationResult(
        gammas=theta[:p],
        betas=theta[p:],
        expectation=float(-result.fun),
        history=history,
        iterations=int(result.get("nit", len(history))),
    )
