"""QAOA parameter-initialization strategies.

The paper's experiment compares *random initialization* against the
*GNN warm start*. This module defines the common interface plus the
classical strategies; the GNN strategy lives in
:mod:`repro.pipeline.evaluation` (it needs a trained model).

Parameter ranges follow the usual Max-Cut conventions: ``gamma`` in
``[0, 2 pi)`` (the cost diagonal is integer-valued for unweighted
graphs, so 2 pi-periodic) and ``beta`` in ``[0, pi)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import OptimizationError
from repro.graphs.graph import Graph
from repro.qaoa.fixed_angles import FixedAngleTable, default_table
from repro.utils.rng import RngLike, ensure_rng

GAMMA_RANGE: Tuple[float, float] = (0.0, 2.0 * np.pi)
BETA_RANGE: Tuple[float, float] = (0.0, np.pi)


class InitializationStrategy:
    """Interface: produce ``(gammas, betas)`` of depth ``p`` for a graph."""

    name = "base"

    def initial_parameters(
        self, graph: Graph, p: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return initial ``(gammas, betas)`` arrays of length ``p``."""
        raise NotImplementedError


class RandomInitialization(InitializationStrategy):
    """Uniform random angles — the paper's baseline."""

    name = "random"

    def __init__(
        self,
        gamma_range: Tuple[float, float] = GAMMA_RANGE,
        beta_range: Tuple[float, float] = BETA_RANGE,
    ):
        if gamma_range[0] >= gamma_range[1] or beta_range[0] >= beta_range[1]:
            raise OptimizationError("empty initialization range")
        self.gamma_range = gamma_range
        self.beta_range = beta_range

    def initial_parameters(self, graph, p, rng=None):
        generator = ensure_rng(rng)
        gammas = generator.uniform(*self.gamma_range, size=p)
        betas = generator.uniform(*self.beta_range, size=p)
        return gammas, betas


class ConstantInitialization(InitializationStrategy):
    """Fixed constant angles replicated across layers (sanity baseline)."""

    name = "constant"

    def __init__(self, gamma: float = 0.5, beta: float = 0.25):
        self.gamma = gamma
        self.beta = beta

    def initial_parameters(self, graph, p, rng=None):
        return np.full(p, self.gamma), np.full(p, self.beta)


class LinearRampInitialization(InitializationStrategy):
    """Annealing-inspired linear ramp: gamma ramps up, beta ramps down.

    A strong classical heuristic (Zhou et al. 2020) included as an extra
    reference point beyond the paper's random baseline.
    """

    name = "linear_ramp"

    def __init__(self, gamma_max: float = 0.8, beta_max: float = 0.6):
        self.gamma_max = gamma_max
        self.beta_max = beta_max

    def initial_parameters(self, graph, p, rng=None):
        steps = (np.arange(p) + 1.0) / (p + 1.0)
        gammas = self.gamma_max * steps
        betas = self.beta_max * (1.0 - steps)
        return gammas, betas


class FixedAngleInitialization(InitializationStrategy):
    """Fixed-angle-conjecture angles for regular graphs.

    Falls back to the provided strategy (default: random) when the graph
    is irregular or its degree lies outside the table's coverage —
    matching the paper's observation that the tables cover only ~6% of
    the dataset.
    """

    name = "fixed_angle"

    def __init__(
        self,
        table: Optional[FixedAngleTable] = None,
        fallback: Optional[InitializationStrategy] = None,
    ):
        self.table = table if table is not None else default_table()
        self.fallback = fallback if fallback is not None else RandomInitialization()

    def initial_parameters(self, graph, p, rng=None):
        degree = graph.regular_degree()
        if degree is not None and self.table.covers(degree, p):
            entry = self.table.lookup(degree, p)
            return np.asarray(entry.gammas), np.asarray(entry.betas)
        return self.fallback.initial_parameters(graph, p, rng)


class WarmStartInitialization(InitializationStrategy):
    """Adapter wrapping any ``graph, p -> (gammas, betas)`` callable.

    Used to plug the trained GNN predictor (or the GW-based heuristics)
    into code written against the strategy interface.
    """

    name = "warm_start"

    def __init__(self, predict_fn, name: str = "warm_start"):
        self.predict_fn = predict_fn
        self.name = name

    def initial_parameters(self, graph, p, rng=None):
        gammas, betas = self.predict_fn(graph, p)
        gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
        if len(gammas) != p or len(betas) != p:
            raise OptimizationError(
                f"warm-start callable returned depth {len(gammas)}, wanted {p}"
            )
        return gammas, betas
