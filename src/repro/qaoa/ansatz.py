"""Gate-level QAOA ansatz construction.

Used to (a) cross-validate the fast diagonal simulator against plain
gate-by-gate simulation and (b) report the NISQ resource cost (CNOT
count, depth) of a warm-started versus cold-started run, which is the
quantity the paper's motivation section argues about.

Gate decomposition: ``exp(-i g w (1 - Z_u Z_v)/2)`` equals (up to global
phase) ``RZZ(-g w)`` on ``(u, v)`` — the sign flips because the edge term
carries ``-Z Z`` — and the mixer layer is ``RX(2 b)`` on each qubit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.graphs.graph import Graph
from repro.quantum.circuit import Circuit


def build_qaoa_circuit(
    graph: Graph, gammas: Sequence[float], betas: Sequence[float]
) -> Circuit:
    """The depth-p Max-Cut QAOA circuit for ``graph``.

    Starts from ``|0...0>`` with an explicit Hadamard layer, so running
    it on the default initial state prepares the QAOA state (up to the
    global phase dropped by the RZZ decomposition).
    """
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if gammas.shape != betas.shape or gammas.ndim != 1 or len(gammas) == 0:
        raise CircuitError("gammas and betas must be equal-length 1-D arrays")
    circuit = Circuit(graph.num_nodes)
    for q in range(graph.num_nodes):
        circuit.h(q)
    for gamma, beta in zip(gammas, betas):
        for (u, v), w in zip(graph.edges, graph.weights):
            circuit.rzz(float(-gamma * w), u, v)
        for q in range(graph.num_nodes):
            circuit.rx(float(2.0 * beta), q)
    return circuit


def qaoa_resource_counts(graph: Graph, p: int) -> dict:
    """NISQ resource summary of the depth-p ansatz for ``graph``.

    Reports gate totals under the native RZZ gate set and under a
    CNOT+RZ decomposition (each RZZ costs 2 CNOTs and 1 RZ).
    """
    if p < 1:
        raise CircuitError("depth p must be at least 1")
    circuit = build_qaoa_circuit(
        graph, np.full(p, 0.1), np.full(p, 0.1)
    )
    rzz_count = p * graph.num_edges
    return {
        "num_qubits": graph.num_nodes,
        "depth": circuit.depth(),
        "total_gates": circuit.num_gates,
        "rzz_gates": rzz_count,
        "rx_gates": p * graph.num_nodes,
        "hadamard_gates": graph.num_nodes,
        "cnot_equivalent": 2 * rzz_count,
    }
