"""Fast Max-Cut QAOA simulator with exact adjoint gradients.

Conventions
-----------
Cost Hamiltonian ``C = sum_(u,v) w_uv (1 - Z_u Z_v) / 2`` — diagonal in
the computational basis with entries equal to the cut value of each
bitstring, so *maximizing* ``<C>`` maximizes the expected cut. The depth-p
ansatz is::

    |psi(gamma, beta)> = U_B(beta_p) U_C(gamma_p) ... U_B(beta_1) U_C(gamma_1) |+>^n

with ``U_C(g) = exp(-i g C)`` (elementwise complex phase on the cached
cut-value diagonal) and ``U_B(b) = exp(-i b B)``, ``B = sum_q X_q``
(``RX(2b)`` on every qubit). Because ``C`` is diagonal, a depth-p
evaluation costs ``O(p (n + 1) 2^n)`` — exact and fast for n <= 15.

Gradients are computed by the adjoint (reverse-mode) method: one extra
backward sweep gives all ``2p`` partial derivatives exactly, which is
what lets the labeling pipeline run hundreds of optimizer iterations per
graph at dataset scale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.quantum.statevector import Statevector


class QAOASimulator:
    """Simulator bound to one Max-Cut instance.

    Parameters are passed as two arrays ``gammas`` and ``betas`` of equal
    length ``p``. The simulator caches the cost diagonal on the wrapped
    :class:`MaxCutProblem`, so repeated evaluations are cheap.
    """

    def __init__(self, problem):
        if isinstance(problem, Graph):
            problem = MaxCutProblem(problem)
        self.problem: MaxCutProblem = problem
        self.num_qubits = problem.num_nodes
        self._diagonal = problem.cost_diagonal()

    # ------------------------------------------------------------------
    # Forward evaluation
    # ------------------------------------------------------------------
    def state(self, gammas: np.ndarray, betas: np.ndarray) -> Statevector:
        """The QAOA state ``|psi(gamma, beta)>``."""
        gammas, betas = self._check_params(gammas, betas)
        psi = _plus_amplitudes(self.num_qubits)
        for gamma, beta in zip(gammas, betas):
            psi = psi * np.exp(-1j * gamma * self._diagonal)
            psi = _apply_mixer(psi, self.num_qubits, beta)
        return Statevector(self.num_qubits, psi)

    def expectation(self, gammas: np.ndarray, betas: np.ndarray) -> float:
        """``<psi| C |psi>`` — the expected cut value."""
        state = self.state(gammas, betas)
        return float(
            np.real(np.vdot(state.data, self._diagonal * state.data))
        )

    def approximation_ratio(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> float:
        """Expected cut divided by the exact optimum."""
        return self.problem.approximation_ratio(self.expectation(gammas, betas))

    def sample_cut(
        self, gammas: np.ndarray, betas: np.ndarray, shots: int = 1024, rng=None
    ) -> Tuple[int, float]:
        """Sample the state and return the best cut seen: (bitstring, value)."""
        state = self.state(gammas, betas)
        samples = state.sample(shots, rng)
        values = self._diagonal[samples]
        best = int(np.argmax(values))
        return int(samples[best]), float(values[best])

    # ------------------------------------------------------------------
    # Exact gradients (adjoint method)
    # ------------------------------------------------------------------
    def expectation_and_gradient(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Expectation and exact ``(dE/dgamma, dE/dbeta)`` in one pass.

        Forward pass stores the per-layer states; the backward pass
        propagates the adjoint state ``lambda = V_k^dag C |psi_p>`` and
        reads off ``dE/dtheta_k = 2 Re <lambda_k| (-i G_k) |psi_k>``
        where ``G_k`` is the layer generator (``C`` or ``B``).
        """
        gammas, betas = self._check_params(gammas, betas)
        p = len(gammas)
        n = self.num_qubits
        diag = self._diagonal

        psi = _plus_amplitudes(n)
        for gamma, beta in zip(gammas, betas):
            psi = psi * np.exp(-1j * gamma * diag)
            psi = _apply_mixer(psi, n, beta)

        energy = float(np.real(np.vdot(psi, diag * psi)))
        lam = diag * psi
        grad_gamma = np.zeros(p, dtype=np.float64)
        grad_beta = np.zeros(p, dtype=np.float64)

        for k in range(p - 1, -1, -1):
            # psi currently equals psi_k (state after layer k).
            # dE/dbeta_k = 2 Re <lam | -i B psi_k> = 2 Im <lam | B psi_k>
            b_psi = _apply_sum_x(psi, n)
            grad_beta[k] = 2.0 * float(np.imag(np.vdot(lam, b_psi)))
            # Undo the mixer on both vectors -> phi_k = U_C(gamma_k) psi_{k-1}
            psi = _apply_mixer(psi, n, -betas[k])
            lam = _apply_mixer(lam, n, -betas[k])
            # dE/dgamma_k = 2 Re <lam' | -i C phi_k> = 2 Im <lam' | C phi_k>
            grad_gamma[k] = 2.0 * float(np.imag(np.vdot(lam, diag * psi)))
            # Undo the phase separator -> psi_{k-1}
            phase = np.exp(1j * gammas[k] * diag)
            psi = psi * phase
            lam = lam * phase

        return energy, grad_gamma, grad_beta

    def gradient_finite_difference(
        self, gammas: np.ndarray, betas: np.ndarray, eps: float = 1e-6
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Central finite-difference gradient (test oracle for the adjoint)."""
        gammas, betas = self._check_params(gammas, betas)
        grad_gamma = np.zeros_like(gammas)
        grad_beta = np.zeros_like(betas)
        for i in range(len(gammas)):
            up, down = gammas.copy(), gammas.copy()
            up[i] += eps
            down[i] -= eps
            grad_gamma[i] = (
                self.expectation(up, betas) - self.expectation(down, betas)
            ) / (2 * eps)
        for i in range(len(betas)):
            up, down = betas.copy(), betas.copy()
            up[i] += eps
            down[i] -= eps
            grad_beta[i] = (
                self.expectation(gammas, up) - self.expectation(gammas, down)
            ) / (2 * eps)
        return grad_gamma, grad_beta

    # ------------------------------------------------------------------
    def _check_params(
        self, gammas, betas
    ) -> Tuple[np.ndarray, np.ndarray]:
        gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
        if gammas.ndim != 1 or betas.ndim != 1:
            raise CircuitError("gammas and betas must be 1-D")
        if gammas.shape != betas.shape:
            raise CircuitError(
                f"gamma/beta length mismatch: {gammas.shape} vs {betas.shape}"
            )
        if len(gammas) == 0:
            raise CircuitError("depth p must be at least 1")
        return gammas, betas


def _plus_amplitudes(num_qubits: int) -> np.ndarray:
    dim = 1 << num_qubits
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)


def _apply_mixer(psi: np.ndarray, num_qubits: int, beta: float) -> np.ndarray:
    """Apply ``exp(-i beta X_q)`` on every qubit (RX(2 beta) each)."""
    c = np.cos(beta)
    s = np.sin(beta)
    tensor = psi.reshape((2,) * num_qubits)
    for axis in range(num_qubits):
        tensor = c * tensor - 1j * s * np.flip(tensor, axis=axis)
    return np.ascontiguousarray(tensor).reshape(-1)


def _apply_sum_x(psi: np.ndarray, num_qubits: int) -> np.ndarray:
    """Apply the mixer generator ``B = sum_q X_q`` to the amplitudes."""
    tensor = psi.reshape((2,) * num_qubits)
    total = np.zeros_like(tensor)
    for axis in range(num_qubits):
        total = total + np.flip(tensor, axis=axis)
    return total.reshape(-1)
