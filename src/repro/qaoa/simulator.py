"""Fast Max-Cut QAOA simulator with exact adjoint gradients.

Conventions
-----------
Cost Hamiltonian ``C = sum_(u,v) w_uv (1 - Z_u Z_v) / 2`` — diagonal in
the computational basis with entries equal to the cut value of each
bitstring, so *maximizing* ``<C>`` maximizes the expected cut. The depth-p
ansatz is::

    |psi(gamma, beta)> = U_B(beta_p) U_C(gamma_p) ... U_B(beta_1) U_C(gamma_1) |+>^n

with ``U_C(g) = exp(-i g C)`` (elementwise complex phase on the cached
cut-value diagonal) and ``U_B(b) = exp(-i b B)``, ``B = sum_q X_q``
(``RX(2b)`` on every qubit). Because ``C`` is diagonal, a depth-p
evaluation costs ``O(p (n + 1) 2^n)`` — exact and fast for n <= 15.

Gradients are computed by the adjoint (reverse-mode) method: one extra
backward sweep gives all ``2p`` partial derivatives exactly, which is
what lets the labeling pipeline run hundreds of optimizer iterations per
graph at dataset scale.

Kernels
-------
The mixer ``U_B = RX(2 beta)^(tensor n)`` factorizes over qubits, so it
can be applied group-wise: the lowest ``g`` qubits are contracted in a
single BLAS ``zgemm`` against the ``2^g x 2^g`` group matrix
``RX^(tensor g)`` (closed form ``c^(g-h) (-i s)^h`` where ``h`` is the
popcount of ``row xor column``), the highest ``g`` qubits in a second
gemm from the left, and any middle qubits by contiguous-slice
butterflies: viewing the statevector as ``(-1, 2, 2^q)`` exposes the
amplitude pairs ``(i, i | 2^q)`` as the two middle-axis slices, each a
large contiguous block. This keeps every memory access either inside a
gemm or unit-stride — no ``np.flip`` reversals, no per-qubit
``ascontiguousarray`` re-packs, no full-size temporaries. The kernels
write ``src -> dst`` so the evolution loop ping-pongs two buffers
instead of copying. The simulator owns all workspaces (plus state,
phase table, ping-pong pairs, adjoint vectors), so repeated
evaluations — the labeling inner loop — allocate nothing. One
consequence: a :class:`QAOASimulator` instance is NOT safe for
concurrent use from multiple threads; give each worker its own
instance (the parallel runtime does).

The original ``reshape``/``np.flip`` kernels are kept as
``*_reference`` functions — they are the independent oracles the kernel
equivalence tests and benchmarks compare against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.quantum.statevector import Statevector


class QAOASimulator:
    """Simulator bound to one Max-Cut instance.

    Parameters are passed as two arrays ``gammas`` and ``betas`` of equal
    length ``p``. The simulator caches the cost diagonal on the wrapped
    :class:`MaxCutProblem` plus all evaluation workspaces, so repeated
    evaluations are allocation-free.
    """

    def __init__(self, problem):
        if isinstance(problem, Graph):
            problem = MaxCutProblem(problem)
        self.problem: MaxCutProblem = problem
        self.num_qubits = problem.num_nodes
        self._diagonal = problem.cost_diagonal()
        dim = 1 << self.num_qubits
        self._plus = np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)
        self._phase = np.empty(dim, dtype=np.complex128)
        self._work = np.empty(dim, dtype=np.complex128)
        self._psi = np.empty(dim, dtype=np.complex128)
        self._psi_alt = np.empty(dim, dtype=np.complex128)
        self._lam = np.empty(dim, dtype=np.complex128)
        self._lam_alt = np.empty(dim, dtype=np.complex128)
        self._scratch = np.empty(dim, dtype=np.complex128)

    # ------------------------------------------------------------------
    # Forward evaluation
    # ------------------------------------------------------------------
    def state(self, gammas: np.ndarray, betas: np.ndarray) -> Statevector:
        """The QAOA state ``|psi(gamma, beta)>``."""
        gammas, betas = self._check_params(gammas, betas)
        psi = self._evolve(gammas, betas)
        return Statevector(self.num_qubits, psi.copy(), copy=False)

    def expectation(self, gammas: np.ndarray, betas: np.ndarray) -> float:
        """``<psi| C |psi>`` — the expected cut value."""
        gammas, betas = self._check_params(gammas, betas)
        psi = self._evolve(gammas, betas)
        np.multiply(self._diagonal, psi, out=self._work)
        return float(np.real(np.vdot(psi, self._work)))

    def approximation_ratio(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> float:
        """Expected cut divided by the exact optimum."""
        return self.problem.approximation_ratio(self.expectation(gammas, betas))

    def sample_cut(
        self, gammas: np.ndarray, betas: np.ndarray, shots: int = 1024, rng=None
    ) -> Tuple[int, float]:
        """Sample the state and return the best cut seen: (bitstring, value)."""
        state = self.state(gammas, betas)
        samples = state.sample(shots, rng)
        values = self._diagonal[samples]
        best = int(np.argmax(values))
        return int(samples[best]), float(values[best])

    # ------------------------------------------------------------------
    # Exact gradients (adjoint method)
    # ------------------------------------------------------------------
    def expectation_and_gradient(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Expectation and exact ``(dE/dgamma, dE/dbeta)`` in one pass.

        Forward pass evolves the state in place; the backward pass
        propagates the adjoint state ``lambda = V_k^dag C |psi_p>`` and
        reads off ``dE/dtheta_k = 2 Re <lambda_k| (-i G_k) |psi_k>``
        where ``G_k`` is the layer generator (``C`` or ``B``).
        """
        gammas, betas = self._check_params(gammas, betas)
        p = len(gammas)
        n = self.num_qubits
        diag = self._diagonal

        psi = self._evolve(gammas, betas)
        psi_alt = self._psi_alt if psi is self._psi else self._psi

        lam = self._lam
        lam_alt = self._lam_alt
        np.multiply(diag, psi, out=lam)
        energy = float(np.real(np.vdot(psi, lam)))
        grad_gamma = np.zeros(p, dtype=np.float64)
        grad_beta = np.zeros(p, dtype=np.float64)
        work = self._work
        phase = self._phase

        for k in range(p - 1, -1, -1):
            # psi currently equals psi_k (state after layer k).
            # dE/dbeta_k = 2 Re <lam | -i B psi_k> = 2 Im <lam | B psi_k>
            _apply_sum_x_into(psi, n, work)
            grad_beta[k] = 2.0 * float(np.imag(np.vdot(lam, work)))
            # Undo the mixer on both vectors -> phi_k = U_C(gamma_k) psi_{k-1}
            _apply_mixer_into(psi, psi_alt, n, -betas[k], self._scratch)
            psi, psi_alt = psi_alt, psi
            _apply_mixer_into(lam, lam_alt, n, -betas[k], self._scratch)
            lam, lam_alt = lam_alt, lam
            # dE/dgamma_k = 2 Re <lam' | -i C phi_k> = 2 Im <lam' | C phi_k>
            np.multiply(diag, psi, out=work)
            grad_gamma[k] = 2.0 * float(np.imag(np.vdot(lam, work)))
            # Undo the phase separator -> psi_{k-1}
            np.multiply(diag, 1j * gammas[k], out=phase)
            np.exp(phase, out=phase)
            psi *= phase
            lam *= phase

        return energy, grad_gamma, grad_beta

    def gradient_finite_difference(
        self, gammas: np.ndarray, betas: np.ndarray, eps: float = 1e-6
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Central finite-difference gradient (test oracle for the adjoint)."""
        gammas, betas = self._check_params(gammas, betas)
        grad_gamma = np.zeros_like(gammas)
        grad_beta = np.zeros_like(betas)
        for i in range(len(gammas)):
            up, down = gammas.copy(), gammas.copy()
            up[i] += eps
            down[i] -= eps
            grad_gamma[i] = (
                self.expectation(up, betas) - self.expectation(down, betas)
            ) / (2 * eps)
        for i in range(len(betas)):
            up, down = betas.copy(), betas.copy()
            up[i] += eps
            down[i] -= eps
            grad_beta[i] = (
                self.expectation(gammas, up) - self.expectation(gammas, down)
            ) / (2 * eps)
        return grad_gamma, grad_beta

    # ------------------------------------------------------------------
    def _evolve(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> np.ndarray:
        """Evolve ``|+>^n`` through the depth-p ansatz.

        Ping-pongs between the ``_psi``/``_psi_alt`` workspaces and
        returns the buffer holding the final state — the caller must
        copy before triggering another evaluation.
        """
        cur, nxt = self._psi, self._psi_alt
        np.copyto(cur, self._plus)
        phase = self._phase
        for gamma, beta in zip(gammas, betas):
            np.multiply(self._diagonal, -1j * gamma, out=phase)
            np.exp(phase, out=phase)
            cur *= phase
            _apply_mixer_into(cur, nxt, self.num_qubits, beta, self._scratch)
            cur, nxt = nxt, cur
        return cur

    def _check_params(
        self, gammas, betas
    ) -> Tuple[np.ndarray, np.ndarray]:
        gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
        if gammas.ndim != 1 or betas.ndim != 1:
            raise CircuitError("gammas and betas must be 1-D")
        if gammas.shape != betas.shape:
            raise CircuitError(
                f"gamma/beta length mismatch: {gammas.shape} vs {betas.shape}"
            )
        if len(gammas) == 0:
            raise CircuitError("depth p must be at least 1")
        return gammas, betas


def _plus_amplitudes(num_qubits: int) -> np.ndarray:
    dim = 1 << num_qubits
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)


# ----------------------------------------------------------------------
# Optimized grouped kernels
# ----------------------------------------------------------------------
#: Qubits contracted per gemm group. 2^6 = 64 keeps the group matrices
#: small while giving the gemm enough inner dimension to saturate BLAS.
_GROUP_BITS = 6

_POPCOUNT_CACHE: dict = {}
_SUM_X_GROUP_CACHE: dict = {}


def _group_popcount(k: int) -> np.ndarray:
    """``popcount(i xor j)`` for all index pairs of a ``k``-qubit group."""
    cached = _POPCOUNT_CACHE.get(k)
    if cached is None:
        idx = np.arange(1 << k, dtype=np.uint32)
        xor = idx[:, None] ^ idx[None, :]
        if hasattr(np, "bitwise_count"):
            cached = np.bitwise_count(xor).astype(np.intp)
        else:  # pragma: no cover - numpy < 2.0 fallback
            bits = np.unpackbits(
                xor.astype(">u4").view(np.uint8).reshape(*xor.shape, 4),
                axis=-1,
            )
            cached = bits.sum(axis=-1).astype(np.intp)
        _POPCOUNT_CACHE[k] = cached
    return cached


def _rx_group_matrix(k: int, beta: float) -> np.ndarray:
    """``RX(2 beta)^(tensor k)`` — entry ``[i, j] = c^(k-h) (-i s)^h``
    with ``h = popcount(i xor j)``."""
    h = _group_popcount(k)
    c_pow = np.cos(beta) ** np.arange(k + 1)
    s_pow = (-1j * np.sin(beta)) ** np.arange(k + 1)
    return c_pow[k - h] * s_pow[h]


def _sum_x_group_matrix(k: int) -> np.ndarray:
    """``sum_(q<k) X_q`` as a dense ``2^k x 2^k`` matrix (cached)."""
    cached = _SUM_X_GROUP_CACHE.get(k)
    if cached is None:
        cached = (_group_popcount(k) == 1).astype(np.complex128)
        _SUM_X_GROUP_CACHE[k] = cached
    return cached


def _apply_mixer_into(
    src: np.ndarray,
    dst: np.ndarray,
    num_qubits: int,
    beta: float,
    scratch: np.ndarray,
) -> np.ndarray:
    """Write ``exp(-i beta sum_q X_q) src`` into ``dst``; ``src`` is
    preserved.

    All three arrays must be contiguous 1-D complex vectors of length
    ``2^n`` (``scratch`` is clobbered). The lowest ``_GROUP_BITS``
    qubits are contracted by one gemm against the group matrix (which is
    symmetric, so no transpose is needed), the highest group by a second
    gemm from the left, and any middle qubits by contiguous-slice
    butterflies ``a' = c a - i s b``, ``b' = c b - i s a`` on the
    ``(-1, 2, 2^q)`` view, using the halves of ``dst`` as temporaries
    until the final gemm overwrites it.
    """
    n = num_qubits
    if n <= _GROUP_BITS:
        group = _rx_group_matrix(n, beta)
        np.matmul(src.reshape(1, -1), group, out=dst.reshape(1, -1))
        return dst
    low = _GROUP_BITS
    high = min(_GROUP_BITS, n - low)
    low_matrix = _rx_group_matrix(low, beta)
    np.matmul(
        src.reshape(-1, 1 << low), low_matrix,
        out=scratch.reshape(-1, 1 << low),
    )
    c = np.cos(beta)
    ms = -1j * np.sin(beta)
    half = src.size >> 1
    wa = dst[:half]
    wb = dst[half:]
    for q in range(low, n - high):
        block = 1 << q
        view = scratch.reshape(-1, 2, block)
        a = view[:, 0, :]
        b = view[:, 1, :]
        shaped_wa = wa.reshape(a.shape)
        shaped_wb = wb.reshape(b.shape)
        np.multiply(a, ms, out=shaped_wa)  # wa = -i s a_old
        a *= c
        np.multiply(b, ms, out=shaped_wb)  # wb = -i s b_old
        a += shaped_wb                     # a = c a_old - i s b_old
        b *= c
        b += shaped_wa                     # b = c b_old - i s a_old
    high_matrix = _rx_group_matrix(high, beta)
    np.matmul(
        high_matrix, scratch.reshape(1 << high, -1),
        out=dst.reshape(1 << high, -1),
    )
    return dst


def _apply_sum_x_into(
    psi: np.ndarray, num_qubits: int, out: np.ndarray
) -> np.ndarray:
    """Write ``(sum_q X_q) psi`` into ``out``; ``psi`` is preserved.

    The low-qubit group goes through one gemm; every remaining qubit
    adds its bit-flipped ``(-1, 2, 2^q)`` slices of ``psi`` into
    ``out``, all contiguous.
    """
    n = num_qubits
    low = min(_GROUP_BITS, n)
    group = _sum_x_group_matrix(low)
    np.matmul(
        psi.reshape(-1, 1 << low), group, out=out.reshape(-1, 1 << low)
    )
    for q in range(low, n):
        block = 1 << q
        view = psi.reshape(-1, 2, block)
        target = out.reshape(-1, 2, block)
        target[:, 0, :] += view[:, 1, :]
        target[:, 1, :] += view[:, 0, :]
    return out


# ----------------------------------------------------------------------
# Out-of-place wrappers and reference kernels
# ----------------------------------------------------------------------
def _apply_mixer(psi: np.ndarray, num_qubits: int, beta: float) -> np.ndarray:
    """Out-of-place mixer (compatibility wrapper over the fast kernel)."""
    src = np.ascontiguousarray(psi, dtype=np.complex128)
    dst = np.empty(src.size, dtype=np.complex128)
    scratch = np.empty(src.size, dtype=np.complex128)
    return _apply_mixer_into(src, dst, num_qubits, beta, scratch)


def _apply_sum_x(psi: np.ndarray, num_qubits: int) -> np.ndarray:
    """Apply the mixer generator ``B = sum_q X_q`` to the amplitudes."""
    out = np.empty(psi.size, dtype=np.complex128)
    return _apply_sum_x_into(np.ascontiguousarray(psi), num_qubits, out)


def _apply_mixer_reference(
    psi: np.ndarray, num_qubits: int, beta: float
) -> np.ndarray:
    """The original ``np.flip``-based mixer — oracle for kernel tests."""
    c = np.cos(beta)
    s = np.sin(beta)
    tensor = psi.reshape((2,) * num_qubits)
    for axis in range(num_qubits):
        tensor = c * tensor - 1j * s * np.flip(tensor, axis=axis)
    return np.ascontiguousarray(tensor).reshape(-1)


def _apply_sum_x_reference(psi: np.ndarray, num_qubits: int) -> np.ndarray:
    """The original ``np.flip``-based generator — oracle for kernel tests."""
    tensor = psi.reshape((2,) * num_qubits)
    total = np.zeros_like(tensor)
    for axis in range(num_qubits):
        total = total + np.flip(tensor, axis=axis)
    return total.reshape(-1)
