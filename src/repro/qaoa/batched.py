"""Batched multi-instance QAOA simulation with lock-step optimizers.

The warm-start evaluation runs hundreds of *independent* scalar QAOA
optimizations — two arms per held-out graph, repeated per architecture —
and at evaluation sizes (n = 4..15, dims 16..32768) each numpy call in
the serial simulator touches so little data that dispatch overhead
dominates. This module batches all instances of one qubit count into a
single ``(K, 2^n)`` amplitude stack and runs the full ansatz plus the
exact adjoint gradient for all ``K`` instances per sweep:

- the **cost phase** ``exp(-i gamma C)`` is a per-row elementwise
  multiply against a stacked ``(K, 2^n)`` phase table. Cut values are
  small non-negative integers for the benchmark graphs, so the phases
  are gathered from a tiny per-row table of ``exp(-i gamma_k * v)``
  (one transcendental per *distinct cut value* instead of one per
  amplitude); non-integral diagonals fall back to a dense ``exp``.
  Forward-pass phases are cached so the adjoint sweep undoes them by
  conjugation instead of fresh evaluations;
- the **mixer** ``RX(2 beta)^(tensor n)`` mirrors the serial kernel's
  group decomposition — the lowest ``_GROUP_BITS`` qubits contract
  through one stacked right-gemm (``(K, m, 2^g) @ (K, 2^g, 2^g)``),
  the highest group through a stacked left-gemm, and any middle qubits
  through batch-broadcast butterflies — with the per-instance group
  matrices built by batched Kronecker doubling. The backward sweep
  reuses the cached forward matrices: ``RX(-2 beta)^(tensor g)`` is
  their elementwise conjugate;
- the **generator** ``B = sum_q X_q`` splits the same way: one
  right-gemm for the low group, one left-gemm for the high group, and
  bit-flip slice adds for any middle qubits.

Numerical contract
------------------
Per instance, every batched kernel computes the same quantities as the
serial :class:`~repro.qaoa.simulator.QAOASimulator` with the same
float64/complex128 precision but a cheaper operation schedule
(Kronecker-doubled matrices, phase-table gathers, conjugate-shared
backward factors), so results agree with the serial path to a few ulp —
the equivalence tests in ``tests/test_qaoa_batched.py`` and the
evaluation benchmark pin the divergence of full optimization
trajectories below ``1e-10``.

On top sit **lock-step optimizers**: :class:`BatchedAdamOptimizer` and
:class:`BatchedGradientDescentOptimizer` advance a ``(K, 2p)`` parameter
block one iteration at a time with per-instance histories, best-iterate
tracking and per-instance early stopping — the vectorized twins of
:class:`~repro.qaoa.optimizers.AdamOptimizer` and
:class:`~repro.qaoa.optimizers.GradientDescentOptimizer`.

Like the serial simulator, a :class:`BatchedQAOASimulator` owns all of
its workspaces and is NOT safe for concurrent use from multiple threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CircuitError, OptimizationError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.simulator import _GROUP_BITS, _sum_x_group_matrix

#: Widest integer cost diagonal served from a phase-gather table. Cut
#: values are bounded by the edge count, so evaluation-size graphs stay
#: far below this; the cap only guards table memory for huge inputs.
_PHASE_TABLE_MAX = 1 << 16


# ----------------------------------------------------------------------
# Batched kernels
# ----------------------------------------------------------------------
def _batched_rx_group_matrices(
    k: int, betas: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """``RX(2 beta_i)^(tensor k)`` for every instance: ``(K, 2^k, 2^k)``.

    Entry ``[i, r, c] = cos(beta_i)^(k-h) (-i sin(beta_i))^h`` with
    ``h = popcount(r xor c)``, built by Kronecker doubling: seed the
    2x2 ``RX`` block, then repeatedly expand ``M -> [[c M, -is M],
    [-is M, c M]]`` in place inside ``out``'s top-left corner. All
    writes are contiguous SIMD multiplies — far cheaper than gathering
    ``2^k * 2^k`` popcount-indexed powers per instance.
    """
    betas = np.asarray(betas, dtype=np.float64)
    batch = betas.shape[0]
    size = 1 << k
    if out is None:
        out = np.empty((batch, size, size), dtype=np.complex128)
    c = np.cos(betas)
    ms = -1j * np.sin(betas)
    seed = out[:, :2, :2]
    seed[:, 0, 0] = c
    seed[:, 1, 1] = c
    seed[:, 0, 1] = ms
    seed[:, 1, 0] = ms
    cb = c[:, None, None]
    msb = ms[:, None, None]
    d = 2
    while d < size:
        m = out[:, :d, :d]
        np.multiply(m, msb, out=out[:, :d, d : 2 * d])
        out[:, d : 2 * d, :d] = out[:, :d, d : 2 * d]
        np.multiply(m, cb, out=out[:, d : 2 * d, d : 2 * d])
        m *= cb
        d <<= 1
    return out


def _batched_mixer_into(
    src: np.ndarray,
    dst: np.ndarray,
    num_qubits: int,
    betas: np.ndarray,
    scratch: Optional[np.ndarray] = None,
    butterfly_work: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    low_groups: Optional[np.ndarray] = None,
    high_groups: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Write ``exp(-i betas[i] B) src[i]`` into ``dst[i]`` for a stack.

    ``src`` and ``dst`` are contiguous ``(K, 2^n)`` complex arrays
    (``src`` preserved). The decomposition mirrors the serial
    ``_apply_mixer_into``: the lowest ``min(_GROUP_BITS, n)`` qubits
    contract through one stacked right-gemm, the highest
    ``min(_GROUP_BITS, n - low)`` through one stacked left-gemm, and
    any middle qubits through batch-broadcast butterflies on
    ``scratch``. The per-instance group matrices (``low_groups`` /
    ``high_groups``) may be supplied — callers cache these across the
    two adjoint states and conjugate them for the backward sweep —
    else they are built from ``betas``.
    """
    n = num_qubits
    batch = src.shape[0]
    if n <= _GROUP_BITS:
        if low_groups is None:
            low_groups = _batched_rx_group_matrices(n, betas)
        np.matmul(
            src.reshape(batch, 1, -1),
            low_groups,
            out=dst.reshape(batch, 1, -1),
        )
        return dst
    low = _GROUP_BITS
    high = min(_GROUP_BITS, n - low)
    if low_groups is None:
        low_groups = _batched_rx_group_matrices(low, betas)
    if high_groups is None:
        # Equal group widths share one matrix (RX tensor powers depend
        # only on the width and the angle).
        high_groups = (
            low_groups
            if high == low
            else _batched_rx_group_matrices(high, betas)
        )
    if scratch is None:
        scratch = np.empty_like(src)
    np.matmul(
        src.reshape(batch, -1, 1 << low),
        low_groups,
        out=scratch.reshape(batch, -1, 1 << low),
    )
    if n > low + high:
        if butterfly_work is None:
            half = src.shape[1] >> 1
            butterfly_work = (
                np.empty((batch, half), dtype=np.complex128),
                np.empty((batch, half), dtype=np.complex128),
            )
        betas = np.asarray(betas, dtype=np.float64)
        c = np.cos(betas).reshape(batch, 1, 1)
        ms = (-1j * np.sin(betas)).reshape(batch, 1, 1)
        wa, wb = butterfly_work
        for q in range(low, n - high):
            block = 1 << q
            view = scratch.reshape(batch, -1, 2, block)
            a = view[:, :, 0, :]
            b = view[:, :, 1, :]
            shaped_wa = wa.reshape(a.shape)
            shaped_wb = wb.reshape(b.shape)
            np.multiply(a, ms, out=shaped_wa)  # wa = -i s a_old
            a *= c
            np.multiply(b, ms, out=shaped_wb)  # wb = -i s b_old
            a += shaped_wb                     # a = c a_old - i s b_old
            b *= c
            b += shaped_wa                     # b = c b_old - i s a_old
    np.matmul(
        high_groups,
        scratch.reshape(batch, 1 << high, -1),
        out=dst.reshape(batch, 1 << high, -1),
    )
    return dst


def _batched_sum_x_into(
    psi: np.ndarray,
    num_qubits: int,
    out: np.ndarray,
    work: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Write ``(sum_q X_q) psi[i]`` into ``out[i]``; ``psi`` preserved.

    Splits like the mixer: the low group through one stacked right-gemm
    against the shared (real, cached) ``sum_x`` group matrix, the high
    group through one stacked left-gemm accumulated via ``work``, and
    any middle qubits through bit-flip slice adds.
    """
    n = num_qubits
    batch = psi.shape[0]
    low = min(_GROUP_BITS, n)
    group = _sum_x_group_matrix(low)
    np.matmul(
        psi.reshape(batch, -1, 1 << low),
        group,
        out=out.reshape(batch, -1, 1 << low),
    )
    if n <= low:
        return out
    high = min(_GROUP_BITS, n - low)
    for q in range(low, n - high):
        block = 1 << q
        view = psi.reshape(batch, -1, 2, block)
        target = out.reshape(batch, -1, 2, block)
        target[:, :, 0, :] += view[:, :, 1, :]
        target[:, :, 1, :] += view[:, :, 0, :]
    if work is None:
        work = np.empty_like(psi)
    np.matmul(
        _sum_x_group_matrix(high),
        psi.reshape(batch, 1 << high, -1),
        out=work.reshape(batch, 1 << high, -1),
    )
    out += work
    return out


def _row_vdot(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[i] = <a[i] | b[i]>`` row by row.

    A Python loop over ``np.vdot`` on contiguous rows — each reduction
    is the same BLAS ``zdotc`` call the serial simulator makes. The
    loop costs K tiny calls against the K-fold larger kernel launches
    it sits between.
    """
    for i in range(a.shape[0]):
        out[i] = np.vdot(a[i], b[i])
    return out


# ----------------------------------------------------------------------
# Batched simulator
# ----------------------------------------------------------------------
class BatchedQAOASimulator:
    """Exact QAOA simulator over a stack of same-size Max-Cut instances.

    Parameters
    ----------
    problems:
        :class:`MaxCutProblem` instances (or raw :class:`Graph` objects)
        that all share one node count. Problems may repeat — e.g. the
        random and warm arm of one graph occupy two rows backed by the
        same cached problem.

    Parameters to every method are ``(K, p)`` arrays: row ``i`` holds
    instance ``i``'s angles. All workspaces are owned by the instance,
    so repeated evaluations — the lock-step optimizer loop — are
    allocation-free.
    """

    def __init__(self, problems: Sequence[Union[MaxCutProblem, Graph]]):
        if len(problems) == 0:
            raise CircuitError("batched simulator needs at least one instance")
        resolved = [
            MaxCutProblem(p) if isinstance(p, Graph) else p for p in problems
        ]
        n = resolved[0].num_nodes
        for problem in resolved:
            if problem.num_nodes != n:
                raise CircuitError(
                    "batched instances must share one node count: "
                    f"got {problem.num_nodes} and {n}"
                )
        self.problems: List[MaxCutProblem] = resolved
        self.num_qubits = n
        self.num_instances = batch = len(resolved)
        dim = 1 << n
        self._diagonals = np.empty((batch, dim), dtype=np.float64)
        for i, problem in enumerate(resolved):
            self._diagonals[i] = problem.cost_diagonal()
        # Integral diagonals (every unweighted Max-Cut instance) are
        # served by a per-row phase-table gather: exp(-i gamma_k v) for
        # each distinct cut value v, then a fancy-index broadcast. This
        # is bit-identical to the dense exp — the same products reach
        # the same exp calls — at a fraction of the transcendental work.
        self._diag_int: Optional[np.ndarray] = None
        if np.all(self._diagonals >= 0) and np.all(
            self._diagonals == np.rint(self._diagonals)
        ):
            max_value = int(self._diagonals.max())
            if max_value < _PHASE_TABLE_MAX:
                self._diag_int = self._diagonals.astype(np.intp)
                self._phase_values = np.arange(
                    max_value + 1, dtype=np.float64
                )
                self._gather_rows = np.arange(batch)[:, None]
        self._plus = np.full(
            (batch, dim), 1.0 / np.sqrt(dim), dtype=np.complex128
        )
        self._phase = np.empty((batch, dim), dtype=np.complex128)
        self._work = np.empty((batch, dim), dtype=np.complex128)
        self._psi = np.empty((batch, dim), dtype=np.complex128)
        self._psi_alt = np.empty((batch, dim), dtype=np.complex128)
        self._lam = np.empty((batch, dim), dtype=np.complex128)
        self._lam_alt = np.empty((batch, dim), dtype=np.complex128)
        self._row = np.empty(batch, dtype=np.complex128)
        low = min(_GROUP_BITS, n)
        high = min(_GROUP_BITS, n - low) if n > low else 0
        self._low_bits = low
        self._high_bits = high
        self._low_tmp = np.empty(
            (batch, 1 << low, 1 << low), dtype=np.complex128
        )
        # When the high group is as wide as the low one (n = 2 groups)
        # the two matrices coincide, so no second build is needed.
        self._shared_groups = high == low
        self._high_tmp = (
            np.empty((batch, 1 << high, 1 << high), dtype=np.complex128)
            if high and not self._shared_groups
            else None
        )
        # The two-gemm mixer stages through a scratch stack; sum_x
        # accumulates its high-group gemm through another.
        self._scratch = (
            np.empty((batch, dim), dtype=np.complex128) if high else None
        )
        self._sum_x_work = (
            np.empty((batch, dim), dtype=np.complex128) if high else None
        )
        # Per-layer forward caches for the adjoint sweep (phases and
        # group matrices), sized on first gradient call for depth p.
        self._phase_stack: Optional[np.ndarray] = None
        self._low_stack: Optional[np.ndarray] = None
        self._high_stack: Optional[np.ndarray] = None
        # Butterfly temporaries are exercised only when middle qubits
        # sit between the low and high gemm groups (n > 2 groups).
        self._butterfly: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if n > low + high:
            half = dim >> 1
            self._butterfly = (
                np.empty((batch, half), dtype=np.complex128),
                np.empty((batch, half), dtype=np.complex128),
            )

    # ------------------------------------------------------------------
    def expectations(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> np.ndarray:
        """``<psi_i| C_i |psi_i>`` for every instance — shape ``(K,)``."""
        gammas, betas = self._check_params(gammas, betas)
        psi = self._evolve(gammas, betas)
        np.multiply(self._diagonals, psi, out=self._work)
        _row_vdot(psi, self._work, self._row)
        return self._row.real.copy()

    def approximation_ratios(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> np.ndarray:
        """Per-instance expected cut divided by the exact optimum."""
        energies = self.expectations(gammas, betas)
        return np.array(
            [
                problem.approximation_ratio(energy)
                for problem, energy in zip(self.problems, energies)
            ]
        )

    def expectations_and_gradients(
        self, gammas: np.ndarray, betas: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Energies plus exact adjoint gradients for the whole stack.

        Returns ``(energies (K,), dE/dgamma (K, p), dE/dbeta (K, p))``;
        per instance, the same reverse sweep as the serial
        ``expectation_and_gradient``. The forward pass caches each
        layer's phase array and mixer group matrices; the backward
        sweep consumes them by conjugation (``exp(+i gamma C)`` is the
        conjugate of the cached ``exp(-i gamma C)``, ``RX(-2 beta)`` the
        conjugate of the cached ``RX(2 beta)``), halving the transcen-
        dental work per iteration.
        """
        gammas, betas = self._check_params(gammas, betas)
        p = gammas.shape[1]
        n = self.num_qubits
        diag = self._diagonals
        batch = self.num_instances
        dim = diag.shape[1]
        low = self._low_bits
        high = self._high_bits
        if self._phase_stack is None or self._phase_stack.shape[0] < p:
            self._phase_stack = np.empty(
                (p, batch, dim), dtype=np.complex128
            )
            self._low_stack = np.empty(
                (p, batch, 1 << low, 1 << low), dtype=np.complex128
            )
            self._high_stack = (
                np.empty(
                    (p, batch, 1 << high, 1 << high), dtype=np.complex128
                )
                if high and not self._shared_groups
                else None
            )
        phases = self._phase_stack
        low_stack = self._low_stack
        high_stack = self._high_stack

        # Forward pass, caching per-layer phases and group matrices.
        cur, nxt = self._psi, self._psi_alt
        np.copyto(cur, self._plus)
        for k in range(p):
            ph = self._phases_into(gammas[:, k], phases[k])
            cur *= ph
            low_groups = _batched_rx_group_matrices(
                low, betas[:, k], out=low_stack[k]
            )
            if self._shared_groups:
                high_groups = low_groups
            elif high:
                high_groups = _batched_rx_group_matrices(
                    high, betas[:, k], out=high_stack[k]
                )
            else:
                high_groups = None
            _batched_mixer_into(
                cur, nxt, n, betas[:, k], self._scratch, self._butterfly,
                low_groups=low_groups, high_groups=high_groups,
            )
            cur, nxt = nxt, cur
        psi, psi_alt = cur, nxt

        lam = self._lam
        lam_alt = self._lam_alt
        row = self._row
        np.multiply(diag, psi, out=lam)
        _row_vdot(psi, lam, row)
        energies = row.real.copy()
        grad_gamma = np.zeros((batch, p), dtype=np.float64)
        grad_beta = np.zeros((batch, p), dtype=np.float64)
        work = self._work

        for k in range(p - 1, -1, -1):
            # psi currently equals psi_k (state after layer k).
            _batched_sum_x_into(psi, n, work, self._sum_x_work)
            _row_vdot(lam, work, row)
            grad_beta[:, k] = 2.0 * row.imag
            # Undo the mixer on both vectors: the inverse group
            # matrices are the conjugate of the cached forward ones.
            inv_low = np.conjugate(low_stack[k], out=low_stack[k])
            if self._shared_groups:
                inv_high = inv_low
            elif high:
                inv_high = np.conjugate(high_stack[k], out=high_stack[k])
            else:
                inv_high = None
            _batched_mixer_into(
                psi, psi_alt, n, -betas[:, k], self._scratch,
                self._butterfly, low_groups=inv_low, high_groups=inv_high,
            )
            psi, psi_alt = psi_alt, psi
            _batched_mixer_into(
                lam, lam_alt, n, -betas[:, k], self._scratch,
                self._butterfly, low_groups=inv_low, high_groups=inv_high,
            )
            lam, lam_alt = lam_alt, lam
            np.multiply(diag, psi, out=work)
            _row_vdot(lam, work, row)
            grad_gamma[:, k] = 2.0 * row.imag
            # Undo the phase separator: conjugate of the cached phase.
            ph = np.conjugate(phases[k], out=phases[k])
            psi *= ph
            lam *= ph

        return energies, grad_gamma, grad_beta

    # ------------------------------------------------------------------
    def _phases_into(
        self, gammas_k: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Write ``exp(-i gammas_k[i] C_i)`` into ``out[i]``.

        Integral diagonals gather from a ``(K, max_cut+1)`` table of
        per-row value phases (bit-identical to the dense path — the
        same ``(-i gamma) * value`` products feed the same ``exp``);
        anything else computes the dense elementwise ``exp``.
        """
        if self._diag_int is not None:
            table = np.exp(
                (-1j * gammas_k)[:, None] * self._phase_values[None, :]
            )
            out[...] = table[self._gather_rows, self._diag_int]
        else:
            np.multiply(
                self._diagonals, (-1j * gammas_k)[:, None], out=out
            )
            np.exp(out, out=out)
        return out

    def _evolve(self, gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
        """Evolve the ``|+>`` stack through the depth-p ansatz.

        Ping-pongs the ``_psi``/``_psi_alt`` workspaces; the returned
        buffer is invalidated by the next evaluation.
        """
        cur, nxt = self._psi, self._psi_alt
        np.copyto(cur, self._plus)
        high = self._high_bits
        for k in range(gammas.shape[1]):
            cur *= self._phases_into(gammas[:, k], self._phase)
            low_groups = _batched_rx_group_matrices(
                self._low_bits, betas[:, k], out=self._low_tmp
            )
            if self._shared_groups:
                high_groups = low_groups
            elif high:
                high_groups = _batched_rx_group_matrices(
                    high, betas[:, k], out=self._high_tmp
                )
            else:
                high_groups = None
            _batched_mixer_into(
                cur, nxt, self.num_qubits, betas[:, k], self._scratch,
                self._butterfly, low_groups=low_groups,
                high_groups=high_groups,
            )
            cur, nxt = nxt, cur
        return cur

    def _check_params(
        self, gammas, betas
    ) -> Tuple[np.ndarray, np.ndarray]:
        gammas = np.asarray(gammas, dtype=np.float64)
        betas = np.asarray(betas, dtype=np.float64)
        if gammas.ndim != 2 or betas.ndim != 2:
            raise CircuitError(
                "batched gammas and betas must be (num_instances, p) arrays"
            )
        if gammas.shape != betas.shape:
            raise CircuitError(
                f"gamma/beta shape mismatch: {gammas.shape} vs {betas.shape}"
            )
        if gammas.shape[0] != self.num_instances:
            raise CircuitError(
                f"parameter stack has {gammas.shape[0]} rows for "
                f"{self.num_instances} instances"
            )
        if gammas.shape[1] == 0:
            raise CircuitError("depth p must be at least 1")
        return gammas, betas


# ----------------------------------------------------------------------
# Lock-step optimizers
# ----------------------------------------------------------------------
@dataclass
class BatchedOptimizationResult:
    """Per-instance outcome of a lock-step optimization.

    Attributes
    ----------
    gammas, betas:
        ``(K, p)`` parameter stacks (best iterate for Adam, final
        iterate for plain gradient descent — matching the serial
        optimizers).
    expectations:
        ``(K,)`` expectation at the returned parameters.
    histories:
        Per-instance expectation trace, one list per instance.
    iterations:
        ``(K,)`` iterations executed per instance (instances stop
        independently when ``tol`` is set).
    """

    gammas: np.ndarray
    betas: np.ndarray
    expectations: np.ndarray
    histories: List[List[float]] = field(default_factory=list)
    iterations: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )


def _stack_histories(
    trace: List[np.ndarray], iterations: np.ndarray
) -> List[List[float]]:
    """Split a per-iteration ``(K,)`` value trace into per-row lists.

    Row ``i`` keeps its first ``iterations[i]`` entries — instances that
    stopped early (per-row ``tol``) record nothing past their stop.
    """
    if not trace:
        return [[] for _ in range(len(iterations))]
    stacked = np.stack(trace, axis=0)
    return [
        [float(v) for v in stacked[: iterations[i], i]]
        for i in range(stacked.shape[1])
    ]


class BatchedAdamOptimizer:
    """Lock-step Adam ascent over a ``(K, 2p)`` parameter block.

    Per instance this performs exactly the serial
    :class:`~repro.qaoa.optimizers.AdamOptimizer` iteration — same
    moment updates, bias correction, best-iterate tracking and final
    re-evaluation — advanced for all instances in one vectorized step
    per iteration. With ``tol`` set, instances freeze independently once
    their per-iteration improvement drops below it (the batch keeps
    sweeping until every row has stopped).
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise OptimizationError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon

    def run(
        self,
        simulator: BatchedQAOASimulator,
        gammas: np.ndarray,
        betas: np.ndarray,
        max_iters: int = 500,
        tol: float = 0.0,
    ) -> BatchedOptimizationResult:
        """Maximize every instance's expectation from its own start."""
        gammas = np.array(gammas, dtype=np.float64, copy=True)
        betas = np.array(betas, dtype=np.float64, copy=True)
        if gammas.ndim != 2:
            raise OptimizationError("batched parameters must be (K, p)")
        batch, p = gammas.shape
        m = np.zeros((batch, 2 * p))
        v = np.zeros((batch, 2 * p))
        trace: List[np.ndarray] = []
        best_value = np.full(batch, -np.inf)
        best_gammas = gammas.copy()
        best_betas = betas.copy()
        previous = np.zeros(batch)
        have_previous = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)
        iterations = np.zeros(batch, dtype=np.int64)
        for step in range(1, max_iters + 1):
            value, grad_gamma, grad_beta = (
                simulator.expectations_and_gradients(gammas, betas)
            )
            trace.append(value)
            iterations[active] = step
            improved = active & (value > best_value)
            best_value[improved] = value[improved]
            best_gammas[improved] = gammas[improved]
            best_betas[improved] = betas[improved]
            gradient = np.concatenate([grad_gamma, grad_beta], axis=1)
            # Full-width moment math (cheap: (K, 2p)), masked writeback
            # so frozen rows keep their stopped state exactly.
            m_new = self.beta1 * m + (1 - self.beta1) * gradient
            v_new = self.beta2 * v + (1 - self.beta2) * gradient**2
            m_hat = m_new / (1 - self.beta1**step)
            v_hat = v_new / (1 - self.beta2**step)
            update = (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            )
            if active.all():
                m, v = m_new, v_new
                gammas = gammas + update[:, :p]
                betas = betas + update[:, p:]
            else:
                m[active] = m_new[active]
                v[active] = v_new[active]
                gammas[active] += update[active, :p]
                betas[active] += update[active, p:]
            if tol > 0:
                stopped = (
                    active
                    & have_previous
                    & (np.abs(value - previous) < tol)
                )
                active &= ~stopped
                if not active.any():
                    break
            previous = value
            have_previous |= True
        final_value = simulator.expectations(gammas, betas)
        better = final_value > best_value
        best_value[better] = final_value[better]
        best_gammas[better] = gammas[better]
        best_betas[better] = betas[better]
        return BatchedOptimizationResult(
            gammas=best_gammas,
            betas=best_betas,
            expectations=best_value,
            histories=_stack_histories(trace, iterations),
            iterations=iterations,
        )


class BatchedGradientDescentOptimizer:
    """Lock-step plain gradient ascent with a fixed step size.

    The vectorized twin of
    :class:`~repro.qaoa.optimizers.GradientDescentOptimizer`: returns
    the *final* iterate (no best tracking), with per-instance early
    stopping under ``tol``.
    """

    def __init__(self, learning_rate: float = 0.05):
        if learning_rate <= 0:
            raise OptimizationError("learning rate must be positive")
        self.learning_rate = learning_rate

    def run(
        self,
        simulator: BatchedQAOASimulator,
        gammas: np.ndarray,
        betas: np.ndarray,
        max_iters: int = 500,
        tol: float = 0.0,
    ) -> BatchedOptimizationResult:
        """Maximize every instance's expectation from its own start."""
        gammas = np.array(gammas, dtype=np.float64, copy=True)
        betas = np.array(betas, dtype=np.float64, copy=True)
        if gammas.ndim != 2:
            raise OptimizationError("batched parameters must be (K, p)")
        batch = gammas.shape[0]
        trace: List[np.ndarray] = []
        previous = np.zeros(batch)
        have_previous = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)
        iterations = np.zeros(batch, dtype=np.int64)
        for step in range(max_iters):
            value, grad_gamma, grad_beta = (
                simulator.expectations_and_gradients(gammas, betas)
            )
            trace.append(value)
            iterations[active] = step + 1
            if active.all():
                gammas = gammas + self.learning_rate * grad_gamma
                betas = betas + self.learning_rate * grad_beta
            else:
                gammas[active] += self.learning_rate * grad_gamma[active]
                betas[active] += self.learning_rate * grad_beta[active]
            if tol > 0:
                stopped = (
                    active
                    & have_previous
                    & (np.abs(value - previous) < tol)
                )
                active &= ~stopped
                if not active.any():
                    break
            previous = value
            have_previous |= True
        final_value = simulator.expectations(gammas, betas)
        return BatchedOptimizationResult(
            gammas=gammas,
            betas=betas,
            expectations=final_value,
            histories=_stack_histories(trace, iterations),
            iterations=iterations,
        )
