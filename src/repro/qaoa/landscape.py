"""QAOA parameter-landscape analysis tools.

The paper attributes its data-quality problem to "the inherently
complex optimization landscape of the QAOA algorithm" — random
initialization "may lead the optimizer into regions where not even
local optima exist". These utilities quantify that claim:

- :func:`grid_landscape` — evaluate the p=1 expectation on a
  (gamma, beta) grid.
- :func:`find_local_maxima` — count interior local maxima on the grid
  (the multimodality that defeats naive labeling).
- :func:`global_optimum_p1` — grid-seeded polish to the p=1 global
  optimum, the strongest label a dataset can carry.
- :func:`gradient_variance` — sampled gradient magnitude statistics, a
  barren-plateau style diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import OptimizationError
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class LandscapeGrid:
    """A gridded p=1 landscape.

    Attributes
    ----------
    gammas, betas:
        Grid axes.
    values:
        Expectation values, shape ``(len(gammas), len(betas))``.
    """

    gammas: np.ndarray
    betas: np.ndarray
    values: np.ndarray

    def best(self) -> Tuple[float, float, float]:
        """``(gamma, beta, value)`` of the best grid point."""
        index = np.unravel_index(int(self.values.argmax()), self.values.shape)
        return (
            float(self.gammas[index[0]]),
            float(self.betas[index[1]]),
            float(self.values[index]),
        )


def grid_landscape(
    simulator: QAOASimulator,
    gamma_points: int = 32,
    beta_points: int = 16,
    gamma_range: Tuple[float, float] = (0.0, np.pi),
    beta_range: Tuple[float, float] = (0.0, np.pi / 2),
) -> LandscapeGrid:
    """Evaluate the p=1 expectation on a rectangular grid.

    Default ranges are the canonical fundamental domain of unweighted
    Max-Cut (see :func:`repro.data.generation.canonicalize_angles`).
    """
    if gamma_points < 2 or beta_points < 2:
        raise OptimizationError("grid needs at least 2 points per axis")
    gammas = np.linspace(*gamma_range, gamma_points)
    betas = np.linspace(*beta_range, beta_points)
    values = np.zeros((gamma_points, beta_points))
    for i, gamma in enumerate(gammas):
        for j, beta in enumerate(betas):
            values[i, j] = simulator.expectation([gamma], [beta])
    return LandscapeGrid(gammas=gammas, betas=betas, values=values)


def find_local_maxima(grid: LandscapeGrid, tol: float = 1e-9) -> List[dict]:
    """Interior grid points that beat all 8 neighbors.

    A coarse but robust multimodality count; returns dicts with
    ``gamma``, ``beta`` and ``value`` sorted by value descending.
    """
    values = grid.values
    maxima = []
    for i in range(1, values.shape[0] - 1):
        for j in range(1, values.shape[1] - 1):
            window = values[i - 1:i + 2, j - 1:j + 2]
            if values[i, j] >= window.max() - tol:
                maxima.append(
                    {
                        "gamma": float(grid.gammas[i]),
                        "beta": float(grid.betas[j]),
                        "value": float(values[i, j]),
                    }
                )
    maxima.sort(key=lambda m: -m["value"])
    return maxima


def global_optimum_p1(
    simulator: QAOASimulator,
    gamma_points: int = 24,
    beta_points: int = 12,
    polish_iters: int = 150,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Grid-seeded polish: the strongest practical p=1 label.

    Evaluates a coarse grid over the fundamental domain, then runs Adam
    from the best grid point. Returns ``(gammas, betas, expectation)``.
    """
    grid = grid_landscape(simulator, gamma_points, beta_points)
    gamma0, beta0, _ = grid.best()
    result = AdamOptimizer().run(
        simulator,
        np.array([gamma0]),
        np.array([beta0]),
        max_iters=polish_iters,
    )
    return result.gammas, result.betas, result.expectation


def gradient_variance(
    simulator: QAOASimulator,
    p: int = 1,
    samples: int = 64,
    rng: RngLike = None,
) -> dict:
    """Gradient-magnitude statistics over random parameter draws.

    The vanishing of this quantity with system size is the barren
    plateau phenomenon; for the paper's shallow circuits it stays
    healthy, which this diagnostic lets a user verify.
    """
    generator = ensure_rng(rng)
    norms = []
    for _ in range(samples):
        gammas = generator.uniform(0, 2 * np.pi, p)
        betas = generator.uniform(0, np.pi / 2, p)
        _, grad_gamma, grad_beta = simulator.expectation_and_gradient(
            gammas, betas
        )
        norms.append(
            float(np.linalg.norm(np.concatenate([grad_gamma, grad_beta])))
        )
    norms = np.asarray(norms)
    return {
        "mean_norm": float(norms.mean()),
        "var_norm": float(norms.var()),
        "max_norm": float(norms.max()),
        "fraction_tiny": float((norms < 1e-3).mean()),
    }
