"""Fixed-angle conjecture angles for regular Max-Cut graphs.

The paper relabels part of its dataset with the fixed angles of Wurtz &
Lykov (PRA 104, 052419): universal (gamma, beta) per (degree, depth)
that perform near-optimally on *all* d-regular graphs, available in the
JPMorgan open-source library for degrees 3-11 — "about 6% of our
dataset".

Substitution (no network access to the published lookup tables): at
p = 1 the angles have the exact closed form ``gamma = arctan(1 /
sqrt(d-1))``, ``beta = pi/8`` (see :mod:`repro.qaoa.analytic`), which is
what the conjecture tabulates. For p >= 2 we regenerate *transfer
angles* the same way the original authors did — optimize on an ensemble
of random d-regular instances and keep the angles that maximize the mean
ratio — and cache them per (degree, depth). The coverage window (degrees
3-11) mirrors the paper's statement, so the "~6% coverage" ablation is
faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import FixedAngleLookupError, GraphError
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng

#: Degrees covered by the published fixed-angle tables.
MIN_COVERED_DEGREE = 3
MAX_COVERED_DEGREE = 11


@dataclass(frozen=True)
class FixedAngles:
    """A fixed-angle entry: parameters plus the ensemble ratio achieved."""

    degree: int
    p: int
    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]
    mean_ratio: float


class FixedAngleTable:
    """Lazy per-process cache of fixed angles keyed by (degree, depth)."""

    def __init__(
        self,
        ensemble_size: int = 8,
        ensemble_nodes: int = 12,
        optimizer_iters: int = 150,
        restarts: int = 4,
        rng: RngLike = None,
    ):
        self.ensemble_size = ensemble_size
        self.ensemble_nodes = ensemble_nodes
        self.optimizer_iters = optimizer_iters
        self.restarts = restarts
        self._rng = ensure_rng(rng if rng is not None else 20240305)
        self._cache: Dict[Tuple[int, int], FixedAngles] = {}

    def covers(self, degree: int, p: int = 1) -> bool:
        """True if (degree, p) is inside the published coverage window."""
        return MIN_COVERED_DEGREE <= degree <= MAX_COVERED_DEGREE and p >= 1

    def lookup(self, degree: int, p: int = 1) -> FixedAngles:
        """Fixed angles for depth-p QAOA on degree-d regular graphs.

        Raises :class:`FixedAngleLookupError` outside the coverage
        window, mirroring the paper's partial coverage.
        """
        if not self.covers(degree, p):
            raise FixedAngleLookupError(
                f"no fixed-angle entry for degree {degree}, p={p} "
                f"(coverage: degrees {MIN_COVERED_DEGREE}-{MAX_COVERED_DEGREE})"
            )
        key = (degree, p)
        if key not in self._cache:
            self._cache[key] = self._compute(degree, p)
        return self._cache[key]

    def _compute(self, degree: int, p: int) -> FixedAngles:
        if p == 1:
            gamma, beta = p1_optimal_angles_regular(degree)
            ensemble = self._ensemble(degree)
            ratios = [
                QAOASimulator(problem).approximation_ratio([gamma], [beta])
                for problem in ensemble
            ]
            return FixedAngles(
                degree=degree,
                p=1,
                gammas=(float(gamma),),
                betas=(float(beta),),
                mean_ratio=float(np.mean(ratios)),
            )
        return self._transfer_angles(degree, p)

    def _transfer_angles(self, degree: int, p: int) -> FixedAngles:
        """Optimize shared angles over an ensemble of random d-regular graphs."""
        ensemble = self._ensemble(degree)
        simulators = [QAOASimulator(problem) for problem in ensemble]
        optima = np.array([sim.problem.max_cut_value() for sim in simulators])

        def mean_ratio_and_grad(gammas, betas):
            total_ratio = 0.0
            grad_g = np.zeros(p)
            grad_b = np.zeros(p)
            for sim, optimum in zip(simulators, optima):
                value, gg, gb = sim.expectation_and_gradient(gammas, betas)
                total_ratio += value / optimum
                grad_g += gg / optimum
                grad_b += gb / optimum
            k = len(simulators)
            return total_ratio / k, grad_g / k, grad_b / k

        best: Optional[Tuple[float, np.ndarray, np.ndarray]] = None
        for restart in range(self.restarts):
            if restart == 0:
                # Seed with the p=1 closed form replicated and jittered.
                gamma1, beta1 = p1_optimal_angles_regular(degree)
                gammas = np.linspace(0.6, 1.2, p) * gamma1
                betas = np.linspace(1.2, 0.5, p) * beta1
            else:
                gammas = self._rng.uniform(0.0, np.pi / 2, size=p)
                betas = self._rng.uniform(0.0, np.pi / 4, size=p)
            optimizer = _EnsembleAdam(learning_rate=0.05)
            gammas, betas, ratio = optimizer.run(
                mean_ratio_and_grad, gammas, betas, self.optimizer_iters
            )
            if best is None or ratio > best[0]:
                best = (ratio, gammas, betas)
        ratio, gammas, betas = best
        return FixedAngles(
            degree=degree,
            p=p,
            gammas=tuple(float(g) for g in gammas),
            betas=tuple(float(b) for b in betas),
            mean_ratio=float(ratio),
        )

    def _ensemble(self, degree: int):
        problems = []
        attempts = 0
        while len(problems) < self.ensemble_size and attempts < 10 * self.ensemble_size:
            attempts += 1
            num_nodes = self.ensemble_nodes
            if (num_nodes * degree) % 2 != 0:
                num_nodes += 1
            if degree >= num_nodes:
                num_nodes = degree + 1 + ((degree + 1) * degree) % 2
            try:
                graph = random_regular_graph(num_nodes, degree, self._rng)
            except GraphError:
                continue
            problems.append(MaxCutProblem(graph))
        if not problems:
            raise FixedAngleLookupError(
                f"could not build a degree-{degree} ensemble"
            )
        return problems


class _EnsembleAdam:
    """Adam ascent on an arbitrary (value, grad_gamma, grad_beta) oracle."""

    def __init__(self, learning_rate: float = 0.05):
        self.learning_rate = learning_rate

    def run(self, oracle, gammas, betas, max_iters):
        p = len(gammas)
        m = np.zeros(2 * p)
        v = np.zeros(2 * p)
        best_ratio = -np.inf
        best = (np.asarray(gammas).copy(), np.asarray(betas).copy())
        gammas = np.asarray(gammas, dtype=np.float64).copy()
        betas = np.asarray(betas, dtype=np.float64).copy()
        for step in range(1, max_iters + 1):
            ratio, grad_g, grad_b = oracle(gammas, betas)
            if ratio > best_ratio:
                best_ratio = ratio
                best = (gammas.copy(), betas.copy())
            gradient = np.concatenate([grad_g, grad_b])
            m = 0.9 * m + 0.1 * gradient
            v = 0.999 * v + 0.001 * gradient**2
            m_hat = m / (1 - 0.9**step)
            v_hat = v / (1 - 0.999**step)
            update = self.learning_rate * m_hat / (np.sqrt(v_hat) + 1e-8)
            gammas = gammas + update[:p]
            betas = betas + update[p:]
        return best[0], best[1], best_ratio


_DEFAULT_TABLE: Optional[FixedAngleTable] = None


def default_table() -> FixedAngleTable:
    """Process-wide shared fixed-angle table."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        _DEFAULT_TABLE = FixedAngleTable()
    return _DEFAULT_TABLE


def lookup_fixed_angles(degree: int, p: int = 1) -> FixedAngles:
    """Convenience lookup against the shared table."""
    return default_table().lookup(degree, p)


def fixed_angles_for_graph(graph: Graph, p: int = 1) -> FixedAngles:
    """Fixed angles for a *regular* graph; raises if irregular/uncovered."""
    degree = graph.regular_degree()
    if degree is None:
        raise FixedAngleLookupError("fixed angles require a regular graph")
    return lookup_fixed_angles(degree, p)
