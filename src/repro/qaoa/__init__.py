"""QAOA core: simulator, gradients, optimizers, initialization, runner."""

from repro.qaoa.simulator import QAOASimulator
from repro.qaoa.batched import (
    BatchedAdamOptimizer,
    BatchedGradientDescentOptimizer,
    BatchedOptimizationResult,
    BatchedQAOASimulator,
)
from repro.qaoa.ansatz import build_qaoa_circuit, qaoa_resource_counts
from repro.qaoa.analytic import (
    p1_edge_expectation,
    p1_expectation,
    p1_optimal_angles_regular,
    p1_regular_triangle_free_expectation,
)
from repro.qaoa.optimizers import (
    AdamOptimizer,
    GradientDescentOptimizer,
    OptimizationResult,
    SPSAOptimizer,
    scipy_optimize,
)
from repro.qaoa.fixed_angles import (
    FixedAngleTable,
    FixedAngles,
    default_table,
    fixed_angles_for_graph,
    lookup_fixed_angles,
)
from repro.qaoa.initialization import (
    BETA_RANGE,
    GAMMA_RANGE,
    ConstantInitialization,
    FixedAngleInitialization,
    InitializationStrategy,
    LinearRampInitialization,
    RandomInitialization,
    WarmStartInitialization,
)
from repro.qaoa.runner import QAOAOutcome, QAOARunner
from repro.qaoa.landscape import (
    LandscapeGrid,
    find_local_maxima,
    global_optimum_p1,
    gradient_variance,
    grid_landscape,
)
from repro.qaoa.hamiltonians import (
    DiagonalProblem,
    IsingModel,
    QUBO,
    ising_to_maxcut,
    maxcut_to_ising,
)
from repro.qaoa.shots import ShotBasedSimulator
from repro.qaoa.interp import (
    fourier_coefficients,
    fourier_extend,
    fourier_schedule,
    interp_extend,
    interp_to_depth,
)

__all__ = [
    "QAOASimulator",
    "BatchedAdamOptimizer",
    "BatchedGradientDescentOptimizer",
    "BatchedOptimizationResult",
    "BatchedQAOASimulator",
    "build_qaoa_circuit",
    "qaoa_resource_counts",
    "p1_edge_expectation",
    "p1_expectation",
    "p1_optimal_angles_regular",
    "p1_regular_triangle_free_expectation",
    "AdamOptimizer",
    "GradientDescentOptimizer",
    "OptimizationResult",
    "SPSAOptimizer",
    "scipy_optimize",
    "FixedAngleTable",
    "FixedAngles",
    "default_table",
    "fixed_angles_for_graph",
    "lookup_fixed_angles",
    "BETA_RANGE",
    "GAMMA_RANGE",
    "ConstantInitialization",
    "FixedAngleInitialization",
    "InitializationStrategy",
    "LinearRampInitialization",
    "RandomInitialization",
    "WarmStartInitialization",
    "QAOAOutcome",
    "QAOARunner",
    "LandscapeGrid",
    "find_local_maxima",
    "global_optimum_p1",
    "gradient_variance",
    "grid_landscape",
    "DiagonalProblem",
    "IsingModel",
    "QUBO",
    "ising_to_maxcut",
    "maxcut_to_ising",
    "fourier_coefficients",
    "fourier_extend",
    "fourier_schedule",
    "interp_extend",
    "interp_to_depth",
    "ShotBasedSimulator",
]
