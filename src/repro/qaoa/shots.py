"""Shot-based (sampled) expectation estimation.

On hardware, ``<C>`` is estimated from a finite number of measurement
shots, so the optimizer sees a noisy objective. This estimator wraps
the exact simulator's output distribution with Born-rule sampling and
plugs into the gradient-free optimizers (SPSA is the intended partner —
its two-evaluation iteration is designed for exactly this noise).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng


class ShotBasedSimulator:
    """Estimates the QAOA expectation from ``shots`` samples.

    Exposes the ``expectation`` / ``approximation_ratio`` subset of the
    :class:`QAOASimulator` interface; gradient-based optimizers should
    keep using the exact simulator (``expectation_and_gradient`` is
    deliberately absent — parameter-shift from samples is out of scope).
    """

    def __init__(
        self,
        problem,
        shots: int = 1024,
        rng: RngLike = None,
    ):
        if shots < 1:
            raise CircuitError("shots must be positive")
        self.ideal = QAOASimulator(problem)
        self.problem = self.ideal.problem
        self.num_qubits = self.ideal.num_qubits
        self.shots = shots
        self._rng = ensure_rng(rng)

    def expectation(self, gammas, betas) -> float:
        """Sample-mean estimate of ``<C>``."""
        state = self.ideal.state(gammas, betas)
        samples = state.sample(self.shots, self._rng)
        diagonal = self.problem.cost_diagonal()
        return float(diagonal[samples].mean())

    def expectation_with_error(self, gammas, betas) -> Tuple[float, float]:
        """(estimate, standard error) of the sampled expectation."""
        state = self.ideal.state(gammas, betas)
        samples = state.sample(self.shots, self._rng)
        values = self.problem.cost_diagonal()[samples]
        stderr = float(values.std(ddof=1) / np.sqrt(self.shots)) if (
            self.shots > 1
        ) else float("inf")
        return float(values.mean()), stderr

    def approximation_ratio(self, gammas, betas) -> float:
        """Sampled expectation over the exact optimum."""
        return self.problem.approximation_ratio(
            self.expectation(gammas, betas)
        )

    def exact_expectation(self, gammas, betas) -> float:
        """The underlying noiseless value (for tests and diagnostics)."""
        return self.ideal.expectation(gammas, betas)
