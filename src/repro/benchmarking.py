"""Performance benchmarks with machine-readable trajectory output.

Two benchmark families quantify the hot paths this repo optimizes:

- **Kernel benchmarks** — the QAOA simulator's mixer and adjoint
  gradient at the paper's largest size (n=15, p=2), timed twice: once
  through the original ``np.flip``-based reference kernels ("before")
  and once through the optimized grouped-gemm kernels ("after").
  Both run in the same process on the same machine, so the recorded
  speedup is an honest like-for-like comparison.
- **Labeling benchmarks** — end-to-end ``generate_dataset`` throughput
  per runtime backend on one shared config, asserting along the way
  that every backend produces bit-identical records.
- **Serving benchmarks** — the online prediction service under
  concurrent load: cold throughput (every request a cache miss through
  the micro-batched model path), warm throughput (isomorphic repeats
  answered by the WL-canonical cache), hit rate, batch occupancy, and
  latency percentiles.
- **Training benchmarks** — epoch throughput of the trainer in three
  arms on one synthetic labeled dataset: the seed loop that rebuilds
  every ``GraphBatch`` from scratch ("before"), the cached
  :class:`~repro.data.compiled.CompiledDataset` path (bit-identical
  losses, asserted in-process), and the cached + CSR-kernel path
  (equivalence-tested losses). Recorded to its own trajectory,
  ``BENCH_2.json``, with the per-phase profiler breakdown of each arm.
- **Evaluation benchmarks** — full warm-start sweep throughput on the
  reference workload (100 mixed-size graphs, p=2) in two arms: the
  serial per-graph engine ("serial") and the size-bucketed lock-step
  engine ("batched", :mod:`repro.qaoa.batched`), with every per-graph
  approximation ratio equivalence-checked between arms. Recorded to
  its own trajectory, ``BENCH_3.json``.
- **Backend benchmarks** — the BENCH_4 training workload once per
  lazy-engine kernel backend (numpy reference, cstyle compiled-C,
  threaded tiles), arms interleaved with bit-identical loss traces
  asserted in-process. Recorded to its own trajectory,
  ``BENCH_6.json``, anchored against BENCH_4's lazy arm.

Results append to a ``BENCH_*.json`` *trajectory*: a JSON list with one
entry per run (timestamp, machine info, metrics), so successive PRs can
regress against the history instead of a single overwritten number.
:func:`run_benchmarks` stages every trajectory append until all
requested sections finish, then commits each file atomically — a
crash mid-run never leaves a partial entry behind.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.data.generation import GenerationConfig, generate_dataset
from repro.graphs.generators import random_connected_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.qaoa.simulator import (
    QAOASimulator,
    _apply_mixer_into,
    _apply_mixer_reference,
    _apply_sum_x_reference,
    _plus_amplitudes,
)
from repro.runtime import ParallelExecutor, default_worker_count
from repro.utils.logging import get_logger
from repro.utils.serialization import atomic_write_text

logger = get_logger(__name__)

PathLike = Union[str, Path]

#: Default trajectory file, at the repository root by convention.
DEFAULT_BENCH_PATH = "BENCH_1.json"

#: Training-throughput trajectory (separate file: the training arms are
#: a different benchmark family with their own before/after story).
DEFAULT_TRAINING_BENCH_PATH = "BENCH_2.json"

#: Evaluation-sweep trajectory (serial vs batched warm-start engine).
DEFAULT_EVALUATION_BENCH_PATH = "BENCH_3.json"

#: Fusion trajectory (lazy op-graph engine vs the eager oracle).
DEFAULT_FUSION_BENCH_PATH = "BENCH_4.json"

#: Scale-serving trajectory (thread-per-connection baseline vs the
#: async front-end + multi-process worker stack, over real HTTP).
DEFAULT_SCALE_BENCH_PATH = "BENCH_5.json"

#: Kernel-backend trajectory (numpy reference vs the cstyle compiled
#: backend vs its threaded-tile variant, same lazy engine throughout).
DEFAULT_BACKENDS_BENCH_PATH = "BENCH_6.json"

#: Size-generalization trajectory (a size-agnostic-feature GNN trained
#: on small graphs, scored on the p=1 closed form far above its
#: training sizes, against the fixed-angle and analytic baselines).
DEFAULT_TRANSFER_BENCH_PATH = "BENCH_7.json"

BENCH_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Timing primitives
# ----------------------------------------------------------------------
def time_callable(fn, repeats: int = 10, warmup: int = 1) -> Dict[str, float]:
    """Best/mean wall time of ``fn()`` over ``repeats`` runs, in seconds."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    best = min(samples)
    mean = sum(samples) / len(samples)
    return {
        "best_s": best,
        "mean_s": mean,
        "ops_per_second": 1.0 / mean if mean > 0 else 0.0,
        "repeats": repeats,
    }


def _reference_expectation_and_gradient(
    diagonal: np.ndarray,
    num_qubits: int,
    gammas: np.ndarray,
    betas: np.ndarray,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """The seed repo's adjoint-gradient loop on the reference kernels.

    Kept verbatim (allocation-per-step ``np.flip`` kernels) as the
    "before" arm of the kernel benchmark.
    """
    p = len(gammas)
    psi = _plus_amplitudes(num_qubits)
    for gamma, beta in zip(gammas, betas):
        psi = psi * np.exp(-1j * gamma * diagonal)
        psi = _apply_mixer_reference(psi, num_qubits, beta)
    energy = float(np.real(np.vdot(psi, diagonal * psi)))
    lam = diagonal * psi
    grad_gamma = np.zeros(p, dtype=np.float64)
    grad_beta = np.zeros(p, dtype=np.float64)
    for k in range(p - 1, -1, -1):
        b_psi = _apply_sum_x_reference(psi, num_qubits)
        grad_beta[k] = 2.0 * float(np.imag(np.vdot(lam, b_psi)))
        psi = _apply_mixer_reference(psi, num_qubits, -betas[k])
        lam = _apply_mixer_reference(lam, num_qubits, -betas[k])
        grad_gamma[k] = 2.0 * float(np.imag(np.vdot(lam, diagonal * psi)))
        phase = np.exp(1j * gammas[k] * diagonal)
        psi = psi * phase
        lam = lam * phase
    return energy, grad_gamma, grad_beta


# ----------------------------------------------------------------------
# Kernel benchmarks
# ----------------------------------------------------------------------
def bench_mixer_kernel(
    num_qubits: int = 15, repeats: int = 10, seed: int = 0
) -> Dict[str, object]:
    """Reference vs optimized full-layer mixer application."""
    rng = np.random.default_rng(seed)
    dim = 1 << num_qubits
    psi = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    psi /= np.linalg.norm(psi)
    beta = 0.37
    scratch = np.empty(dim, dtype=np.complex128)
    buffer = np.empty(dim, dtype=np.complex128)

    def run_reference():
        return _apply_mixer_reference(psi, num_qubits, beta)

    def run_optimized():
        return _apply_mixer_into(psi, buffer, num_qubits, beta, scratch)

    before = time_callable(run_reference, repeats=repeats)
    after = time_callable(run_optimized, repeats=repeats)
    return {
        "num_qubits": num_qubits,
        "before": before,
        "after": after,
        "speedup": before["mean_s"] / after["mean_s"]
        if after["mean_s"] > 0
        else float("inf"),
    }


def bench_gradient_kernel(
    num_qubits: int = 15,
    p: int = 2,
    degree: int = 4,
    repeats: int = 10,
    seed: int = 20240305,
) -> Dict[str, object]:
    """Reference vs optimized ``expectation_and_gradient`` at (n, p)."""
    graph = random_regular_graph(num_qubits, degree, rng=seed)
    simulator = QAOASimulator(graph)
    diagonal = simulator.problem.cost_diagonal()
    gammas = np.array([0.5, 0.8] * ((p + 1) // 2))[:p]
    betas = np.array([0.3, 0.2] * ((p + 1) // 2))[:p]

    def run_reference():
        return _reference_expectation_and_gradient(
            diagonal, num_qubits, gammas, betas
        )

    def run_optimized():
        return simulator.expectation_and_gradient(gammas, betas)

    e_ref, gg_ref, gb_ref = run_reference()
    e_opt, gg_opt, gb_opt = run_optimized()
    if not (
        np.isclose(e_ref, e_opt)
        and np.allclose(gg_ref, gg_opt)
        and np.allclose(gb_ref, gb_opt)
    ):
        raise AssertionError("optimized gradient disagrees with reference")

    before = time_callable(run_reference, repeats=repeats)
    after = time_callable(run_optimized, repeats=repeats)
    return {
        "num_qubits": num_qubits,
        "p": p,
        "before": before,
        "after": after,
        "speedup": before["mean_s"] / after["mean_s"]
        if after["mean_s"] > 0
        else float("inf"),
    }


# ----------------------------------------------------------------------
# Labeling throughput benchmarks
# ----------------------------------------------------------------------
def labeling_benchmark_config(
    num_graphs: int = 200, seed: int = 20240305
) -> GenerationConfig:
    """The shared config for labeling-throughput comparisons."""
    return GenerationConfig(
        num_graphs=num_graphs,
        min_nodes=4,
        max_nodes=10,
        optimizer_iters=40,
        seed=seed,
        progress_every=0,
    )


def bench_labeling(
    config: Optional[GenerationConfig] = None,
    backends: Iterable[str] = ("serial", "process"),
    workers: Optional[int] = None,
    verify_identical: bool = True,
    fault_tolerance_arm: bool = True,
) -> Dict[str, object]:
    """End-to-end ``generate_dataset`` wall time per backend.

    Runs the same config through every backend, records wall time and
    graphs/sec, computes speedup vs the serial run, and (by default)
    asserts that every backend's records are bit-identical to serial's.
    With ``fault_tolerance_arm`` a final run injects one deterministic
    failure into every task and retries it, asserting the retried run
    is still bit-identical and recording the retry overhead.
    """
    if config is None:
        config = labeling_benchmark_config()
    results: Dict[str, object] = {
        "num_graphs": config.num_graphs,
        "optimizer_iters": config.optimizer_iters,
        "node_range": [config.min_nodes, config.max_nodes],
        "backends": {},
    }
    reference_targets = None
    serial_wall = None
    for backend in backends:
        worker_count = (
            workers if workers is not None else default_worker_count(backend)
        )
        executor = ParallelExecutor(
            backend=backend, max_workers=worker_count, report_every=0
        )
        start = time.perf_counter()
        dataset = generate_dataset(config, executor=executor)
        wall = time.perf_counter() - start
        targets = np.asarray(dataset.targets())
        identical = None
        if reference_targets is None:
            reference_targets = targets
        elif verify_identical:
            identical = bool(np.array_equal(reference_targets, targets))
            if not identical:
                raise AssertionError(
                    f"backend {backend!r} produced records that differ "
                    "from the serial reference"
                )
        if backend == "serial":
            serial_wall = wall
        entry = {
            "workers": executor.max_workers,
            "wall_time_s": wall,
            "graphs_per_second": config.num_graphs / wall if wall > 0 else 0.0,
            "bit_identical_to_serial": identical,
        }
        results["backends"][backend] = entry
        logger.info(
            "labeling backend=%s workers=%d: %.2fs (%.1f graphs/s)",
            backend,
            executor.max_workers,
            wall,
            entry["graphs_per_second"],
        )
    if serial_wall is not None:
        for backend, entry in results["backends"].items():
            entry["speedup_vs_serial"] = (
                serial_wall / entry["wall_time_s"]
                if entry["wall_time_s"] > 0
                else float("inf")
            )
    if fault_tolerance_arm and reference_targets is not None:
        from repro.runtime import FaultInjector

        executor = ParallelExecutor(
            backend="serial", retries=1,
            fault_injector=FaultInjector(failure_rate=1.0),
        )
        start = time.perf_counter()
        dataset = generate_dataset(config, executor=executor)
        wall = time.perf_counter() - start
        identical = bool(
            np.array_equal(reference_targets, np.asarray(dataset.targets()))
        )
        if verify_identical and not identical:
            raise AssertionError(
                "fault-injected retried run produced records that differ "
                "from the fault-free reference"
            )
        stats = executor.last_report.as_dict()
        results["fault_tolerance"] = {
            "wall_time_s": wall,
            "retried": stats["retried"],
            "failed": stats["failed"],
            "bit_identical_to_reference": identical,
        }
        logger.info(
            "labeling fault-tolerance arm: %.2fs, %d retries, identical=%s",
            wall,
            stats["retried"],
            identical,
        )
    return results


# ----------------------------------------------------------------------
# Serving benchmarks
# ----------------------------------------------------------------------
def bench_serving(
    num_graphs: int = 32,
    threads: int = 8,
    seed: int = 20240305,
) -> Dict[str, object]:
    """Prediction-service throughput, cold (model) and warm (cache).

    Drives a :class:`~repro.serving.service.PredictionService` holding a
    small deterministic GIN model with ``threads`` concurrent clients:

    - **cold** — ``num_graphs`` distinct graphs, every one a cache miss
      answered through the micro-batched model forward;
    - **warm** — a relabeled (isomorphic) copy of each graph, every one
      a WL-canonical cache hit.

    Records wall time and requests/sec for both phases, the final cache
    hit rate, the micro-batcher's mean batch occupancy, and the service
    latency percentiles.
    """
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.serving import PredictionService, ServingConfig

    rng = np.random.default_rng(seed)
    # Irregular graphs: same-size regular graphs share a WL hash (by
    # design), which would make the "cold" phase partly warm.
    graphs = [
        random_connected_graph(
            int(rng.integers(6, 13)), rng=int(rng.integers(0, 2**31))
        )
        for _ in range(num_graphs)
    ]
    isomorphic = []
    for graph in graphs:
        perm = rng.permutation(graph.num_nodes)
        edges = [(int(perm[u]), int(perm[v])) for u, v in graph.edges]
        isomorphic.append(Graph.from_edges(graph.num_nodes, edges))

    model = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=16, rng=seed)
    model.eval()
    clients = ParallelExecutor(
        backend="thread", max_workers=threads, chunk_size=1, report_every=0
    )
    with PredictionService(
        model=model, config=ServingConfig(max_wait_ms=1.0)
    ) as service:
        start = time.perf_counter()
        clients.map(service.predict, graphs)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        clients.map(service.predict, isomorphic)
        warm_wall = time.perf_counter() - start
        snapshot = service.metrics_snapshot()

    batcher = snapshot.get("batcher", {}).get("default", {})
    return {
        "num_graphs": num_graphs,
        "threads": threads,
        "cold": {
            "wall_time_s": cold_wall,
            "requests_per_second": num_graphs / cold_wall
            if cold_wall > 0
            else 0.0,
        },
        "warm": {
            "wall_time_s": warm_wall,
            "requests_per_second": num_graphs / warm_wall
            if warm_wall > 0
            else 0.0,
        },
        "cache_hit_rate": snapshot["cache"]["hit_rate"],
        "batch_occupancy_mean": batcher.get("mean_occupancy", 0.0),
        "batches": batcher.get("batches", 0),
        "sources": snapshot["sources"],
        "latency": snapshot["latency"],
    }


def _scale_bench_graphs(num_graphs: int, seed: int):
    """Irregular connected graphs + prebuilt HTTP request bodies."""
    rng = np.random.default_rng(seed)
    graphs = [
        random_connected_graph(
            int(rng.integers(6, 13)), rng=int(rng.integers(0, 2**31))
        )
        for _ in range(num_graphs)
    ]
    return graphs


def bench_serving_scale(
    num_graphs: int = 32,
    workers: int = 2,
    duration_s: float = 2.0,
    levels: Tuple[int, ...] = (2, 4, 8),
    overload_factor: int = 10,
    seed: int = 20240305,
) -> Dict[str, object]:
    """Single-process HTTP serving vs the scale stack, over real HTTP.

    Three arms, all driven by the closed-loop load generator
    (:mod:`repro.serving.scale.loadgen`) against live servers on
    ephemeral ports:

    - **baseline** — the PR 2 thread-per-connection
      :class:`~repro.serving.http.ServingHTTPServer`, concurrency sweep
      -> max-sustainable-QPS;
    - **scale** — :class:`~repro.serving.scale.ScaleServingServer` with
      ``workers`` forked processes over shared weights, same sweep;
    - **overload** — the scale stack at ``overload_factor`` x its best
      concurrency: p99 must stay bounded (requests shed, not queued),
      only 200/503 statuses may appear, and every 503 must carry
      Retry-After.

    Also replays the workload through both stacks once and asserts the
    answers are bit-identical (the floats round-trip JSON exactly), so
    the reported speedup cannot come from answering differently.
    """
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.serving import PredictionService, ServingConfig, ServingHTTPServer
    from repro.serving.scale import (
        ScaleConfig,
        ScaleServingServer,
        WorkerPool,
        graph_request_bodies,
        run_load,
        sweep_concurrency,
    )

    graphs = _scale_bench_graphs(num_graphs, seed)
    bodies = graph_request_bodies(graphs)
    model = QAOAParameterPredictor(arch="gin", p=1, hidden_dim=16, rng=seed)
    model.eval()
    serving_config = ServingConfig(max_wait_ms=1.0)

    def collect_answers(port: int) -> list:
        import json as _json
        import urllib.request

        answers = []
        for body in bodies:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = _json.load(response)
            answers.append((payload["gammas"], payload["betas"]))
        return answers

    baseline_service = PredictionService(model=model, config=serving_config)
    baseline_server = ServingHTTPServer(
        baseline_service, port=0
    ).start_background()
    try:
        baseline_answers = collect_answers(baseline_server.port)
        baseline = sweep_concurrency(
            "127.0.0.1",
            baseline_server.port,
            bodies,
            levels,
            duration_s,
        )
    finally:
        baseline_server.close()

    scale_config = ScaleConfig(workers=workers)
    pool = WorkerPool(
        model=model,
        serving_config=serving_config,
        scale_config=scale_config,
    )
    scale_server = ScaleServingServer(
        pool, model=model, port=0, scale_config=scale_config
    )
    scale_server.start_background()
    try:
        scale_answers = collect_answers(scale_server.port)
        scale = sweep_concurrency(
            "127.0.0.1",
            scale_server.port,
            bodies,
            levels,
            duration_s,
        )
        overload = run_load(
            "127.0.0.1",
            scale_server.port,
            bodies,
            scale["best_concurrency"] * overload_factor,
            duration_s,
        )
    finally:
        scale_server.close()

    bit_identical = baseline_answers == scale_answers
    baseline_qps = baseline["max_sustainable_qps"]
    scale_qps = scale["max_sustainable_qps"]
    overload_clean = (
        set(overload["statuses"]) <= {"200", "503"}
        and overload["retry_after"]["missing"] == 0
        and overload["connection_errors"] == 0
    )
    return {
        "num_graphs": num_graphs,
        "workers": workers,
        "duration_s": duration_s,
        "levels": list(levels),
        "baseline": baseline,
        "scale": scale,
        "overload": {
            "concurrency": overload["concurrency"],
            "factor": overload_factor,
            "statuses": overload["statuses"],
            "p50_ms": overload["p50_ms"],
            "p99_ms": overload["p99_ms"],
            "max_ms": overload["max_ms"],
            "retry_after": overload["retry_after"],
            "connection_errors": overload["connection_errors"],
            "clean": overload_clean,
        },
        "bit_identical": bit_identical,
        "max_sustainable_qps": {
            "baseline": baseline_qps,
            "scale": scale_qps,
        },
        "speedup": scale_qps / baseline_qps if baseline_qps > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Training throughput benchmarks
# ----------------------------------------------------------------------
def training_benchmark_dataset(
    num_graphs: int = 128, seed: int = 20240305, p: int = 1
):
    """Synthetic labeled dataset for training-throughput comparisons.

    Random connected graphs (6–12 nodes, the paper's small-graph band)
    with random angle labels — the trainer only needs ``(graph,
    target)`` pairs, so skipping the QAOA labeling step keeps the
    benchmark about the training loop, not the simulator.
    """
    from repro.data.dataset import QAOADataset, QAOARecord

    rng = np.random.default_rng(seed)
    records = []
    for _ in range(num_graphs):
        graph = random_connected_graph(
            int(rng.integers(6, 13)), rng=int(rng.integers(0, 2**31))
        )
        gammas = tuple(float(x) for x in rng.uniform(0.0, np.pi, size=p))
        betas = tuple(float(x) for x in rng.uniform(0.0, np.pi / 2, size=p))
        records.append(
            QAOARecord(
                graph=graph,
                p=p,
                gammas=gammas,
                betas=betas,
                expectation=float(rng.uniform(0.5, 1.5)),
                optimal_value=2.0,
                approximation_ratio=float(rng.uniform(0.6, 0.95)),
            )
        )
    return QAOADataset(records)


def bench_training(
    num_graphs: int = 128,
    batch_size: int = 32,
    epochs: int = 8,
    arch: str = "gin",
    seed: int = 20240305,
    verify: bool = True,
) -> Dict[str, object]:
    """Epoch throughput of the trainer: seed loop vs cached vs cached+CSR.

    Three arms train the same model from the same initial weights with
    the same shuffling seed on one synthetic dataset:

    - ``before`` — the seed loop: ``compile_batches=False`` (every
      mini-batch rebuilt with ``GraphBatch.from_graphs``) under
      :func:`repro.nn.segment.reference_scatter` (the seed's
      ``np.add.at`` kernels);
    - ``cached`` — the default path: ``CompiledDataset`` batch cache
      plus the bincount scatter kernel;
    - ``cached_csr`` — cached batches plus CSR ``reduceat`` kernels on
      compile-time-sorted edges.

    With ``verify`` (default), asserts in-process that the cached arm's
    loss trace is **bit-identical** to ``before`` and the CSR arm's is
    numerically equivalent (``np.allclose``) — so the recorded speedup
    is a like-for-like comparison, not a different computation.
    """
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.nn.segment import reference_scatter
    from repro.pipeline.training import Trainer, TrainingConfig

    dataset = training_benchmark_dataset(num_graphs=num_graphs, seed=seed)

    def run_arm(
        compile_batches: bool,
        csr_kernels: bool,
        arm_epochs: int,
        reference: bool = False,
    ):
        model = QAOAParameterPredictor(arch=arch, p=dataset.depth(), rng=0)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=arm_epochs,
                batch_size=batch_size,
                seed=0,
                compile_batches=compile_batches,
                csr_kernels=csr_kernels,
                profile=True,
            ),
        )
        if reference:
            with reference_scatter():
                return trainer.fit(dataset)
        return trainer.fit(dataset)

    # Warm the allocator / BLAS paths so the first timed arm is not
    # penalized for going first.
    run_arm(True, True, arm_epochs=min(2, epochs))

    arms: Dict[str, object] = {}
    losses: Dict[str, List[float]] = {}
    for name, (compile_batches, csr_kernels, reference) in (
        ("before", (False, False, True)),
        ("cached", (True, False, False)),
        ("cached_csr", (True, True, False)),
    ):
        history = run_arm(
            compile_batches, csr_kernels, epochs, reference=reference
        )
        losses[name] = list(history.losses)
        mean_epoch = (
            sum(history.epoch_times) / len(history.epoch_times)
            if history.epoch_times
            else 0.0
        )
        arms[name] = {
            "wall_time_s": sum(history.epoch_times),
            "mean_epoch_s": mean_epoch,
            # Best epoch is the noise-robust statistic (cf.
            # ``time_callable``): background load only ever slows an
            # epoch down, so the minimum is the honest per-arm cost.
            "best_epoch_s": min(history.epoch_times, default=0.0),
            "epochs_per_second": history.epochs_per_second,
            "final_loss": history.final_loss,
            "profile": history.profile,
        }

    if verify:
        if not np.array_equal(losses["before"], losses["cached"]):
            raise AssertionError(
                "cached-batch loss trace is not bit-identical to the "
                "from-scratch reference"
            )
        if not np.allclose(losses["before"], losses["cached_csr"]):
            raise AssertionError(
                "CSR-kernel loss trace diverged from the reference"
            )
        arms["cached"]["bit_identical_to_before"] = True
        arms["cached_csr"]["equivalent_to_before"] = True

    before_epoch = arms["before"]["best_epoch_s"]
    for name in ("cached", "cached_csr"):
        arm_epoch = arms[name]["best_epoch_s"]
        arms[name]["speedup_vs_before"] = (
            before_epoch / arm_epoch if arm_epoch > 0 else float("inf")
        )
        logger.info(
            "training arm=%s: %.1f epochs/s (%.2fx vs before)",
            name,
            arms[name]["epochs_per_second"],
            arms[name]["speedup_vs_before"],
        )
    return {
        "num_graphs": num_graphs,
        "batch_size": batch_size,
        "epochs": epochs,
        "arch": arch,
        "arms": arms,
        # Headline: the default trainer path (cached batches + bincount
        # scatter, bit-identical losses) vs the seed loop.
        "speedup": arms["cached"]["speedup_vs_before"],
    }


def bench_fusion(
    num_graphs: int = 128,
    batch_size: int = 32,
    epochs: int = 8,
    arch: str = "gin",
    seed: int = 20240305,
    reps: int = 3,
    verify: bool = True,
    baseline_path: Optional[PathLike] = DEFAULT_TRAINING_BENCH_PATH,
) -> Dict[str, object]:
    """Epoch throughput of the lazy fused engine vs the eager oracle.

    Both arms run the BENCH_2 ``cached`` workload — 128 graphs, batch
    32, GIN, cached batch assembly (``compile_batches=True``), bincount
    scatter kernels (``csr_kernels=False``) — with the same initial
    weights and shuffling seed; the only difference is
    ``TrainingConfig(engine=...)``. Measurement protocol:

    - One shared :class:`~repro.data.compiled.CompiledDataset` serves
      every fit, so all arms draw identical cached batches.
    - A full-length lazy warmup fit runs first. Each fit reseeds the
      shuffle rng, so the warmup visits exactly the batch shapes the
      timed fits will — the timed lazy arm runs 100% plan-cache hits.
    - The arms are interleaved ``reps`` times in one process and the
      per-arm statistic is the best epoch across all reps (background
      load only ever slows an epoch down), so the comparison shares
      whatever noise the machine has.

    The lazy arm records the engine counter deltas over its timed reps
    (fused kernel count, recorded op count, plan hit/miss, peak
    temporary bytes) plus a separate profiled fit whose per-phase
    report carries the allocator accounting — so the trajectory shows
    *why* the engine is fast, not just that it is.

    ``baseline_path`` names a ``BENCH_2.json`` trajectory; when it
    exists, the recorded ``cached`` arm of its latest training entry
    becomes the cross-PR baseline and the headline
    ``speedup_vs_bench2_cached`` is computed against it.

    With ``verify`` (default), asserts in-process that the two arms'
    loss traces are **bit-identical**: the lazy engine's contract is
    the same bits as op-at-a-time numpy, not merely close ones.
    """
    from repro.data.compiled import CompiledDataset
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.nn.realize import counters as engine_counters
    from repro.pipeline.training import Trainer, TrainingConfig

    dataset = training_benchmark_dataset(num_graphs=num_graphs, seed=seed)
    probe = QAOAParameterPredictor(arch=arch, p=dataset.depth(), rng=0)
    shared = CompiledDataset(
        list(dataset),
        feature_kind="degree_onehot",
        max_nodes=probe.in_dim,
        build_plans=False,
    )

    def run_arm(engine: str, arm_epochs: int, profile: bool = False):
        model = QAOAParameterPredictor(arch=arch, p=dataset.depth(), rng=0)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=arm_epochs,
                batch_size=batch_size,
                seed=0,
                compile_batches=True,
                csr_kernels=False,
                profile=profile,
                engine=engine,
            ),
        )
        return trainer.fit(dataset, compiled=shared)

    # Warm plan cache, batch memo, allocator, and BLAS paths. The full
    # lazy warmup matters: every fit replays the same seed-0 shuffle
    # sequence, so after it the timed lazy fits compile nothing.
    run_arm("lazy", arm_epochs=epochs)
    run_arm("eager", arm_epochs=min(2, epochs))

    epoch_times: Dict[str, List[float]] = {"eager": [], "lazy": []}
    losses: Dict[str, List[float]] = {}
    engine_counters.push_mark()
    mark = engine_counters.snapshot()
    lazy_counted = {key: 0 for key in (
        "kernels", "ops", "views", "realizes",
        "plan_hits", "plan_misses", "temp_bytes",
    )}
    for _ in range(max(1, reps)):
        for name in ("eager", "lazy"):
            if name == "lazy":
                before = engine_counters.snapshot()
            history = run_arm(name, epochs)
            if name == "lazy":
                now = engine_counters.snapshot()
                for key in lazy_counted:
                    lazy_counted[key] += now[key] - before[key]
            epoch_times[name].extend(history.epoch_times)
            losses[name] = list(history.losses)
    peak_temp_bytes = engine_counters.pop_mark()
    del mark

    timed_reps = max(1, reps)
    engine_stats = {
        key: value // timed_reps for key, value in lazy_counted.items()
    }
    engine_stats["peak_temp_bytes"] = peak_temp_bytes
    engine_stats["fusion_ratio"] = (
        engine_stats["ops"] / engine_stats["kernels"]
        if engine_stats["kernels"]
        else 0.0
    )

    arms: Dict[str, object] = {}
    for name in ("eager", "lazy"):
        times = epoch_times[name]
        best = min(times, default=0.0)
        total = sum(times)
        profiled = run_arm(name, epochs, profile=True)
        arms[name] = {
            "wall_time_s": total,
            "mean_epoch_s": total / len(times) if times else 0.0,
            # Best epoch is the noise-robust statistic (cf.
            # ``time_callable``): background load only ever slows an
            # epoch down, so the minimum is the honest per-arm cost.
            "best_epoch_s": best,
            "epochs_per_second": 1.0 / best if best > 0 else 0.0,
            "timed_reps": timed_reps,
            "final_loss": losses[name][-1] if losses.get(name) else 0.0,
            "profile": profiled.profile,
        }
    arms["lazy"]["engine_counters"] = engine_stats

    if verify:
        if not np.array_equal(losses["eager"], losses["lazy"]):
            raise AssertionError(
                "lazy-engine loss trace is not bit-identical to the "
                "eager oracle"
            )
        arms["lazy"]["bit_identical_to_eager"] = True

    eager_epoch = arms["eager"]["best_epoch_s"]
    lazy_epoch = arms["lazy"]["best_epoch_s"]
    speedup = eager_epoch / lazy_epoch if lazy_epoch > 0 else float("inf")
    arms["lazy"]["speedup_vs_eager"] = speedup

    baseline = _bench2_cached_baseline(
        baseline_path, num_graphs=num_graphs, batch_size=batch_size,
        arch=arch,
    )
    speedup_vs_bench2 = None
    if baseline is not None:
        base_epoch = baseline.get("best_epoch_s") or 0.0
        if base_epoch and lazy_epoch > 0:
            speedup_vs_bench2 = base_epoch / lazy_epoch
            arms["lazy"]["speedup_vs_bench2_cached"] = speedup_vs_bench2

    stats = engine_stats
    logger.info(
        "fusion arm=lazy: %.1f epochs/s (%.2fx vs eager%s), "
        "%d ops -> %d kernels (%.2f ops/kernel), peak temp %.1f MB",
        arms["lazy"]["epochs_per_second"],
        speedup,
        (
            f", {speedup_vs_bench2:.2f}x vs BENCH_2 cached"
            if speedup_vs_bench2
            else ""
        ),
        stats["ops"],
        stats["kernels"],
        stats["fusion_ratio"],
        stats["peak_temp_bytes"] / 1e6,
    )
    results: Dict[str, object] = {
        "num_graphs": num_graphs,
        "batch_size": batch_size,
        "epochs": epochs,
        "reps": timed_reps,
        "arch": arch,
        "arms": arms,
        # Headline: the default engine (lazy, fused, bit-identical
        # losses) vs running the same training loop op-at-a-time.
        "speedup": speedup,
        "fused_kernels": stats["kernels"],
        "recorded_ops": stats["ops"],
        "peak_temp_bytes": stats["peak_temp_bytes"],
    }
    if baseline is not None:
        results["bench2_cached_baseline"] = baseline
    if speedup_vs_bench2 is not None:
        results["speedup_vs_bench2_cached"] = speedup_vs_bench2
    return results


def _bench2_cached_baseline(
    path: Optional[PathLike],
    num_graphs: Optional[int] = None,
    batch_size: Optional[int] = None,
    arch: Optional[str] = None,
) -> Optional[dict]:
    """Latest recorded ``cached`` training arm from a BENCH_2 trajectory.

    Only entries whose workload matches ``num_graphs``/``batch_size``/
    ``arch`` (when given) qualify — a cross-PR throughput ratio is only
    meaningful against the *same* training job. Returns
    ``{"best_epoch_s", "epochs_per_second", "run", "timestamp"}`` or
    ``None`` when the trajectory is missing or holds no matching entry
    — the fusion benchmark then simply skips the cross-PR ratio.
    """
    if path is None or not Path(path).exists():
        return None
    try:
        trajectory = load_trajectory(path)
    except (ValueError, json.JSONDecodeError):
        return None
    for entry in reversed(trajectory):
        training = entry.get("results", {}).get("training")
        if not training:
            continue
        if num_graphs is not None and training.get("num_graphs") != num_graphs:
            continue
        if batch_size is not None and training.get("batch_size") != batch_size:
            continue
        if arch is not None and training.get("arch") != arch:
            continue
        cached = training.get("arms", {}).get("cached")
        if not cached:
            continue
        return {
            "best_epoch_s": cached.get("best_epoch_s"),
            "epochs_per_second": cached.get("epochs_per_second"),
            "run": entry.get("run"),
            "timestamp": entry.get("timestamp"),
        }
    return None


def bench_backends(
    num_graphs: int = 128,
    batch_size: int = 32,
    epochs: int = 8,
    arch: str = "gin",
    seed: int = 20240305,
    reps: int = 3,
    verify: bool = True,
    baseline_path: Optional[PathLike] = DEFAULT_FUSION_BENCH_PATH,
) -> Dict[str, object]:
    """Epoch throughput of the lazy engine across kernel backends.

    The same BENCH_2/BENCH_4 ``cached`` training workload, run once per
    backend — ``numpy`` (the reference per-op kernels), ``cstyle``
    (fused groups compiled to C via cffi), ``threaded`` (the same
    kernels with the outer loop tiled across a thread pool) — under the
    BENCH_4 measurement protocol: one shared
    :class:`~repro.data.compiled.CompiledDataset`, a full-length warmup
    fit per arm (the realize plan cache is keyed by backend, so every
    arm's plans — and the compiled arms' C kernels — stay warm across
    switches), arms interleaved ``reps`` times, best epoch as the
    per-arm statistic.

    Each arm records its engine counter deltas, so the trajectory
    shows *what ran*: ``compiled_kernels`` (fused groups executing as
    one C call), per-backend kernel counts, and kernel-cache traffic.
    On a box without a C toolchain only the ``numpy`` arm runs; the
    skipped arms are recorded with ``"available": False`` rather than
    silently measuring numpy three times.

    ``baseline_path`` names a ``BENCH_4.json`` trajectory; its latest
    matching ``lazy`` arm (the lazy-engine-over-numpy record) becomes
    the cross-PR baseline for ``speedup_vs_bench4_lazy``.

    With ``verify`` (default), every arm's loss trace must be
    bit-identical to the numpy arm's: compiled backends promise the
    same bits, not merely close ones.
    """
    from repro.data.compiled import CompiledDataset
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.nn.backends import BACKEND_NAMES, set_backend
    from repro.nn.realize import counters as engine_counters
    from repro.pipeline.training import Trainer, TrainingConfig

    dataset = training_benchmark_dataset(num_graphs=num_graphs, seed=seed)
    probe = QAOAParameterPredictor(arch=arch, p=dataset.depth(), rng=0)
    shared = CompiledDataset(
        list(dataset),
        feature_kind="degree_onehot",
        max_nodes=probe.in_dim,
        build_plans=False,
    )

    def run_arm(arm_epochs: int, profile: bool = False):
        model = QAOAParameterPredictor(arch=arch, p=dataset.depth(), rng=0)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=arm_epochs,
                batch_size=batch_size,
                seed=0,
                compile_batches=True,
                csr_kernels=False,
                profile=profile,
                engine="lazy",
            ),
        )
        return trainer.fit(dataset, compiled=shared)

    counted_keys = ("kernels", "ops", "realizes")
    warmup_keys = (
        "compiled_kernels", "kernel_cache_hits", "kernel_cache_misses",
    )
    arm_names: List[str] = []
    unavailable: List[str] = []
    for name in BACKEND_NAMES:
        if set_backend(name) == name:
            arm_names.append(name)
        else:
            unavailable.append(name)

    try:
        # Warmup: every arm compiles its plans (and, for the compiled
        # backends, its C kernels) against exactly the batch shapes the
        # timed fits will replay. Compile-time counters only move here
        # — the timed fits below are 100% plan-cache hits — so the
        # warmup deltas are where kernel counts and cache traffic live.
        warmup: Dict[str, Dict[str, float]] = {}
        for name in arm_names:
            set_backend(name)
            before = engine_counters.snapshot()
            run_arm(epochs)
            now = engine_counters.snapshot()
            warmup[name] = {
                key: now[key] - before[key] for key in warmup_keys
            }
            warmup[name]["compile_seconds"] = round(
                now["compile_seconds"] - before["compile_seconds"], 6
            )

        epoch_times: Dict[str, List[float]] = {n: [] for n in arm_names}
        losses: Dict[str, List[float]] = {}
        counted = {
            n: {key: 0 for key in counted_keys} for n in arm_names
        }
        executed_compiled = {n: 0 for n in arm_names}
        for _ in range(max(1, reps)):
            for name in arm_names:
                set_backend(name)
                before = engine_counters.snapshot()
                history = run_arm(epochs)
                now = engine_counters.snapshot()
                for key in counted_keys:
                    counted[name][key] += now[key] - before[key]
                # Kernel executions attributed to this backend (numpy
                # remainders of a compiled plan stay under "numpy").
                if name != "numpy":
                    backend_key = f"kernels_{name}"
                    executed_compiled[name] += now.get(
                        backend_key, 0
                    ) - before.get(backend_key, 0)
                epoch_times[name].extend(history.epoch_times)
                losses[name] = list(history.losses)
    finally:
        set_backend("numpy")

    timed_reps = max(1, reps)
    arms: Dict[str, object] = {}
    for name in arm_names:
        times = epoch_times[name]
        best = min(times, default=0.0)
        total = sum(times)
        stats = {
            key: value // timed_reps for key, value in counted[name].items()
        }
        stats["compiled_kernels"] = executed_compiled[name] // timed_reps
        stats["compiled_coverage"] = (
            stats["compiled_kernels"] / stats["kernels"]
            if stats["kernels"]
            else 0.0
        )
        stats["warmup"] = warmup[name]
        arms[name] = {
            "available": True,
            "wall_time_s": total,
            "mean_epoch_s": total / len(times) if times else 0.0,
            "best_epoch_s": best,
            "epochs_per_second": 1.0 / best if best > 0 else 0.0,
            "timed_reps": timed_reps,
            "final_loss": losses[name][-1] if losses.get(name) else 0.0,
            "engine_counters": stats,
        }
    for name in unavailable:
        arms[name] = {"available": False}

    if verify:
        for name in arm_names:
            if name == "numpy":
                continue
            if not np.array_equal(losses["numpy"], losses[name]):
                raise AssertionError(
                    f"{name} backend loss trace is not bit-identical "
                    "to the numpy backend"
                )
            arms[name]["bit_identical_to_numpy"] = True

    numpy_epoch = arms["numpy"]["best_epoch_s"]
    best_compiled: Optional[str] = None
    for name in arm_names:
        if name == "numpy":
            continue
        arm_epoch = arms[name]["best_epoch_s"]
        arms[name]["speedup_vs_numpy"] = (
            numpy_epoch / arm_epoch if arm_epoch > 0 else float("inf")
        )
        if best_compiled is None or (
            arms[name]["epochs_per_second"]
            > arms[best_compiled]["epochs_per_second"]
        ):
            best_compiled = name

    baseline = _bench4_lazy_baseline(
        baseline_path, num_graphs=num_graphs, batch_size=batch_size,
        arch=arch,
    )
    speedup_vs_bench4 = None
    if baseline is not None and best_compiled is not None:
        base_epoch = baseline.get("best_epoch_s") or 0.0
        arm_epoch = arms[best_compiled]["best_epoch_s"]
        if base_epoch and arm_epoch > 0:
            speedup_vs_bench4 = base_epoch / arm_epoch
            arms[best_compiled]["speedup_vs_bench4_lazy"] = speedup_vs_bench4

    for name in arm_names:
        stats = arms[name]["engine_counters"]
        logger.info(
            "backends arm=%s: %.1f epochs/s%s, %d kernels "
            "(%d compiled, %.0f%% coverage)",
            name,
            arms[name]["epochs_per_second"],
            (
                f" ({arms[name]['speedup_vs_numpy']:.2f}x vs numpy)"
                if name != "numpy"
                else ""
            ),
            stats["kernels"],
            stats["compiled_kernels"],
            100.0 * stats["compiled_coverage"],
        )

    results: Dict[str, object] = {
        "num_graphs": num_graphs,
        "batch_size": batch_size,
        "epochs": epochs,
        "reps": timed_reps,
        "arch": arch,
        "arms": arms,
    }
    if best_compiled is not None:
        results["best_compiled"] = best_compiled
        results["speedup"] = arms[best_compiled]["speedup_vs_numpy"]
    if baseline is not None:
        results["bench4_lazy_baseline"] = baseline
    if speedup_vs_bench4 is not None:
        results["speedup_vs_bench4_lazy"] = speedup_vs_bench4
    return results


def bench_backends_suite(
    num_graphs: int = 128,
    batch_size: int = 32,
    full_batch_size: Optional[int] = None,
    epochs: int = 8,
    arch: str = "gin",
    seed: int = 20240305,
    reps: int = 3,
    verify: bool = True,
    baseline_path: Optional[PathLike] = DEFAULT_FUSION_BENCH_PATH,
) -> Dict[str, object]:
    """Backend sweep over two workloads, recorded as one BENCH_6 entry.

    The top-level fields replay the exact BENCH_2/BENCH_4 workload
    (``batch_size`` mini-batches), so ``speedup_vs_bench4_lazy`` stays
    an apples-to-apples cross-PR comparison. That workload is
    front-end bound: at small batches the per-batch graph build and
    plan-cache walk — identical across backends — dominate the epoch,
    so it understates what the compiled kernels themselves buy.

    The ``full_batch`` section reruns the same sweep (same graphs,
    same protocol, all arms interleaved) with ``full_batch_size``
    rows per batch — default one batch per epoch — where kernel
    execution dominates the epoch. Its per-arm ``speedup_vs_numpy``
    is the compiled-vs-lazy-numpy ratio on that workload and is the
    headline compiled-backend number.
    """
    results = bench_backends(
        num_graphs=num_graphs,
        batch_size=batch_size,
        epochs=epochs,
        arch=arch,
        seed=seed,
        reps=reps,
        verify=verify,
        baseline_path=baseline_path,
    )
    full_bs = full_batch_size or num_graphs
    if full_bs != batch_size:
        results["full_batch"] = bench_backends(
            num_graphs=num_graphs,
            batch_size=full_bs,
            epochs=epochs,
            arch=arch,
            seed=seed,
            reps=reps,
            verify=verify,
            baseline_path=None,
        )
    return results


def _bench4_lazy_baseline(
    path: Optional[PathLike],
    num_graphs: Optional[int] = None,
    batch_size: Optional[int] = None,
    arch: Optional[str] = None,
) -> Optional[dict]:
    """Latest recorded ``lazy`` fusion arm from a BENCH_4 trajectory.

    The backend sweep's cross-PR anchor: BENCH_4's lazy arm is the
    engine running on the numpy backend, so the ratio isolates what
    *compilation* buys on the identical workload. Matching and shape
    mirror :func:`_bench2_cached_baseline`.
    """
    if path is None or not Path(path).exists():
        return None
    try:
        trajectory = load_trajectory(path)
    except (ValueError, json.JSONDecodeError):
        return None
    for entry in reversed(trajectory):
        fusion = entry.get("results", {}).get("fusion")
        if not fusion:
            continue
        if num_graphs is not None and fusion.get("num_graphs") != num_graphs:
            continue
        if batch_size is not None and fusion.get("batch_size") != batch_size:
            continue
        if arch is not None and fusion.get("arch") != arch:
            continue
        lazy = fusion.get("arms", {}).get("lazy")
        if not lazy:
            continue
        return {
            "best_epoch_s": lazy.get("best_epoch_s"),
            "epochs_per_second": lazy.get("epochs_per_second"),
            "run": entry.get("run"),
            "timestamp": entry.get("timestamp"),
        }
    return None


# ----------------------------------------------------------------------
# Evaluation throughput benchmarks
# ----------------------------------------------------------------------
def evaluation_benchmark_graphs(
    num_graphs: int = 100, seed: int = 20240305
) -> List[Graph]:
    """Reference evaluation workload: mixed-size connected graphs.

    Sizes 6–12 nodes, the paper's small-graph band — mixed sizes on
    purpose, so the batched engine has to bucket rather than getting one
    uniform ``(K, 2^n)`` block for free.
    """
    rng = np.random.default_rng(seed)
    return [
        random_connected_graph(
            int(rng.integers(6, 13)),
            rng=int(rng.integers(0, 2**31)),
            name=f"eval-{i}",
        )
        for i in range(num_graphs)
    ]


def bench_evaluation(
    num_graphs: int = 100,
    p: int = 2,
    optimizer_iters: int = 60,
    max_bucket: int = 64,
    seed: int = 20240305,
    repeats: int = 1,
    verify: bool = True,
    verify_tol: float = 1e-10,
) -> Dict[str, object]:
    """Warm-start sweep throughput: serial engine vs batched engine.

    Both arms run the full paired comparison (random init vs an
    untrained GIN predictor's warm start) over the same graphs with the
    same evaluator seed, so they perform the same experiment. With
    ``verify`` (default), every per-graph approximation ratio (final
    and initial, both arms of the comparison) must agree between the
    engines to within ``verify_tol`` — in practice they agree to a few
    ulp — so the recorded speedup is a like-for-like comparison.
    """
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.pipeline.evaluation import WarmStartEvaluator
    from repro.profiling import EvaluationProfiler

    graphs = evaluation_benchmark_graphs(num_graphs=num_graphs, seed=seed)
    model = QAOAParameterPredictor(arch="gin", p=p, hidden_dim=16, rng=seed)
    model.eval()
    strategy = model.as_initialization()

    def sweep(batched: bool, profiler):
        evaluator = WarmStartEvaluator(
            p=p,
            optimizer_iters=optimizer_iters,
            rng=seed,
            batched=batched,
            max_bucket=max_bucket,
            profiler=profiler,
        )
        return evaluator.evaluate_strategy(graphs, strategy, "gnn_warm")

    arms: Dict[str, object] = {}
    results: Dict[str, object] = {}
    for name, batched in (("serial", False), ("batched", True)):
        samples = []
        result = None
        profiler = None
        for _ in range(repeats):
            profiler = EvaluationProfiler()
            start = time.perf_counter()
            result = sweep(batched, profiler)
            samples.append(time.perf_counter() - start)
        results[name] = result
        best = min(samples)
        mean = sum(samples) / len(samples)
        arms[name] = {
            "wall_time_s": mean,
            "best_wall_s": best,
            # Best run is the noise-robust statistic (cf.
            # ``time_callable``): background load only slows a sweep.
            "graphs_per_second": num_graphs / best if best > 0 else 0.0,
            "repeats": repeats,
            "profile": profiler.report() if profiler is not None else None,
        }
        logger.info(
            "evaluation arm=%s: %.2fs (%.1f graphs/s)",
            name,
            best,
            arms[name]["graphs_per_second"],
        )

    max_abs_diff = None
    if verify:
        diffs = []
        for a, b in zip(
            results["serial"].comparisons, results["batched"].comparisons
        ):
            diffs.extend(
                (
                    abs(a.random_ratio - b.random_ratio),
                    abs(a.strategy_ratio - b.strategy_ratio),
                    abs(a.random_initial_ratio - b.random_initial_ratio),
                    abs(a.strategy_initial_ratio - b.strategy_initial_ratio),
                )
            )
        max_abs_diff = max(diffs)
        if max_abs_diff > verify_tol:
            raise AssertionError(
                f"batched evaluation diverged from serial: max per-graph "
                f"ratio difference {max_abs_diff:.3e} > {verify_tol:.0e}"
            )
        arms["batched"]["max_abs_diff_vs_serial"] = max_abs_diff

    serial_best = arms["serial"]["best_wall_s"]
    batched_best = arms["batched"]["best_wall_s"]
    speedup = serial_best / batched_best if batched_best > 0 else float("inf")
    arms["batched"]["speedup_vs_serial"] = speedup
    logger.info("evaluation batched speedup: %.2fx", speedup)
    return {
        "num_graphs": num_graphs,
        "p": p,
        "optimizer_iters": optimizer_iters,
        "max_bucket": max_bucket,
        "arms": arms,
        "speedup": speedup,
    }


# ----------------------------------------------------------------------
# Size-generalization benchmarks
# ----------------------------------------------------------------------
def bench_transfer(
    node_sizes: Tuple[int, ...] = (50, 100, 200),
    degree: int = 3,
    graphs_per_size: int = 3,
    train_graphs: int = 96,
    train_min_nodes: int = 6,
    train_max_nodes: int = 10,
    epochs: int = 40,
    feature_kind: str = "structural",
    arch: str = "gin",
    seed: int = 20240305,
) -> Dict[str, object]:
    """Size generalization: train small, score far above training size.

    End-to-end arm for the claim the n<=15 cap-lift makes: a GNN with a
    size-agnostic feature kind, trained *only* on graphs of
    ``train_min_nodes``–``train_max_nodes`` nodes, predicts useful
    angles for graphs an order of magnitude larger.

    - Labels come from the analytic-p1 surface
      (``label_method="analytic-p1"``), the same oracle the transfer
      evaluation scores against, so train and test targets live on one
      surface.
    - Transfer scoring (:func:`repro.pipeline.transfer
      .evaluate_size_transfer`) reports, per size, the model's mean
      expectation ratio against the per-instance p=1 optimum next to
      the degree-d fixed-angle baseline's ratio — no statevector
      anywhere, so 200-node graphs are cheap.

    Records training/labeling/evaluation wall times alongside the
    ratios; deterministic for a fixed seed.
    """
    from repro.gnn.predictor import QAOAParameterPredictor
    from repro.pipeline.training import Trainer, TrainingConfig
    from repro.pipeline.transfer import evaluate_size_transfer

    start = time.perf_counter()
    dataset = generate_dataset(
        GenerationConfig(
            num_graphs=train_graphs,
            min_nodes=train_min_nodes,
            max_nodes=train_max_nodes,
            p=1,
            label_method="analytic-p1",
            seed=seed,
            progress_every=0,
        )
    )
    label_wall = time.perf_counter() - start

    model = QAOAParameterPredictor(
        arch=arch, p=1, feature_kind=feature_kind, rng=seed
    )
    start = time.perf_counter()
    trainer = Trainer(
        model, TrainingConfig(epochs=epochs, batch_size=32, seed=0)
    )
    history = trainer.fit(dataset)
    train_wall = time.perf_counter() - start

    start = time.perf_counter()
    report = evaluate_size_transfer(
        model,
        node_sizes=node_sizes,
        degree=degree,
        graphs_per_size=graphs_per_size,
        rng=seed,
    )
    eval_wall = time.perf_counter() - start

    sizes = report["sizes"]
    return {
        "feature_kind": feature_kind,
        "arch": arch,
        "train_graphs": train_graphs,
        "train_node_range": [train_min_nodes, train_max_nodes],
        "epochs": epochs,
        "final_loss": history.final_loss,
        "degree": degree,
        "graphs_per_size": graphs_per_size,
        "label_wall_s": label_wall,
        "train_wall_s": train_wall,
        "eval_wall_s": eval_wall,
        "sizes": sizes,
        # Headline: worst-size model ratio — how much of the best
        # achievable p=1 expectation the model retains at every tested
        # size, despite never seeing a graph above train_max_nodes.
        "min_model_ratio": min(entry["model_ratio"] for entry in sizes),
    }


# ----------------------------------------------------------------------
# Trajectory persistence
# ----------------------------------------------------------------------
def load_trajectory(path: PathLike) -> List[dict]:
    """The existing benchmark trajectory (empty list if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    loaded = json.loads(path.read_text())
    if not isinstance(loaded, list):
        raise ValueError(f"{path} does not hold a benchmark trajectory list")
    return loaded


def append_bench_entry(path: PathLike, results: Dict[str, object]) -> dict:
    """Append one run entry to the ``BENCH_*.json`` trajectory at ``path``."""
    path = Path(path)
    trajectory = load_trajectory(path)
    entry = {
        "schema": BENCH_SCHEMA_VERSION,
        "run": len(trajectory),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    trajectory.append(entry)
    atomic_write_text(path, json.dumps(trajectory, indent=2) + "\n")
    return entry


def run_benchmarks(
    path: PathLike = DEFAULT_BENCH_PATH,
    labeling_graphs: int = 200,
    backends: Iterable[str] = ("serial", "process"),
    workers: Optional[int] = None,
    kernel_repeats: int = 10,
    skip_labeling: bool = False,
    skip_serving: bool = False,
    serving_graphs: int = 32,
    skip_training: bool = False,
    training_path: PathLike = DEFAULT_TRAINING_BENCH_PATH,
    training_graphs: int = 128,
    training_epochs: int = 8,
    training_batch_size: int = 32,
    skip_evaluation: bool = False,
    evaluation_path: PathLike = DEFAULT_EVALUATION_BENCH_PATH,
    evaluation_graphs: int = 100,
    evaluation_p: int = 2,
    evaluation_iters: int = 60,
    skip_fusion: bool = False,
    fusion_path: PathLike = DEFAULT_FUSION_BENCH_PATH,
    fusion_graphs: int = 128,
    fusion_epochs: int = 8,
    fusion_batch_size: int = 32,
    fusion_reps: int = 3,
    skip_scale_serving: bool = False,
    scale_path: PathLike = DEFAULT_SCALE_BENCH_PATH,
    scale_workers: int = 2,
    scale_duration_s: float = 2.0,
    skip_backends: bool = False,
    backends_path: PathLike = DEFAULT_BACKENDS_BENCH_PATH,
    backends_graphs: int = 128,
    backends_epochs: int = 8,
    backends_batch_size: int = 32,
    backends_full_batch_size: Optional[int] = None,
    backends_reps: int = 3,
    skip_transfer: bool = False,
    transfer_path: PathLike = DEFAULT_TRANSFER_BENCH_PATH,
    transfer_nodes: Tuple[int, ...] = (50, 100, 200),
    transfer_degree: int = 3,
    transfer_graphs_per_size: int = 3,
    transfer_train_graphs: int = 96,
    transfer_epochs: int = 40,
    transfer_feature_kind: str = "structural",
) -> dict:
    """Run the kernel (and optionally labeling/serving/training/
    evaluation/fusion/backend) benchmarks. Kernel/labeling/serving
    results append one entry to the trajectory at ``path``; the
    training, evaluation, fusion, scale-serving, backend-sweep, and
    size-transfer benchmarks append their own entries to
    ``training_path`` (``BENCH_2.json``), ``evaluation_path``
    (``BENCH_3.json``), ``fusion_path`` (``BENCH_4.json``),
    ``scale_path`` (``BENCH_5.json``), ``backends_path``
    (``BENCH_6.json``), and ``transfer_path`` (``BENCH_7.json``).

    All trajectory writes are staged until every requested section has
    finished, then committed file by file (each one atomically, via a
    temp file and ``os.replace``): a benchmark that crashes halfway
    never dirties any existing ``BENCH_*.json`` with a partial run.

    Returns the ``path`` entry, with the section results merged into
    its ``results`` in memory (not on disk) so callers can render one
    summary."""
    staged: List[Tuple[PathLike, Dict[str, object]]] = []
    results: Dict[str, object] = {
        "gradient_kernel_n15_p2": bench_gradient_kernel(
            repeats=kernel_repeats
        ),
        "mixer_kernel_n15": bench_mixer_kernel(repeats=kernel_repeats),
    }
    if not skip_labeling:
        results["labeling"] = bench_labeling(
            labeling_benchmark_config(num_graphs=labeling_graphs),
            backends=backends,
            workers=workers,
        )
    if not skip_serving:
        results["serving"] = bench_serving(num_graphs=serving_graphs)
    training_results = None
    if not skip_training:
        training_results = bench_training(
            num_graphs=training_graphs,
            batch_size=training_batch_size,
            epochs=training_epochs,
        )
        staged.append((training_path, {"training": training_results}))
    evaluation_results = None
    if not skip_evaluation:
        evaluation_results = bench_evaluation(
            num_graphs=evaluation_graphs,
            p=evaluation_p,
            optimizer_iters=evaluation_iters,
        )
        staged.append((evaluation_path, {"evaluation": evaluation_results}))
    fusion_results = None
    if not skip_fusion:
        fusion_results = bench_fusion(
            num_graphs=fusion_graphs,
            batch_size=fusion_batch_size,
            epochs=fusion_epochs,
            reps=fusion_reps,
            baseline_path=training_path,
        )
        staged.append((fusion_path, {"fusion": fusion_results}))
    scale_results = None
    if not skip_scale_serving:
        scale_results = bench_serving_scale(
            workers=scale_workers, duration_s=scale_duration_s
        )
        staged.append((scale_path, {"serving_scale": scale_results}))
    transfer_results = None
    if not skip_transfer:
        transfer_results = bench_transfer(
            node_sizes=tuple(transfer_nodes),
            degree=transfer_degree,
            graphs_per_size=transfer_graphs_per_size,
            train_graphs=transfer_train_graphs,
            epochs=transfer_epochs,
            feature_kind=transfer_feature_kind,
        )
        staged.append((transfer_path, {"transfer": transfer_results}))
    backends_results = None
    if not skip_backends:
        backends_results = bench_backends_suite(
            num_graphs=backends_graphs,
            batch_size=backends_batch_size,
            full_batch_size=backends_full_batch_size,
            epochs=backends_epochs,
            reps=backends_reps,
            baseline_path=fusion_path,
        )
        staged.append((backends_path, {"backends": backends_results}))
    # Commit point: every section succeeded, so the trajectories update
    # together. A failure above leaves all BENCH_*.json files untouched.
    staged.append((path, results))
    entry = None
    for staged_path, staged_results in staged:
        entry = append_bench_entry(staged_path, staged_results)
    if training_results is not None:
        entry["results"]["training"] = training_results
    if evaluation_results is not None:
        entry["results"]["evaluation"] = evaluation_results
    if fusion_results is not None:
        entry["results"]["fusion"] = fusion_results
    if scale_results is not None:
        entry["results"]["serving_scale"] = scale_results
    if backends_results is not None:
        entry["results"]["backends"] = backends_results
    if transfer_results is not None:
        entry["results"]["transfer"] = transfer_results
    return entry


def format_entry(entry: dict) -> str:
    """Human-readable one-screen summary of a trajectory entry."""
    lines = [f"benchmark run {entry['run']} @ {entry['timestamp']}"]
    results = entry["results"]
    for key in ("gradient_kernel_n15_p2", "mixer_kernel_n15"):
        if key in results:
            item = results[key]
            lines.append(
                f"  {key}: before {item['before']['mean_s'] * 1e3:.2f} ms"
                f" -> after {item['after']['mean_s'] * 1e3:.2f} ms"
                f" ({item['speedup']:.2f}x)"
            )
    labeling = results.get("labeling")
    if labeling:
        for backend, stats in labeling["backends"].items():
            speedup = stats.get("speedup_vs_serial")
            suffix = f", {speedup:.2f}x vs serial" if speedup else ""
            lines.append(
                f"  labeling[{backend}] workers={stats['workers']}: "
                f"{stats['wall_time_s']:.2f}s "
                f"({stats['graphs_per_second']:.1f} graphs/s{suffix})"
            )
    serving = results.get("serving")
    if serving:
        lines.append(
            f"  serving: cold {serving['cold']['requests_per_second']:.1f} req/s"
            f" -> warm {serving['warm']['requests_per_second']:.1f} req/s"
            f" (hit rate {serving['cache_hit_rate']:.2f},"
            f" mean batch {serving['batch_occupancy_mean']:.1f})"
        )
    training = results.get("training")
    if training:
        arms = training["arms"]
        for name in ("before", "cached", "cached_csr"):
            stats = arms[name]
            speedup = stats.get("speedup_vs_before")
            suffix = f" ({speedup:.2f}x vs before)" if speedup else ""
            lines.append(
                f"  training[{name}]: "
                f"{stats['mean_epoch_s'] * 1e3:.1f} ms/epoch, "
                f"{stats['epochs_per_second']:.1f} epochs/s{suffix}"
            )
    fusion = results.get("fusion")
    if fusion:
        arms = fusion["arms"]
        for name in ("eager", "lazy"):
            stats = arms[name]
            speedup = stats.get("speedup_vs_eager")
            suffix = f" ({speedup:.2f}x vs eager)" if speedup else ""
            lines.append(
                f"  fusion[{name}]: "
                f"{stats['mean_epoch_s'] * 1e3:.1f} ms/epoch, "
                f"{stats['epochs_per_second']:.1f} epochs/s{suffix}"
            )
        lines.append(
            f"  fusion[lazy] engine: {fusion['recorded_ops']} ops -> "
            f"{fusion['fused_kernels']} kernels, peak temp "
            f"{fusion['peak_temp_bytes'] / 1e6:.1f} MB"
        )
        bench2 = fusion.get("speedup_vs_bench2_cached")
        if bench2:
            lines.append(
                f"  fusion[lazy] vs BENCH_2 cached arm: {bench2:.2f}x"
            )
    evaluation = results.get("evaluation")
    if evaluation:
        arms = evaluation["arms"]
        for name in ("serial", "batched"):
            stats = arms[name]
            speedup = stats.get("speedup_vs_serial")
            suffix = f" ({speedup:.2f}x vs serial)" if speedup else ""
            lines.append(
                f"  evaluation[{name}]: "
                f"{stats['best_wall_s']:.2f}s, "
                f"{stats['graphs_per_second']:.1f} graphs/s{suffix}"
            )
    backends_sweep = results.get("backends")
    if backends_sweep:
        sections = [("", backends_sweep)]
        full_batch = backends_sweep.get("full_batch")
        if full_batch:
            sections.append(
                (f" bs={full_batch['batch_size']}", full_batch)
            )
        for label, section in sections:
            for name, stats in section["arms"].items():
                if not stats.get("available", True):
                    lines.append(
                        f"  backend[{name}]{label}: unavailable "
                        "(no toolchain)"
                    )
                    continue
                speedup = stats.get("speedup_vs_numpy")
                suffix = f" ({speedup:.2f}x vs numpy)" if speedup else ""
                counters = stats["engine_counters"]
                lines.append(
                    f"  backend[{name}]{label}: "
                    f"{stats['mean_epoch_s'] * 1e3:.1f} ms/epoch, "
                    f"{stats['epochs_per_second']:.1f} epochs/s{suffix}, "
                    f"{counters['compiled_kernels']}/{counters['kernels']} "
                    f"kernels compiled"
                )
        bench4 = backends_sweep.get("speedup_vs_bench4_lazy")
        if bench4:
            lines.append(
                f"  backend[{backends_sweep['best_compiled']}] vs BENCH_4 "
                f"lazy arm: {bench4:.2f}x"
            )
    transfer = results.get("transfer")
    if transfer:
        lines.append(
            f"  transfer[{transfer['feature_kind']}]: trained on "
            f"n<={transfer['train_node_range'][1]}, "
            f"{transfer['train_wall_s']:.1f}s train"
        )
        for entry_size in transfer["sizes"]:
            fixed = entry_size.get("fixed_ratio")
            suffix = f" (fixed {fixed:.3f})" if fixed is not None else ""
            lines.append(
                f"  transfer n={entry_size['num_nodes']}: model "
                f"{entry_size['model_ratio']:.3f} of p=1 optimum"
                f"{suffix}, {entry_size['predict_ms_per_graph']:.1f} "
                "ms/graph predict"
            )
    serving_scale = results.get("serving_scale")
    if serving_scale:
        qps = serving_scale["max_sustainable_qps"]
        overload = serving_scale["overload"]
        lines.append(
            f"  serving_scale: baseline {qps['baseline']:.0f} qps -> "
            f"scale({serving_scale['workers']}w) {qps['scale']:.0f} qps "
            f"({serving_scale['speedup']:.1f}x), bit_identical="
            f"{serving_scale['bit_identical']}"
        )
        lines.append(
            f"  serving_scale overload x{overload['factor']}: "
            f"p99 {overload['p99_ms']:.1f} ms, statuses "
            f"{overload['statuses']}, clean={overload['clean']}"
        )
    return "\n".join(lines)
