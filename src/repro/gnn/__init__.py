"""GNN core: batching, message-passing layers, pooling, predictor."""

from repro.gnn.batching import GraphBatch
from repro.gnn.layers import GATConv, GCNConv, GINConv, MeanConv, SAGEConv
from repro.gnn.pooling import max_pool, mean_pool, readout, sum_pool
from repro.gnn.predictor import (
    ARCHITECTURES,
    GNNEncoder,
    QAOAParameterPredictor,
)
from repro.gnn.baselines import (
    BucketMedianPredictor,
    DegreeStatsPredictor,
    MeanPredictor,
    graph_statistics,
)

__all__ = [
    "GraphBatch",
    "GATConv",
    "GCNConv",
    "GINConv",
    "MeanConv",
    "SAGEConv",
    "max_pool",
    "mean_pool",
    "readout",
    "sum_pool",
    "ARCHITECTURES",
    "GNNEncoder",
    "QAOAParameterPredictor",
    "BucketMedianPredictor",
    "DegreeStatsPredictor",
    "MeanPredictor",
    "graph_statistics",
]
