"""Batched graph representation for message passing.

A :class:`GraphBatch` packs one or more graphs into a single disjoint
union: node features are stacked, edges are offset, and ``node_graph``
maps every node back to its graph for pooling. Message passing operates
on *directed* edges, so each undirected edge contributes both
orientations.

A batch can optionally carry :class:`BatchPlans` — lazily-built
:class:`~repro.nn.segment.SegmentPlan` objects for every index array the
GNN layers scatter over (edge destinations, edge sources for the gather
backward, their self-loop-augmented variants for GCN/GAT, and
``node_graph`` for pooling). Plans switch the segment kernels onto the
CSR ``reduceat`` path; batches without plans keep the seed repo's
``np.add.at`` semantics bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.graphs.features import build_features
from repro.graphs.graph import Graph
from repro.nn.segment import SegmentPlan
from repro.nn.tensor import Tensor


class BatchPlans:
    """Lazy per-index :class:`SegmentPlan` cache for one ``GraphBatch``.

    Each property is built on first use and memoized, so a GIN forward
    never pays for the self-loop plans only GCN/GAT need. The loop
    variants append one self loop per node in the same order the layers
    do (``concatenate([edges, arange(n)])``), so their plans line up
    with the layer-built index arrays element for element.
    """

    __slots__ = ("_batch", "_cache")

    def __init__(self, batch: "GraphBatch"):
        self._batch = batch
        self._cache = {}

    def _plan(self, key: str, index: np.ndarray, num_segments: int) -> SegmentPlan:
        plan = self._cache.get(key)
        if plan is None:
            plan = SegmentPlan(index, num_segments)
            self._cache[key] = plan
        return plan

    @property
    def src(self) -> SegmentPlan:
        """Plan over ``edge_src`` -> nodes (gather backward)."""
        batch = self._batch
        return self._plan("src", batch.edge_src, batch.num_nodes)

    @property
    def dst(self) -> SegmentPlan:
        """Plan over ``edge_dst`` -> nodes (message aggregation)."""
        batch = self._batch
        return self._plan("dst", batch.edge_dst, batch.num_nodes)

    @property
    def src_loop(self) -> SegmentPlan:
        """Plan over ``edge_src + self loops`` -> nodes (GCN/GAT)."""
        batch = self._batch
        index = np.concatenate(
            [batch.edge_src, np.arange(batch.num_nodes, dtype=np.int64)]
        )
        return self._plan("src_loop", index, batch.num_nodes)

    @property
    def dst_loop(self) -> SegmentPlan:
        """Plan over ``edge_dst + self loops`` -> nodes (GCN/GAT)."""
        batch = self._batch
        index = np.concatenate(
            [batch.edge_dst, np.arange(batch.num_nodes, dtype=np.int64)]
        )
        return self._plan("dst_loop", index, batch.num_nodes)

    @property
    def node(self) -> SegmentPlan:
        """Plan over ``node_graph`` -> graphs (pooling readout).

        ``node_graph`` is non-decreasing by construction, so this plan
        never permutes.
        """
        batch = self._batch
        return self._plan("node", batch.node_graph, batch.num_graphs)


class GraphBatch:
    """A disjoint union of graphs ready for GNN layers.

    Attributes
    ----------
    x:
        Node features, shape ``(total_nodes, feature_dim)``.
    edge_src, edge_dst:
        Directed edge endpoints (both orientations of each undirected
        edge), int arrays of length ``total_directed_edges``.
    edge_weight:
        Weights parallel to the directed edges.
    node_graph:
        Graph id per node, length ``total_nodes``.
    num_graphs, num_nodes:
        Counts for the whole batch.
    """

    def __init__(
        self,
        x: Tensor,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_weight: np.ndarray,
        node_graph: np.ndarray,
        num_graphs: int,
    ):
        self.x = x
        self.edge_src = np.asarray(edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self.edge_weight = np.asarray(edge_weight, dtype=np.float64)
        self.node_graph = np.asarray(node_graph, dtype=np.int64)
        self.num_graphs = int(num_graphs)
        self.num_nodes = int(x.shape[0])
        self.plans: Optional[BatchPlans] = None
        if self.edge_src.shape != self.edge_dst.shape:
            raise ModelError("edge endpoint arrays differ in length")
        if self.edge_weight.shape != self.edge_src.shape:
            raise ModelError("edge weights differ in length from edges")
        if self.node_graph.shape[0] != self.num_nodes:
            raise ModelError("node_graph length != node count")

    @property
    def num_edges(self) -> int:
        """Number of *directed* edges in the batch."""
        return int(self.edge_src.shape[0])

    def degrees(self) -> np.ndarray:
        """In-degree per node over directed edges (== undirected degree)."""
        return np.bincount(
            self.edge_dst, minlength=self.num_nodes
        ).astype(np.float64)

    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[Graph],
        features: Optional[Sequence[np.ndarray]] = None,
        feature_kind: str = "degree_onehot",
        max_nodes: int = 15,
    ) -> "GraphBatch":
        """Build a batch from graphs, computing features unless provided."""
        if not graphs:
            raise ModelError("empty batch")
        if features is not None and len(features) != len(graphs):
            raise ModelError("feature list length != graph count")
        xs: List[np.ndarray] = []
        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        node_graph: List[np.ndarray] = []
        offset = 0
        for index, graph in enumerate(graphs):
            if features is not None:
                feats = np.asarray(features[index], dtype=np.float64)
                if feats.shape[0] != graph.num_nodes:
                    raise ModelError(
                        f"graph {index}: {feats.shape[0]} feature rows for "
                        f"{graph.num_nodes} nodes"
                    )
            else:
                feats = build_features(graph, feature_kind, max_nodes)
            xs.append(feats)
            edges = graph.edge_array()
            w = graph.weight_array()
            srcs.append(edges[:, 0] + offset)
            dsts.append(edges[:, 1] + offset)
            srcs.append(edges[:, 1] + offset)
            dsts.append(edges[:, 0] + offset)
            weights.append(w)
            weights.append(w)
            node_graph.append(np.full(graph.num_nodes, index, dtype=np.int64))
            offset += graph.num_nodes
        return cls(
            x=Tensor(np.concatenate(xs, axis=0)),
            edge_src=np.concatenate(srcs) if srcs else np.zeros(0, np.int64),
            edge_dst=np.concatenate(dsts) if dsts else np.zeros(0, np.int64),
            edge_weight=(
                np.concatenate(weights) if weights else np.zeros(0, np.float64)
            ),
            node_graph=np.concatenate(node_graph),
            num_graphs=len(graphs),
        )

    def build_plans(self) -> BatchPlans:
        """Attach (and return) lazy CSR segment plans for this batch.

        Idempotent; message-passing layers pick the plans up
        automatically once present. Only call this on batches whose
        edge arrays will not be mutated afterwards.
        """
        if self.plans is None:
            self.plans = BatchPlans(self)
        return self.plans

    def with_features(self, x: Tensor) -> "GraphBatch":
        """Copy of the batch with replaced node features."""
        copy = GraphBatch(
            x,
            self.edge_src,
            self.edge_dst,
            self.edge_weight,
            self.node_graph,
            self.num_graphs,
        )
        # Structure is shared, so precomputed segment plans stay valid.
        copy.plans = self.plans
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphBatch(graphs={self.num_graphs}, nodes={self.num_nodes}, "
            f"directed_edges={self.num_edges})"
        )
