"""Batched graph representation for message passing.

A :class:`GraphBatch` packs one or more graphs into a single disjoint
union: node features are stacked, edges are offset, and ``node_graph``
maps every node back to its graph for pooling. Message passing operates
on *directed* edges, so each undirected edge contributes both
orientations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.graphs.features import build_features
from repro.graphs.graph import Graph
from repro.nn.tensor import Tensor


class GraphBatch:
    """A disjoint union of graphs ready for GNN layers.

    Attributes
    ----------
    x:
        Node features, shape ``(total_nodes, feature_dim)``.
    edge_src, edge_dst:
        Directed edge endpoints (both orientations of each undirected
        edge), int arrays of length ``total_directed_edges``.
    edge_weight:
        Weights parallel to the directed edges.
    node_graph:
        Graph id per node, length ``total_nodes``.
    num_graphs, num_nodes:
        Counts for the whole batch.
    """

    def __init__(
        self,
        x: Tensor,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_weight: np.ndarray,
        node_graph: np.ndarray,
        num_graphs: int,
    ):
        self.x = x
        self.edge_src = np.asarray(edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self.edge_weight = np.asarray(edge_weight, dtype=np.float64)
        self.node_graph = np.asarray(node_graph, dtype=np.int64)
        self.num_graphs = int(num_graphs)
        self.num_nodes = int(x.shape[0])
        if self.edge_src.shape != self.edge_dst.shape:
            raise ModelError("edge endpoint arrays differ in length")
        if self.edge_weight.shape != self.edge_src.shape:
            raise ModelError("edge weights differ in length from edges")
        if self.node_graph.shape[0] != self.num_nodes:
            raise ModelError("node_graph length != node count")

    @property
    def num_edges(self) -> int:
        """Number of *directed* edges in the batch."""
        return int(self.edge_src.shape[0])

    def degrees(self) -> np.ndarray:
        """In-degree per node over directed edges (== undirected degree)."""
        return np.bincount(
            self.edge_dst, minlength=self.num_nodes
        ).astype(np.float64)

    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[Graph],
        features: Optional[Sequence[np.ndarray]] = None,
        feature_kind: str = "degree_onehot",
        max_nodes: int = 15,
    ) -> "GraphBatch":
        """Build a batch from graphs, computing features unless provided."""
        if not graphs:
            raise ModelError("empty batch")
        if features is not None and len(features) != len(graphs):
            raise ModelError("feature list length != graph count")
        xs: List[np.ndarray] = []
        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        node_graph: List[np.ndarray] = []
        offset = 0
        for index, graph in enumerate(graphs):
            if features is not None:
                feats = np.asarray(features[index], dtype=np.float64)
                if feats.shape[0] != graph.num_nodes:
                    raise ModelError(
                        f"graph {index}: {feats.shape[0]} feature rows for "
                        f"{graph.num_nodes} nodes"
                    )
            else:
                feats = build_features(graph, feature_kind, max_nodes)
            xs.append(feats)
            edges = graph.edge_array()
            w = graph.weight_array()
            srcs.append(edges[:, 0] + offset)
            dsts.append(edges[:, 1] + offset)
            srcs.append(edges[:, 1] + offset)
            dsts.append(edges[:, 0] + offset)
            weights.append(w)
            weights.append(w)
            node_graph.append(np.full(graph.num_nodes, index, dtype=np.int64))
            offset += graph.num_nodes
        return cls(
            x=Tensor(np.concatenate(xs, axis=0)),
            edge_src=np.concatenate(srcs) if srcs else np.zeros(0, np.int64),
            edge_dst=np.concatenate(dsts) if dsts else np.zeros(0, np.int64),
            edge_weight=(
                np.concatenate(weights) if weights else np.zeros(0, np.float64)
            ),
            node_graph=np.concatenate(node_graph),
            num_graphs=len(graphs),
        )

    def with_features(self, x: Tensor) -> "GraphBatch":
        """Copy of the batch with replaced node features."""
        return GraphBatch(
            x,
            self.edge_src,
            self.edge_dst,
            self.edge_weight,
            self.node_graph,
            self.num_graphs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphBatch(graphs={self.num_graphs}, nodes={self.num_nodes}, "
            f"directed_edges={self.num_edges})"
        )
