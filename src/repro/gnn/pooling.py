"""Graph-level readout (Eq. 9): pool node embeddings per graph."""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.gnn.batching import GraphBatch
from repro.nn.segment import segment_max, segment_mean, segment_sum
from repro.nn.tensor import Tensor


def mean_pool(x: Tensor, batch: GraphBatch) -> Tensor:
    """Per-graph mean of node embeddings — the paper's readout."""
    plans = batch.plans
    return segment_mean(
        x, batch.node_graph, batch.num_graphs, plan=plans and plans.node
    )


def sum_pool(x: Tensor, batch: GraphBatch) -> Tensor:
    """Per-graph sum of node embeddings."""
    plans = batch.plans
    return segment_sum(
        x, batch.node_graph, batch.num_graphs, plan=plans and plans.node
    )


def max_pool(x: Tensor, batch: GraphBatch) -> Tensor:
    """Per-graph elementwise max of node embeddings."""
    plans = batch.plans
    return segment_max(
        x, batch.node_graph, batch.num_graphs, plan=plans and plans.node
    )


def readout(x: Tensor, batch: GraphBatch, kind: str = "mean") -> Tensor:
    """Dispatch pooling by name: mean (default) / sum / max."""
    if kind == "mean":
        return mean_pool(x, batch)
    if kind == "sum":
        return sum_pool(x, batch)
    if kind == "max":
        return max_pool(x, batch)
    raise ModelError(f"unknown readout {kind!r}")
