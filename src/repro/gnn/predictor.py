"""The GNN-based QAOA parameter predictor.

Architecture per the paper's "Implementation Details": a 2-layer GNN
encoder (input dim 15, embedding dim 32, dropout 0.5), mean-pool
readout, and an MLP prediction head regressing the ``2p`` parameters
``[gamma_1..gamma_p, beta_1..beta_p]``. The encoder architecture is one
of ``gcn``, ``gat``, ``gin``, ``sage`` (plus ``mean`` as an ablation
control).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.batching import GraphBatch
from repro.gnn.layers import GATConv, GCNConv, GINConv, MeanConv, SAGEConv
from repro.gnn.pooling import readout
from repro.graphs.features import FEATURE_KINDS, feature_dim, feature_max_nodes
from repro.graphs.graph import Graph
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, batch_invariant, no_grad
from repro.utils.rng import RngLike, ensure_rng

ARCHITECTURES = ("gcn", "gat", "gin", "sage", "mean")


def _make_layer(
    arch: str, in_dim: int, out_dim: int, rng, gat_heads: int = 1
) -> Module:
    if arch == "gcn":
        return GCNConv(in_dim, out_dim, rng=rng)
    if arch == "gat":
        return GATConv(in_dim, out_dim, num_heads=gat_heads, rng=rng)
    if arch == "gin":
        return GINConv(in_dim, out_dim, rng=rng)
    if arch == "sage":
        return SAGEConv(in_dim, out_dim, rng=rng)
    if arch == "mean":
        return MeanConv(in_dim, out_dim, rng=rng)
    raise ModelError(
        f"unknown architecture {arch!r}; choose from {ARCHITECTURES}"
    )


class GNNEncoder(Module):
    """Stack of message-passing layers producing node embeddings."""

    def __init__(
        self,
        arch: str = "gin",
        in_dim: int = 15,
        hidden_dim: int = 32,
        num_layers: int = 2,
        dropout: float = 0.5,
        gat_heads: int = 1,
        rng: RngLike = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ModelError("encoder needs at least one layer")
        generator = ensure_rng(rng)
        self.arch = arch
        self.layers: List[Module] = []
        self.dropouts: List[Dropout] = []
        dim = in_dim
        for _ in range(num_layers):
            self.layers.append(
                _make_layer(arch, dim, hidden_dim, generator, gat_heads)
            )
            self.dropouts.append(Dropout(dropout, rng=generator))
            dim = hidden_dim
        self.out_dim = hidden_dim

    def forward(self, batch: GraphBatch) -> Tensor:
        x = batch.x
        last = len(self.layers) - 1
        for index, (layer, drop) in enumerate(zip(self.layers, self.dropouts)):
            x = layer(x, batch)
            if index < last:
                x = x.relu()
            x = drop(x)
        return x


class QAOAParameterPredictor(Module):
    """Graph -> (gammas, betas) regression model.

    ``output_scaling='bounded'`` squashes the raw head output through a
    sigmoid scaled to the canonical angle ranges (gamma in [0, 2 pi),
    beta in [0, pi)); ``'linear'`` leaves it unbounded (plain
    regression). Bounded is the default because the training targets are
    canonicalized into those ranges.

    ``feature_kind`` is part of the model's identity: it decides how
    graphs are featurized at both training and inference time, and —
    via :attr:`max_nodes` — whether the model has a size cap at all
    (size-agnostic kinds serve graphs of any size). ``in_dim=None``
    derives the input dimension from the kind.
    """

    def __init__(
        self,
        arch: str = "gin",
        p: int = 1,
        in_dim: int = None,
        hidden_dim: int = 32,
        num_layers: int = 2,
        dropout: float = 0.5,
        head_hidden: int = 32,
        output_scaling: str = "bounded",
        readout_kind: str = "mean",
        gat_heads: int = 1,
        feature_kind: str = "degree_onehot",
        rng: RngLike = None,
    ):
        super().__init__()
        if p < 1:
            raise ModelError("depth p must be >= 1")
        if output_scaling not in ("bounded", "linear"):
            raise ModelError(f"unknown output scaling {output_scaling!r}")
        if feature_kind not in FEATURE_KINDS:
            raise ModelError(
                f"unknown feature kind {feature_kind!r}; "
                f"choose from {FEATURE_KINDS}"
            )
        if in_dim is None:
            in_dim = feature_dim(feature_kind)
        in_dim = int(in_dim)
        if feature_max_nodes(feature_kind) is None and in_dim != feature_dim(
            feature_kind
        ):
            raise ModelError(
                f"feature kind {feature_kind!r} produces "
                f"{feature_dim(feature_kind)}-dim features, but in_dim="
                f"{in_dim}"
            )
        generator = ensure_rng(rng)
        self.arch = arch
        self.p = p
        self.in_dim = in_dim
        self.feature_kind = feature_kind
        self.output_scaling = output_scaling
        self.readout_kind = readout_kind
        self.encoder = GNNEncoder(
            arch, in_dim, hidden_dim, num_layers, dropout, gat_heads,
            generator,
        )
        self.head_lin1 = Linear(hidden_dim, head_hidden, rng=generator)
        self.head_lin2 = Linear(head_hidden, 2 * p, rng=generator)

    def forward(self, batch: GraphBatch) -> Tensor:
        embeddings = self.encoder(batch)
        graph_repr = readout(embeddings, batch, self.readout_kind)
        raw = self.head_lin2(self.head_lin1(graph_repr).relu())
        if self.output_scaling == "linear":
            return raw
        squashed = raw.sigmoid()
        scale = np.concatenate(
            [np.full(self.p, 2.0 * np.pi), np.full(self.p, np.pi)]
        )
        return squashed * Tensor(scale[None, :])

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @property
    def max_nodes(self):
        """Largest graph this model can featurize (``None`` = unbounded).

        One-hot-family kinds are capped by their column budget
        (``in_dim`` columns, minus the degree column for
        ``degree_plus_onehot``); size-agnostic kinds have no cap. The
        serving gate uses this — not ``in_dim`` — to decide whether the
        model path applies to a request.
        """
        return feature_max_nodes(self.feature_kind, self.feature_budget)

    @property
    def feature_budget(self) -> int:
        """The ``max_nodes`` argument :func:`build_features` expects.

        ``in_dim`` for the one-hot column kinds (minus the extra degree
        column for ``degree_plus_onehot``); ignored by size-agnostic
        kinds, where it just passes ``in_dim`` through.
        """
        if self.feature_kind == "degree_plus_onehot":
            return self.in_dim - 1
        return self.in_dim

    # ------------------------------------------------------------------
    # Inference conveniences
    # ------------------------------------------------------------------
    def predict(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Predict parameters for graphs; returns shape ``(len, 2p)``.

        Runs under :func:`~repro.nn.tensor.batch_invariant`, so each
        graph's row is bit-identical no matter which other graphs share
        the batch — the contract the serving micro-batcher relies on.
        """
        was_training = self.training
        self.eval()
        try:
            batch = GraphBatch.from_graphs(
                graphs,
                feature_kind=self.feature_kind,
                max_nodes=self.feature_budget,
            )
            with no_grad(), batch_invariant():
                output = self.forward(batch)
            # .data realizes outside the context; safe because the lazy
            # engine captures the batch-invariant flag when each matmul
            # is recorded, not when the graph runs.
            return output.data.copy()
        finally:
            if was_training:
                self.train()

    def predict_angles(self, graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
        """Predict ``(gammas, betas)`` for a single graph."""
        output = self.predict([graph])[0]
        return output[: self.p], output[self.p:]

    def as_initialization(self):
        """Wrap as an :class:`InitializationStrategy` for the QAOA runner."""
        from repro.qaoa.initialization import WarmStartInitialization

        def predict_fn(graph: Graph, p: int):
            if p != self.p:
                raise ModelError(
                    f"model predicts depth {self.p}, runner asked for {p}"
                )
            return self.predict_angles(graph)

        return WarmStartInitialization(predict_fn, name=f"gnn_{self.arch}")
