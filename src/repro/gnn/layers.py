"""Message-passing layers: GCN, GAT, GIN, GraphSAGE.

Each layer implements the AGGREGATE/COMBINE equations quoted in the
paper (Section 3.2):

- **GCN** (Eq. 5): ``h_v' = ReLU(W . MEAN{h_u, u in N(v) U {v}})`` in its
  spectral form with symmetric normalization
  ``D~^{-1/2} A~ D~^{-1/2} H W`` (self loops added).
- **GAT** (Eqs. 6-7): attention coefficients from
  ``LeakyReLU(a^T [W h_v || W h_u])``, softmax-normalized over each
  node's neighborhood, then a weighted aggregation.
- **GIN** (Eq. 8): ``h_v' = MLP((1 + eps) h_v + sum_u h_u)`` with a
  learnable ``eps``.
- **GraphSAGE** (Eqs. 3-4): max-pool aggregator
  ``a_v = MAX(ReLU(W_pool h_u))`` combined by ``W [h_v || a_v]``.

Layers output raw (pre-activation) features except where the defining
equation bakes the nonlinearity in (GCN, GIN's internal MLP); the
encoder applies inter-layer activations uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.batching import GraphBatch
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.segment import (
    gather,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import RngLike, ensure_rng


class GCNConv(Module):
    """Graph convolution with symmetric normalization and self loops."""

    def __init__(self, in_features: int, out_features: int, rng: RngLike = None):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        n = batch.num_nodes
        plans = batch.plans
        # A~ = A + I: append self loops.
        src = np.concatenate([batch.edge_src, np.arange(n)])
        dst = np.concatenate([batch.edge_dst, np.arange(n)])
        weight = np.concatenate([batch.edge_weight, np.ones(n)])
        # bincount accumulates in item order — bitwise identical to the
        # former np.add.at loop, at a fraction of the cost.
        degree = np.bincount(dst, weights=weight, minlength=n)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
        coefficient = weight * inv_sqrt[src] * inv_sqrt[dst]

        transformed = self.linear(x)
        messages = gather(
            transformed, src, plan=plans and plans.src_loop
        ) * Tensor(coefficient[:, None])
        return segment_sum(messages, dst, n, plan=plans and plans.dst_loop)


class GATConv(Module):
    """Graph attention layer (Velickovic et al.), multi-head capable.

    Heads are concatenated, so ``out_features`` must be divisible by
    ``num_heads``. Self loops are added so every node attends to itself.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 1,
        negative_slope: float = 0.2,
        rng: RngLike = None,
    ):
        super().__init__()
        if out_features % num_heads != 0:
            raise ModelError(
                f"out_features {out_features} not divisible by "
                f"{num_heads} heads"
            )
        generator = ensure_rng(rng)
        self.num_heads = num_heads
        self.head_dim = out_features // num_heads
        self.negative_slope = negative_slope
        self.linear = Linear(in_features, out_features, bias=False, rng=generator)
        self.att_src = Parameter(
            init.xavier_uniform(num_heads, self.head_dim, rng=generator)
        )
        self.att_dst = Parameter(
            init.xavier_uniform(num_heads, self.head_dim, rng=generator)
        )
        self.bias = Parameter(init.zeros(out_features))

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        n = batch.num_nodes
        plans = batch.plans
        src_plan = plans and plans.src_loop
        dst_plan = plans and plans.dst_loop
        src = np.concatenate([batch.edge_src, np.arange(n)])
        dst = np.concatenate([batch.edge_dst, np.arange(n)])

        transformed = self.linear(x)  # (n, heads * head_dim)
        # Per-head projections of the attention vector: score contribution
        # alpha_src[v, h] = sum_d transformed[v, h, d] * att_src[h, d].
        reshaped = transformed.reshape(n, self.num_heads, self.head_dim)
        alpha_src = (reshaped * self.att_src.reshape(1, self.num_heads, self.head_dim)).sum(axis=2)
        alpha_dst = (reshaped * self.att_dst.reshape(1, self.num_heads, self.head_dim)).sum(axis=2)

        scores = (
            gather(alpha_src, src, plan=src_plan)
            + gather(alpha_dst, dst, plan=dst_plan)
        ).leaky_relu(self.negative_slope)  # (edges, heads)
        attention = segment_softmax(scores, dst, n, plan=dst_plan)

        messages = gather(reshaped, src, plan=src_plan) * attention.reshape(
            len(src), self.num_heads, 1
        )
        aggregated = segment_sum(messages, dst, n, plan=dst_plan)
        return aggregated.reshape(n, self.num_heads * self.head_dim) + self.bias


class GINConv(Module):
    """Graph isomorphism layer: ``MLP((1 + eps) h_v + sum_u h_u)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_features: int = None,
        learn_eps: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        generator = ensure_rng(rng)
        hidden = hidden_features if hidden_features is not None else out_features
        self.lin1 = Linear(in_features, hidden, rng=generator)
        self.lin2 = Linear(hidden, out_features, rng=generator)
        self.eps = Parameter(np.zeros(1)) if learn_eps else None

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        plans = batch.plans
        neighbor_sum = segment_sum(
            gather(x, batch.edge_src, plan=plans and plans.src),
            batch.edge_dst,
            batch.num_nodes,
            plan=plans and plans.dst,
        )
        if self.eps is not None:
            combined = x * (self.eps + 1.0) + neighbor_sum
        else:
            combined = x + neighbor_sum
        return self.lin2(self.lin1(combined).relu())


class SAGEConv(Module):
    """GraphSAGE with the max-pool aggregator (paper Eqs. 3-4)."""

    def __init__(self, in_features: int, out_features: int, rng: RngLike = None):
        super().__init__()
        generator = ensure_rng(rng)
        self.pool = Linear(in_features, in_features, rng=generator)
        self.combine = Linear(2 * in_features, out_features, rng=generator)

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        plans = batch.plans
        pooled_messages = self.pool(
            gather(x, batch.edge_src, plan=plans and plans.src)
        ).relu()
        aggregated = segment_max(
            pooled_messages,
            batch.edge_dst,
            batch.num_nodes,
            plan=plans and plans.dst,
        )
        return self.combine(concat([x, aggregated], axis=1))


class MeanConv(Module):
    """Plain mean aggregation + linear (ablation control with no tricks)."""

    def __init__(self, in_features: int, out_features: int, rng: RngLike = None):
        super().__init__()
        self.linear = Linear(2 * in_features, out_features, rng=rng)

    def forward(self, x: Tensor, batch: GraphBatch) -> Tensor:
        plans = batch.plans
        aggregated = segment_mean(
            gather(x, batch.edge_src, plan=plans and plans.src),
            batch.edge_dst,
            batch.num_nodes,
            plan=plans and plans.dst,
        )
        return self.linear(concat([x, aggregated], axis=1))
