"""Structure-free prediction baselines.

To show that the GNNs' message passing earns its keep, these baselines
predict QAOA parameters from *aggregate* graph statistics only:

- :class:`MeanPredictor` — always predicts the training-set mean
  parameters (the strongest possible constant).
- :class:`BucketMedianPredictor` — a train-free per-(size, degree)
  median lookup table with nearest-bucket fallback.
- :class:`DegreeStatsPredictor` — an MLP on a fixed vector of graph
  statistics (size, degree moments, edge density); no message passing.

All expose the same ``predict_angles`` / ``as_initialization``
interface as :class:`repro.gnn.predictor.QAOAParameterPredictor`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError, ModelError
from repro.graphs.graph import Graph
from repro.nn.layers import MLP
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import RngLike, ensure_rng

STATS_DIM = 7


def graph_statistics(graph: Graph) -> np.ndarray:
    """Fixed-length aggregate feature vector (no structure)."""
    degrees = graph.degrees().astype(np.float64)
    n = graph.num_nodes
    max_possible = n * (n - 1) / 2.0
    return np.array(
        [
            n,
            graph.num_edges,
            degrees.mean() if n else 0.0,
            degrees.std() if n else 0.0,
            degrees.max() if n else 0.0,
            graph.num_edges / max_possible if max_possible else 0.0,
            graph.total_weight,
        ],
        dtype=np.float64,
    )


class MeanPredictor:
    """Predicts the training-set mean parameters for every graph."""

    name = "mean_baseline"

    def __init__(self):
        self._mean: np.ndarray = None
        self.p: int = None

    def fit(self, dataset: QAOADataset) -> "MeanPredictor":
        """Store the mean target vector."""
        if len(dataset) == 0:
            raise DatasetError("empty dataset")
        self._mean = dataset.targets().mean(axis=0)
        self.p = dataset.depth()
        return self

    def predict_angles(self, graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
        """The constant prediction."""
        if self._mean is None:
            raise ModelError("fit() first")
        return self._mean[: self.p].copy(), self._mean[self.p:].copy()

    def as_initialization(self):
        """Adapter for the QAOA runner."""
        from repro.qaoa.initialization import WarmStartInitialization

        def predict(graph, p):
            if p != self.p:
                raise ModelError(f"baseline fitted at p={self.p}")
            return self.predict_angles(graph)

        return WarmStartInitialization(predict, name=self.name)


class BucketMedianPredictor:
    """Train-free parameter transfer: per-(size, degree) median lookup.

    Stores the coordinate-wise median target of every (num_nodes,
    max_degree) bucket in the training set; prediction looks the bucket
    up, falling back to the nearest bucket by (size, degree) distance,
    then to the global median. This is the "lookup table" warm start a
    practitioner would build without any learning — the floor any
    learned model must beat.
    """

    name = "bucket_median"

    def __init__(self):
        self.p: int = None
        self._buckets: dict = None
        self._global: np.ndarray = None

    def fit(self, dataset: QAOADataset) -> "BucketMedianPredictor":
        """Compute per-bucket medians."""
        if len(dataset) == 0:
            raise DatasetError("empty dataset")
        self.p = dataset.depth()
        grouped: dict = {}
        for record in dataset:
            key = (record.graph.num_nodes, record.graph.max_degree())
            grouped.setdefault(key, []).append(record.target_vector())
        self._buckets = {
            key: np.median(np.stack(vectors), axis=0)
            for key, vectors in grouped.items()
        }
        self._global = np.median(dataset.targets(), axis=0)
        return self

    def predict_angles(self, graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
        """Bucket lookup with nearest-bucket fallback."""
        if self._buckets is None:
            raise ModelError("fit() first")
        key = (graph.num_nodes, graph.max_degree())
        if key in self._buckets:
            vector = self._buckets[key]
        elif self._buckets:
            nearest = min(
                self._buckets,
                key=lambda k: (k[0] - key[0]) ** 2 + (k[1] - key[1]) ** 2,
            )
            vector = self._buckets[nearest]
        else:
            vector = self._global
        return vector[: self.p].copy(), vector[self.p:].copy()

    def as_initialization(self):
        """Adapter for the QAOA runner."""
        from repro.qaoa.initialization import WarmStartInitialization

        def predict(graph, p):
            if p != self.p:
                raise ModelError(f"baseline fitted at p={self.p}")
            return self.predict_angles(graph)

        return WarmStartInitialization(predict, name=self.name)


class DegreeStatsPredictor:
    """MLP regression on aggregate graph statistics (no message passing)."""

    name = "stats_baseline"

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 200,
        learning_rate: float = 1e-2,
        rng: RngLike = None,
    ):
        self._rng = ensure_rng(rng)
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.p: int = None
        self._mlp: MLP = None
        self._feature_mean: np.ndarray = None
        self._feature_std: np.ndarray = None

    def fit(self, dataset: QAOADataset) -> "DegreeStatsPredictor":
        """Train the MLP on (statistics, target) pairs."""
        if len(dataset) == 0:
            raise DatasetError("empty dataset")
        self.p = dataset.depth()
        features = np.stack(
            [graph_statistics(record.graph) for record in dataset]
        )
        self._feature_mean = features.mean(axis=0)
        self._feature_std = np.maximum(features.std(axis=0), 1e-9)
        normalized = (features - self._feature_mean) / self._feature_std
        targets = Tensor(dataset.targets())
        self._mlp = MLP(
            [STATS_DIM, self.hidden_dim, 2 * self.p], rng=self._rng
        )
        optimizer = Adam(self._mlp.parameters(), self.learning_rate)
        inputs = Tensor(normalized)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            loss = mse_loss(self._mlp(inputs), targets)
            loss.backward()
            optimizer.step()
        return self

    def predict_angles(self, graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
        """Predict from the graph's aggregate statistics."""
        if self._mlp is None:
            raise ModelError("fit() first")
        features = (
            graph_statistics(graph) - self._feature_mean
        ) / self._feature_std
        with no_grad():
            output = self._mlp(Tensor(features[None, :])).data[0]
        return output[: self.p].copy(), output[self.p:].copy()

    def as_initialization(self):
        """Adapter for the QAOA runner."""
        from repro.qaoa.initialization import WarmStartInitialization

        def predict(graph, p):
            if p != self.p:
                raise ModelError(f"baseline fitted at p={self.p}")
            return self.predict_angles(graph)

        return WarmStartInitialization(predict, name=self.name)
