"""Scheduler for the lazy tensor engine: fuse, cache, execute.

:func:`realize` turns recorded :class:`~repro.nn.lazyir.LazyNode`
graphs into concrete buffers. The pipeline per call:

1. **Walk** — deterministic post-order DFS from the requested targets,
   stopping at realized buffers. Produces the node order, the input
   list, and a structural key (ops, args, shapes of inputs, topology —
   never values).
2. **Fuse** — nodes are grouped into kernels. A group grows backwards
   along single-consumer elementwise/reduce edges; group roots are the
   targets, views, opaque kernels (matmul / gather / scatter / concat),
   and any node with multiple consumers. One group = one fused kernel
   over plan-owned temporaries, instead of one materialized array per
   op as in the eager path.
3. **Compile** — every node becomes one slot in a flat value list
   ``V`` and one closure ``run(V)`` with its operand/output positions
   baked in as integers. Non-escaping elementwise outputs get
   *plan-owned* buffers, allocated once at compile time and shared by
   lifetime (a buffer is recycled for a later node only after the last
   reader of every view of it has run, and never for a node's own
   operands). Views compile to stride tricks and are never copied —
   the eager path returns views for transpose / reshape / basic
   slicing, and materializing one could change how downstream
   reductions buffer, breaking bitwise equivalence.
4. **Cache** — compiled plans are memoized on the structural key, so
   steady-state training steps skip compilation entirely. Graphs
   containing value-dependent shapes (boolean-mask indexing) bypass
   the cache. Cached plans keep their owned temporaries, so eviction
   is bounded both by entry count and by total owned bytes.
5. **Execute** — copy the plan's slot template (owned buffers sit at
   their slots already), bind input buffers by topo position, allocate
   fresh arrays only for *escaping* outputs (requested targets and
   views into them — handed to the caller, never recycled), then run
   the flat closure list. Steady-state cost is one list copy plus one
   closure call per op: no loaders, no register files, no allocator
   traffic.

Realization is the sync boundary of the engine: the record-time CSE
table is cleared here, because after a realize callers may legally
mutate buffers in place (the Adam step updates ``param.data`` with
``out=``) and a cross-boundary CSE hit could resurrect stale values.

Engine activity is observable through :data:`counters` (kernel / op /
realize counts, plan-cache hits, temporary-byte watermarks); the
module registers itself as a counter source with
:mod:`repro.profiling`, so ``repro train --profile`` attributes fused
kernels and peak temporary bytes to each training phase.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import profiling
from repro.nn.backends import get_backend, get_backend_name
from repro.nn.lazyir import (
    KIND_EW,
    KIND_REDUCE,
    KIND_VIEW,
    LazyNode,
    clear_cse_table,
)

#: Maximum number of memoized plans (FIFO eviction).
PLAN_CACHE_CAP = 256

#: Total plan-owned temporary bytes kept across all cached plans;
#: exceeding it evicts oldest plans first. Sized so a multi-backend
#: sweep (each backend caches its own plans, and an LR schedule mints
#: plans per epoch) stays resident: eviction thrash is catastrophic for
#: compiled backends, which re-render and re-bind kernels on every
#: plan miss.
PLAN_OWNED_BYTES_CAP = 512 * 1024 * 1024


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------
class EngineCounters:
    """Monotonic engine statistics plus a temporary-bytes watermark.

    ``cur_bytes`` tracks the working set of the realize in flight
    (plan-owned temporaries plus per-call result allocations);
    ``peak_bytes`` is its high-water mark since the last
    :meth:`push_mark`. Marks nest, so the profiler can attribute a peak
    to each phase while an outer mark still observes the global peak.
    """

    def __init__(self):
        self.kernels = 0
        self.ops = 0
        self.views = 0
        self.realizes = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.temp_bytes = 0  # cumulative flow through realize calls
        self.cur_bytes = 0
        self.peak_bytes = 0
        # compiled-backend statistics (cstyle / threaded)
        self.compiled_kernels = 0     # group kernels rendered + loaded
        self.kernel_cache_hits = 0    # on-disk .so cache
        self.kernel_cache_misses = 0
        self.compile_seconds = 0.0
        self.backend_kernels: Dict[str, int] = {}  # executed, per backend
        self._marks: List[int] = []

    def count_backend_kernels(self, name: str, count: int) -> None:
        if count:
            self.backend_kernels[name] = (
                self.backend_kernels.get(name, 0) + count
            )

    def grow(self, nbytes: int) -> None:
        self.temp_bytes += nbytes
        self.cur_bytes += nbytes
        if self.cur_bytes > self.peak_bytes:
            self.peak_bytes = self.cur_bytes

    def shrink(self, nbytes: int) -> None:
        self.cur_bytes -= nbytes

    def push_mark(self) -> None:
        self._marks.append(self.peak_bytes)
        self.peak_bytes = self.cur_bytes

    def pop_mark(self) -> int:
        peak = self.peak_bytes
        previous = self._marks.pop()
        self.peak_bytes = max(previous, peak)
        return peak

    def snapshot(self) -> Dict[str, float]:
        """Monotonic counters (no watermark state)."""
        snap = {
            "kernels": self.kernels,
            "ops": self.ops,
            "views": self.views,
            "realizes": self.realizes,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "temp_bytes": self.temp_bytes,
            "compiled_kernels": self.compiled_kernels,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "compile_seconds": round(self.compile_seconds, 6),
        }
        for name, count in self.backend_kernels.items():
            snap[f"kernels_{name}"] = count
        return snap


#: Process-wide engine counters (races under threads are benign:
#: statistics may undercount, execution never depends on them).
counters = EngineCounters()


class _EngineCounterSource:
    """Adapter feeding engine counters into :mod:`repro.profiling`."""

    def begin(self):
        counters.push_mark()
        return counters.snapshot()

    #: Keys surfaced per profiling phase. Backend-kernel counts are
    #: dynamic (``kernels_<name>``), so deltas are computed over the
    #: whole snapshot and filtered to zero-suppress.
    _SKIP = frozenset({"views", "plan_hits", "plan_misses"})

    def end(self, token) -> Dict[str, int]:
        now = counters.snapshot()
        deltas = {
            key: value - token.get(key, 0)
            for key, value in now.items()
            if key not in self._SKIP
        }
        deltas["peak_temp_bytes"] = counters.pop_mark()
        return {key: value for key, value in deltas.items() if value}


profiling.register_counter_source(_EngineCounterSource())


# ---------------------------------------------------------------------------
# Plan structure
# ---------------------------------------------------------------------------
class _Plan:
    """A compiled graph: flat closures plus a prebound slot template.

    ``template`` holds the plan-owned temporaries at their slots (and
    ``None`` everywhere else); execution copies it, binds inputs, and
    allocates only the escaping outputs. ``lock`` serializes execution
    because owned buffers are shared mutable state — uncontended in the
    training loop, but serving threads may race on a cached plan.
    """

    __slots__ = ("n_slots", "input_slots", "instrs", "template",
                 "escape_alloc", "target_slots", "flow_bytes",
                 "owned_bytes", "n_kernels", "n_ops", "n_views",
                 "n_compiled", "backend_name", "lock")

    def __init__(self, n_slots, input_slots, instrs, template,
                 escape_alloc, target_slots, flow_bytes, owned_bytes,
                 n_kernels, n_ops, n_views, n_compiled, backend_name):
        self.n_slots = n_slots
        self.input_slots = input_slots
        self.instrs = instrs
        self.template = template
        self.escape_alloc = escape_alloc  # [(slot, shape, dtype)]
        self.target_slots = target_slots
        self.flow_bytes = flow_bytes      # working set per execution
        self.owned_bytes = owned_bytes    # bytes held while cached
        self.n_kernels = n_kernels
        self.n_ops = n_ops
        self.n_views = n_views
        self.n_compiled = n_compiled      # groups rendered to C kernels
        self.backend_name = backend_name  # backend that compiled the plan
        self.lock = threading.Lock()


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
_PLAN_CACHE: Dict[tuple, _Plan] = {}
_PLAN_LOCK = threading.Lock()
_OWNED_TOTAL = 0


def clear_plan_cache() -> None:
    """Drop all memoized plans (tests, backend swaps)."""
    global _OWNED_TOTAL
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _OWNED_TOTAL = 0


def plan_cache_size() -> int:
    return len(_PLAN_CACHE)


def _cache_plan(key: tuple, plan: _Plan) -> None:
    global _OWNED_TOTAL
    with _PLAN_LOCK:
        while _PLAN_CACHE and (
            len(_PLAN_CACHE) >= PLAN_CACHE_CAP
            or _OWNED_TOTAL + plan.owned_bytes > PLAN_OWNED_BYTES_CAP
        ):
            # dicts iterate in insertion order, so this is FIFO.
            evicted = _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
            _OWNED_TOTAL -= evicted.owned_bytes
        _PLAN_CACHE[key] = plan
        _OWNED_TOTAL += plan.owned_bytes


# ---------------------------------------------------------------------------
# Graph walk
# ---------------------------------------------------------------------------
def _walk(targets: Sequence[LazyNode]):
    """Deterministic post-order over unrealized nodes.

    Returns ``(order, key, cacheable)`` where ``order`` includes input
    nodes (realized or buffer) and ``key`` is the structural plan key.
    """
    seen = set()
    order: List[LazyNode] = []
    index: dict = {}
    parts: list = []
    cacheable = True
    add_seen = seen.add
    push_node = order.append
    append = parts.append
    stack = [(t, False) for t in reversed(targets)]
    push = stack.append
    while stack:
        node, processed = stack.pop()
        if processed:
            # Post-order position: every source is already indexed, so
            # the key part is built here in the same pass. Source
            # positions flatten into the part tuple; arity keeps
            # same-prefix keys distinct.
            index[id(node)] = len(order)
            push_node(node)
            if node.nocache:
                cacheable = False
            srcs = node.srcs
            n = len(srcs)
            if n == 1:
                append((node.op, node.arg, index[id(srcs[0])]))
            elif n == 2:
                append((node.op, node.arg,
                        index[id(srcs[0])], index[id(srcs[1])]))
            else:
                append((node.op, node.arg, n)
                       + tuple(index[id(s)] for s in srcs))
            continue
        nid = id(node)
        if nid in seen:
            continue
        add_seen(nid)
        if node.buffer is not None:
            # Realized input: a leaf of the plan — index it immediately
            # (same position the two-phase walk would assign).
            index[nid] = len(order)
            push_node(node)
            append(("B", node.shape, node.dtype.str))
            continue
        push((node, True))
        for src in reversed(node.srcs):
            push((src, False))
    key = (tuple(parts), tuple(index[id(t)] for t in targets))
    return order, index, key, cacheable


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
def _nbytes(shape: Tuple[int, ...], dtype) -> int:
    n = dtype.itemsize
    for dim in shape:
        n *= dim
    return n


def _compile(order: List[LazyNode], index, targets: Sequence[LazyNode]):
    backend = get_backend()
    n = len(order)
    is_input = [node.buffer is not None for node in order]
    target_idx = {index[id(t)] for t in targets}

    consumers: List[List[int]] = [[] for _ in range(n)]
    for i, node in enumerate(order):
        if is_input[i]:
            continue
        for src in node.srcs:
            consumers[index[id(src)]].append(i)

    # --- fusion grouping (reverse topo: consumers are grouped first).
    # Groups define the kernel boundaries reported by the counters; the
    # executor runs one closure per op regardless, so grouping is
    # bookkeeping, and the fusion *payoff* — one buffer per chain
    # instead of one allocation per op — comes from lifetime-shared
    # plan-owned buffers below.
    group_of = [-1] * n
    groups: List[List[int]] = []
    for i in range(n - 1, -1, -1):
        if is_input[i]:
            continue
        node = order[i]
        kind = node.kind
        cons = consumers[i]
        if (
            kind in (KIND_EW, KIND_REDUCE)
            and i not in target_idx
            and len(cons) == 1
            and not is_input[cons[0]]
            and order[cons[0]].kind in (KIND_EW, KIND_REDUCE)
        ):
            gid = group_of[cons[0]]
            group_of[i] = gid
            groups[gid].append(i)
            continue
        group_of[i] = len(groups)
        groups.append([i])
    n_kernels = n_ops = n_views = 0
    for members in groups:
        if order[members[0]].kind == KIND_VIEW:
            n_views += 1
        else:
            n_kernels += 1
            n_ops += len(members)

    # --- whole-group kernels (compiled backends render fused groups to
    # C; the numpy backend has no hook and every group stays per-op).
    # ``rendered`` maps a group root to its kernel closure; internal
    # members of rendered groups are skipped entirely — no instruction,
    # no buffer — which is where the one-loop fusion payoff lives.
    rendered: Dict[int, tuple] = {}
    compile_hook = getattr(backend, "compile_groups", None)
    if compile_hook is not None:
        rendered = compile_hook(
            order, index, groups, group_of, consumers, is_input
        ) or {}
    skipped = set()
    # Position at which node i's operand reads actually happen: for an
    # internal member of a rendered group that is the *root's* slot —
    # the C kernel reads every external source when it runs — so the
    # lifetime of those sources must stretch to the root, or the pool
    # would recycle a buffer the kernel still reads.
    read_pos = list(range(n))
    for root_i in rendered:
        for member in groups[group_of[root_i]]:
            if member != root_i:
                skipped.add(member)
                read_pos[member] = root_i

    # --- ownership and lifetimes (a view charges the viewed buffer)
    owner = list(range(n))
    last_use = [-1] * n
    for i, node in enumerate(order):
        if is_input[i]:
            continue
        if node.kind == KIND_VIEW:
            owner[i] = owner[index[id(node.srcs[0])]]
        pos = read_pos[i]
        for src in node.srcs:
            own = owner[index[id(src)]]
            if last_use[own] < pos:
                last_use[own] = pos
    escapes = [False] * n
    for t in target_idx:
        escapes[owner[t]] = True
        escapes[t] = True

    # --- flat instructions + buffer assignment
    instrs = []
    template: List[Optional[np.ndarray]] = [None] * n
    escape_alloc: List[Tuple[int, Tuple[int, ...], object]] = []
    input_slots: List[int] = []
    pools: Dict[Tuple, List[np.ndarray]] = {}
    owned_ids = set()
    flow_bytes = 0
    owned_bytes = 0
    for i, node in enumerate(order):
        if is_input[i]:
            input_slots.append(i)
            continue
        if i in skipped:
            # Internal member of a rendered group: the C kernel computes
            # it in a register at the root's position — no instruction,
            # no buffer, no recycling at this slot.
            continue
        if i in rendered:
            run, ext_idxs = rendered[i]
            if run is not None:
                instrs.append(run)
            # run=None: this root is stitched into a later driver
            # instruction. It still reports its own external reads here
            # (ext_idxs), so recycling stays as tight as unstitched
            # execution, and its output slot still gets a buffer.
            nbytes = _nbytes(node.shape, node.dtype)
            read_idxs = ext_idxs
            if escapes[i]:
                escape_alloc.append((i, node.shape, node.dtype))
                flow_bytes += nbytes
            else:
                pool = pools.get((node.shape, node.dtype.str))
                if pool:
                    buf = pool.pop()
                else:
                    buf = np.empty(node.shape, dtype=node.dtype)
                template[i] = buf
                if id(buf) not in owned_ids:
                    owned_ids.add(id(buf))
                    flow_bytes += buf.nbytes
                    owned_bytes += buf.nbytes
        elif node.kind == KIND_VIEW:
            fn = backend.build_view(node)
            si = index[id(node.srcs[0])]

            def run(V, fn=fn, si=si, oi=i):
                V[oi] = fn(V[si])

            instrs.append(run)
            read_idxs = (si,)
        else:
            srcs = tuple(index[id(s)] for s in node.srcs)
            run, mode = backend.build_instr(node, srcs, i)
            instrs.append(run)
            read_idxs = srcs
            nbytes = _nbytes(node.shape, node.dtype)
            if mode == "out":
                if escapes[i]:
                    escape_alloc.append((i, node.shape, node.dtype))
                    flow_bytes += nbytes
                else:
                    pool = pools.get((node.shape, node.dtype.str))
                    if pool:
                        buf = pool.pop()
                    else:
                        buf = np.empty(node.shape, dtype=node.dtype)
                    template[i] = buf
                    if id(buf) not in owned_ids:
                        owned_ids.add(id(buf))
                        flow_bytes += buf.nbytes
                        owned_bytes += buf.nbytes
            else:
                flow_bytes += nbytes  # per-call result allocation
        # Recycle operand buffers whose last alias read just happened —
        # after assigning this node's output, so an output buffer never
        # aliases the node's own operands. For a rendered group the
        # reads are the group's *external* sources, whose lifetimes
        # were stretched to this root above.
        freed = set()
        for si_ in read_idxs:
            own = owner[si_]
            if (
                own not in freed
                and last_use[own] == i
                and not escapes[own]
                and template[own] is not None
            ):
                freed.add(own)
                pools.setdefault(
                    (order[own].shape, order[own].dtype.str), []
                ).append(template[own])

    return _Plan(
        n_slots=n,
        input_slots=input_slots,
        instrs=instrs,
        template=template,
        escape_alloc=escape_alloc,
        target_slots=[index[id(t)] for t in targets],
        flow_bytes=flow_bytes,
        owned_bytes=owned_bytes,
        n_kernels=n_kernels,
        n_ops=n_ops,
        n_views=n_views,
        n_compiled=len(rendered),
        backend_name=get_backend_name(),
    )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def realize(nodes: Sequence[LazyNode]) -> None:
    """Force the given nodes to concrete buffers (no-op when realized).

    Multiple targets share one plan, so a backward pass realizes the
    loss and every leaf gradient in a single fused execution.
    """
    # Sync point: in-place mutation of realized buffers is legal after
    # this returns, so record-time CSE must not span it.
    clear_cse_table()

    deduped: List[LazyNode] = []
    seen = set()
    for node in nodes:
        if node.buffer is None and id(node) not in seen:
            seen.add(id(node))
            deduped.append(node)
    if not deduped:
        return

    counters.realizes += 1
    order, index, key, cacheable = _walk(deduped)
    # Plans embed backend-compiled kernels, so the active backend is
    # part of the cache identity: swapping backends never replays the
    # previous backend's kernels, and each backend keeps its own plans
    # warm (the backend-sweep benchmark interleaves all three).
    key = (get_backend_name(), key)

    plan = None
    if cacheable:
        with _PLAN_LOCK:
            plan = _PLAN_CACHE.get(key)
    if plan is None:
        counters.plan_misses += 1
        plan = _compile(order, index, deduped)
        if cacheable:
            _cache_plan(key, plan)
    else:
        counters.plan_hits += 1

    counters.kernels += plan.n_kernels
    counters.ops += plan.n_ops
    counters.views += plan.n_views
    if plan.n_compiled:
        counters.count_backend_kernels(plan.backend_name, plan.n_compiled)
        counters.count_backend_kernels(
            "numpy", plan.n_kernels - plan.n_compiled
        )
    else:
        counters.count_backend_kernels("numpy", plan.n_kernels)
    counters.grow(plan.flow_bytes)

    with plan.lock:
        V = plan.template.copy()
        for i in plan.input_slots:
            V[i] = order[i].buffer
        for i, shape, dtype in plan.escape_alloc:
            V[i] = np.empty(shape, dtype=dtype)
        for run in plan.instrs:
            run(V)
        for node, slot in zip(deduped, plan.target_slots):
            node.buffer = V[slot]

    counters.shrink(plan.flow_bytes)
