"""Regression losses for parameter prediction."""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.nn.tensor import Tensor, _as_tensor


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = _as_tensor(target)
    _check_shapes(prediction, target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error."""
    target = _as_tensor(target)
    _check_shapes(prediction, target)
    return (prediction - target.detach()).abs().mean()


def huber_loss(prediction: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails."""
    from repro.nn.tensor import where

    target = _as_tensor(target)
    _check_shapes(prediction, target)
    diff = prediction - target.detach()
    abs_diff = diff.abs()
    quadratic = diff * diff * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    return where(abs_diff <= delta, quadratic, linear).mean()


def _check_shapes(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ModelError(
            f"loss shape mismatch: prediction {prediction.shape} "
            f"vs target {target.shape}"
        )
