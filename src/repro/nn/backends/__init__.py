"""Pluggable kernel backends for the lazy tensor engine.

A backend turns individual :class:`~repro.nn.lazyir.LazyNode` ops into
executable kernels; the scheduler in :mod:`repro.nn.realize` decides
*grouping* (which ops share temporaries) and the backend decides
*execution* (which library calls implement each op). Three backends
ship:

- ``numpy`` — the reference. Its kernels replay the exact ufunc
  sequences of the eager path, which is what makes the
  bitwise-equivalence contract testable.
- ``cstyle`` — renders each fused group to a single C function
  compiled via cffi (:mod:`repro.nn.backends.cstyle`), bit-identical
  to the reference by construction and by runtime probe.
- ``threaded`` — the same compiled kernels with large row-independent
  outer loops tiled across a thread pool.

Selection is by name through :func:`set_backend` (the CLI's
``--backend`` flag lands here). The compiled backends require a C
toolchain; when the probe fails (no compiler, ``CC=/bin/false``, a
sandboxed build environment), selection *silently* falls back to numpy — same
results, just slower — so ``--backend cstyle`` is always safe to pass.
A backend can also be a module object exposing ``build_instr`` /
``build_view`` (tests inject doubles this way); optional hooks:
``compile_groups`` for whole-group kernels and ``available`` for the
fallback gate.
"""

from repro.nn.backends import numpy_backend

#: Public backend names, in CLI-choice order.
BACKEND_NAMES = ("numpy", "cstyle", "threaded")

_ACTIVE_BACKEND = numpy_backend
_ACTIVE_NAME = "numpy"


def _resolve(name: str):
    """Backend module for ``name``, honouring the toolchain fallback."""
    if name == "numpy":
        return numpy_backend, "numpy"
    if name == "cstyle":
        from repro.nn.backends import cstyle

        if cstyle.available():
            return cstyle, "cstyle"
        return numpy_backend, "numpy"
    if name == "threaded":
        from repro.nn.backends import threaded

        if threaded.available():
            return threaded, "threaded"
        return numpy_backend, "numpy"
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def get_backend():
    """The backend module used to compile kernels."""
    return _ACTIVE_BACKEND


def get_backend_name() -> str:
    """Name of the active backend (``"numpy"`` after a silent fallback)."""
    return _ACTIVE_NAME


def set_backend(backend) -> str:
    """Select the kernel backend by name (or inject a module object).

    With a string, resolves through the toolchain probe: asking for a
    compiled backend on a box without a C compiler quietly selects
    numpy and returns ``"numpy"`` — callers that care (the CLI's
    ``--profile`` output) can surface the effective name; everything
    still runs. With a module object (tests), the module must expose
    ``build_instr(node, srcs, out_index)`` and ``build_view(node)``.

    Swapping is safe at any point: the realize plan cache is keyed by
    the active backend name, so plans compiled by the previous backend
    are never replayed — each backend keeps (and re-warms) its own
    plans. Injected module objects share one ``"custom"`` namespace;
    tests that swap doubles should
    :func:`repro.nn.realize.clear_plan_cache` between them.
    """
    global _ACTIVE_BACKEND, _ACTIVE_NAME
    if isinstance(backend, str):
        _ACTIVE_BACKEND, _ACTIVE_NAME = _resolve(backend)
    else:
        _ACTIVE_BACKEND = backend
        _ACTIVE_NAME = getattr(backend, "__name__", "custom").rsplit(
            ".", 1
        )[-1].replace("_backend", "")
    return _ACTIVE_NAME
