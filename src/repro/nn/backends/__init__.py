"""Pluggable kernel backends for the lazy tensor engine.

A backend turns individual :class:`~repro.nn.lazyir.LazyNode` ops into
executable kernels; the scheduler in :mod:`repro.nn.realize` decides
*grouping* (which ops share temporaries) and the backend decides
*execution* (which library calls implement each op). The numpy
reference backend is the only implementation today — its kernels replay
the exact ufunc sequences of the eager path, which is what makes the
bitwise-equivalence contract testable. The seam exists so a later PR
can drop in e.g. a threaded tile backend without touching the IR or the
scheduler: implement :func:`~repro.nn.backends.numpy_backend.build_instr`
and :func:`~repro.nn.backends.numpy_backend.build_view` with the same
signatures and register it here.
"""

from repro.nn.backends import numpy_backend

_ACTIVE_BACKEND = numpy_backend


def get_backend():
    """The backend module used to compile kernels (numpy for now)."""
    return _ACTIVE_BACKEND


def set_backend(backend) -> None:
    """Swap the kernel backend (the seam for future accelerators).

    The backend must expose ``build_instr(node, loaders, out_index)``
    and ``build_view(node)``. Swapping does not invalidate plans already
    compiled by the previous backend; callers flip backends before any
    realization (tests, benchmarks) or clear the plan cache explicitly
    via :func:`repro.nn.realize.clear_plan_cache`.
    """
    global _ACTIVE_BACKEND
    _ACTIVE_BACKEND = backend
