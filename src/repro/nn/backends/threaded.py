"""Threaded-tile variant of the cstyle compiled backend.

Same renderer, same kernels, same bitwise contract — every generated
function already takes ``(lo, hi)`` bounds on its outer loop, so this
module only changes *how kernels are invoked*: row-independent kernels
(pure elementwise nests, last-axis reductions, gathers, the
batch-invariant matmul) whose output is large enough to amortize the
dispatch get their outer loop split across a shared thread pool. cffi
releases the GIL for the duration of each C call, so tiles genuinely
run in parallel.

Tiling never changes results: a kernel is marked tileable only when
every output row is computed independently (no cross-row accumulation,
no scatter), so the bytes written are identical for any split. Kernels
that are not tileable — or too small to bother — run exactly as under
``cstyle``.
"""

from repro.nn.backends import cstyle, numpy_backend

# Per-op fallbacks are shared with cstyle (and thus with numpy).
build_instr = numpy_backend.build_instr
build_view = numpy_backend.build_view

available = cstyle.available


def compile_groups(order, index, groups, group_of, consumers, is_input):
    """cstyle's renderer with outer-loop tiling enabled."""
    return cstyle.compile_groups(
        order, index, groups, group_of, consumers, is_input, tile=True
    )
